//! Extension experiments beyond the paper's evaluation: node sampling on
//! multi-GPU execution traces (the Sec. 6.2 future-work direction).

use crate::harness::ExperimentOptions;
use crate::report::{fnum, write_result, Table};
use gpu_sim::multi_gpu::ClusterConfig;
use gpu_workload::chakra::data_parallel_training;
use gpu_workload::SuiteKind;
use stem_core::et::{evaluate_trace_sampling, EtReport};
use stem_core::intra::{evaluate_intra_kernel, IntraReport};
use crate::harness::{build_sampler, MethodKind};
use gpu_profile::TraceGenModel;
use gpu_sim::EnergyModel;

/// One multi-GPU sampling row.
#[derive(Debug, Clone, PartialEq)]
pub struct ChakraRow {
    /// GPU count.
    pub num_gpus: u8,
    /// The sampling report.
    pub report: EtReport,
}

/// Runs node sampling on data-parallel training traces of growing GPU
/// counts and reports device-time and makespan estimation errors.
pub fn ext_chakra(options: &ExperimentOptions) -> Vec<ChakraRow> {
    let cluster = ClusterConfig::h100_nvlink();
    let mut rows = Vec::new();
    for num_gpus in [1u8, 2, 4, 8] {
        let trace = data_parallel_training("ddp", num_gpus, 24, 40, options.seed);
        let report =
            evaluate_trace_sampling(&trace, &cluster, &options.stem_config, options.seed);
        rows.push(ChakraRow { num_gpus, report });
    }
    let mut t = Table::new(&[
        "gpus",
        "nodes",
        "simulated",
        "node_speedup",
        "total_err%",
        "makespan_err%",
    ]);
    for r in &rows {
        t.row(vec![
            r.num_gpus.to_string(),
            r.report.total_nodes.to_string(),
            r.report.simulated_nodes.to_string(),
            fnum(r.report.node_speedup()),
            fnum(r.report.total_error() * 100.0),
            fnum(r.report.makespan_error() * 100.0),
        ]);
    }
    println!(
        "Extension (Sec. 6.2) — node sampling on multi-GPU execution traces\n{}",
        t.render()
    );
    write_result("ext_chakra.csv", &t.to_csv());
    rows
}

/// One intra-kernel sampling row.
#[derive(Debug, Clone, PartialEq)]
pub struct IntraRow {
    /// Workload name.
    pub workload: String,
    /// The wave-sampling report.
    pub report: IntraReport,
}

/// Runs wave-level (intra-kernel) sampling over the Rodinia suite — the
/// few-calls/long-kernels regime where kernel-level sampling alone yields
/// little speedup (Sec. 7.3's orthogonal axis).
pub fn ext_intra(options: &ExperimentOptions) -> Vec<IntraRow> {
    let sim = options.simulator();
    let mut rows = Vec::new();
    for w in options.suite(SuiteKind::Rodinia) {
        let report = evaluate_intra_kernel(&w, &sim, &options.stem_config, options.seed);
        rows.push(IntraRow {
            workload: w.name().to_string(),
            report,
        });
    }
    let mut t = Table::new(&["workload", "waves", "simulated", "wave_speedup", "error%"]);
    for r in &rows {
        t.row(vec![
            r.workload.clone(),
            r.report.total_waves.to_string(),
            r.report.simulated_waves.to_string(),
            fnum(r.report.wave_speedup()),
            fnum(r.report.error() * 100.0),
        ]);
    }
    println!(
        "Extension (Sec. 7.3) — intra-kernel (wave-level) sampling, Rodinia\n{}",
        t.render()
    );
    write_result("ext_intra.csv", &t.to_csv());
    rows
}

/// One trace-generation row.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceGenRow {
    /// Workload name.
    pub workload: String,
    /// Full-trace bytes.
    pub full_gib: f64,
    /// Sampled-trace bytes.
    pub sampled_gib: f64,
    /// Disk reduction factor.
    pub bytes_reduction: f64,
    /// Capture-time reduction factor.
    pub time_reduction: f64,
}

/// Quantifies the Fig. 5 pipeline saving: traces are generated only for
/// the kernels STEM sampled, instead of the whole workload.
pub fn ext_tracegen(options: &ExperimentOptions) -> Vec<TraceGenRow> {
    let model = TraceGenModel::default();
    let mut rows = Vec::new();
    for w in options.suite(SuiteKind::Casio) {
        let plan = build_sampler(MethodKind::Stem, &w, &options.stem_config).plan(&w, options.seed);
        let sampled: Vec<usize> = plan.samples().iter().map(|s| s.index).collect();
        let report = model.selective(&w, &sampled);
        rows.push(TraceGenRow {
            workload: w.name().to_string(),
            full_gib: report.full_bytes / (1u64 << 30) as f64,
            sampled_gib: report.sampled_bytes / (1u64 << 30) as f64,
            bytes_reduction: report.bytes_reduction(),
            time_reduction: report.time_reduction(),
        });
    }
    let mut t = Table::new(&[
        "workload",
        "full_trace_GiB",
        "sampled_trace_GiB",
        "disk_reduction",
        "time_reduction",
    ]);
    for r in &rows {
        t.row(vec![
            r.workload.clone(),
            fnum(r.full_gib),
            fnum(r.sampled_gib),
            fnum(r.bytes_reduction),
            fnum(r.time_reduction),
        ]);
    }
    println!(
        "Extension (Fig. 5) — selective trace generation for sampled kernels, CASIO\n{}",
        t.render()
    );
    write_result("ext_tracegen.csv", &t.to_csv());
    rows
}

/// One energy-estimation row.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyRow {
    /// Workload name.
    pub workload: String,
    /// Full-simulation energy, joules.
    pub full_j: f64,
    /// Sampled estimate, joules.
    pub estimated_j: f64,
    /// Relative error, percent.
    pub error_pct: f64,
}

/// Demonstrates sampled *energy* estimation (the intro's power/energy use
/// case): STEM's plan estimates total energy through the same weighted sum
/// it uses for cycles.
pub fn ext_energy(options: &ExperimentOptions) -> Vec<EnergyRow> {
    let sim = options.simulator();
    let model = EnergyModel::default();
    let mut rows = Vec::new();
    for w in options.suite(SuiteKind::Casio) {
        let plan = build_sampler(MethodKind::Stem, &w, &options.stem_config).plan(&w, options.seed);
        let full = model.full_energy(&w, &sim);
        let est = model.sampled_energy(&w, plan.samples(), &sim);
        rows.push(EnergyRow {
            workload: w.name().to_string(),
            full_j: full,
            estimated_j: est,
            error_pct: (est - full).abs() / full * 100.0,
        });
    }
    let mut t = Table::new(&["workload", "full_J", "estimated_J", "error%"]);
    for r in &rows {
        t.row(vec![
            r.workload.clone(),
            fnum(r.full_j),
            fnum(r.estimated_j),
            fnum(r.error_pct),
        ]);
    }
    println!(
        "Extension — sampled energy estimation (CASIO)\n{}",
        t.render()
    );
    write_result("ext_energy.csv", &t.to_csv());
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_estimates_bounded() {
        let opts = ExperimentOptions::fast();
        let rows = ext_energy(&opts);
        assert_eq!(rows.len(), 11);
        for r in &rows {
            assert!(
                r.error_pct < 6.0,
                "{}: energy error {}%",
                r.workload,
                r.error_pct
            );
        }
    }

    #[test]
    fn tracegen_savings_are_large() {
        let opts = ExperimentOptions::fast();
        let rows = ext_tracegen(&opts);
        assert_eq!(rows.len(), 11);
        for r in &rows {
            assert!(
                r.bytes_reduction > 20.0,
                "{}: disk reduction only {}x",
                r.workload,
                r.bytes_reduction
            );
            assert!(r.time_reduction > 20.0);
        }
    }

    #[test]
    fn intra_errors_bounded() {
        let opts = ExperimentOptions::fast();
        let rows = ext_intra(&opts);
        assert_eq!(rows.len(), 13);
        for r in &rows {
            assert!(
                r.report.error() < 0.06,
                "{}: intra error {}",
                r.workload,
                r.report.error()
            );
            assert!(r.report.wave_speedup() >= 1.0);
        }
    }

    #[test]
    fn chakra_errors_bounded_at_every_scale() {
        let opts = ExperimentOptions::fast();
        let rows = ext_chakra(&opts);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                r.report.total_error() < 0.05,
                "{} GPUs: total error {}",
                r.num_gpus,
                r.report.total_error()
            );
            assert!(
                r.report.makespan_error() < 0.06,
                "{} GPUs: makespan error {}",
                r.num_gpus,
                r.report.makespan_error()
            );
            assert!(r.report.node_speedup() > 20.0);
        }
    }
}
