//! Figure 10 (kernels grouped as "identical" by prior methods) and
//! Figure 11 (the error-bound sweep).

use crate::harness::{aggregate, eval_method_on_suite, ExperimentOptions, MethodKind};
use crate::report::{fnum, write_result, Table};
use gpu_workload::SuiteKind;
use stem_baselines::{PhotonSampler, PkaSampler};
use stem_core::sampler::KernelSampler;
use stem_stats::histogram::Histogram;
use stem_stats::Summary;

/// One "identical" group's execution-time spread (Figure 10).
#[derive(Debug, Clone, PartialEq)]
pub struct IdenticalGroup {
    /// Which method grouped these kernels.
    pub method: String,
    /// Group index (cluster / representative id).
    pub group: usize,
    /// Number of invocations grouped together.
    pub size: usize,
    /// Min execution time (cycles) in the group.
    pub min: f64,
    /// Max execution time (cycles) in the group.
    pub max: f64,
    /// CoV of execution times within the group.
    pub cov: f64,
    /// Histogram peak count within the group.
    pub peaks: usize,
}

/// Reproduces Figure 10 on the DLRM workload: groups PKA and Photon call
/// "identical" actually span wide multi-peak time ranges.
pub fn fig10(options: &ExperimentOptions) -> Vec<IdenticalGroup> {
    let casio = options.suite(SuiteKind::Casio);
    let w = casio
        .iter()
        .find(|w| w.name() == "dlrm_infer")
        .expect("dlrm_infer exists");
    let sim = options.simulator();
    let times: Vec<f64> = w
        .invocations()
        .iter()
        .map(|inv| sim.cycles(w, inv))
        .collect();

    let mut groups = Vec::new();
    // PKA: cluster membership via its plan's weights is lossy; instead we
    // recompute its grouping the way the plan does — one cluster per
    // representative, membership by matching weights is not recoverable, so
    // we use the sampler's behaviour: invocations with identical feature
    // vectors form the clusters (PKA's k-sweep merges some of them, making
    // the real groups even coarser — this is therefore a *lower bound* on
    // the spread PKA ignores).
    let plan = PkaSampler::new().plan(w, 0);
    for (g, cluster) in plan.clusters().iter().enumerate() {
        // Gather the invocations of this cluster's kernel.
        let members: Vec<usize> = w
            .invocations()
            .iter()
            .enumerate()
            .filter(|(_, inv)| w.kernel_of(inv).name == cluster.kernel)
            .map(|(i, _)| i)
            .collect();
        groups.push(group_diag("PKA", g, &members, &times));
    }
    // Photon: each representative's matched set is a group.
    let analysis = PhotonSampler::new().analyze(w);
    for (g, s) in analysis.plan.samples().iter().enumerate() {
        if s.weight < 50.0 {
            continue; // only show substantial groups, like the figure
        }
        // Membership is not retained by the plan; approximate with the
        // representative's kernel-and-context set.
        let rep = &w.invocations()[s.index];
        let members: Vec<usize> = w
            .invocations()
            .iter()
            .enumerate()
            .filter(|(_, inv)| inv.kernel == rep.kernel && inv.context == rep.context)
            .map(|(i, _)| i)
            .collect();
        groups.push(group_diag("Photon", g, &members, &times));
    }

    let mut t = Table::new(&["method", "group", "size", "min", "max", "cov", "peaks"]);
    for g in &groups {
        t.row(vec![
            g.method.clone(),
            g.group.to_string(),
            g.size.to_string(),
            fnum(g.min),
            fnum(g.max),
            fnum(g.cov),
            g.peaks.to_string(),
        ]);
    }
    println!(
        "Figure 10 — spread of kernels treated as identical (DLRM)\n{}",
        t.render()
    );
    write_result("fig10.csv", &t.to_csv());
    groups
}

fn group_diag(method: &str, group: usize, members: &[usize], times: &[f64]) -> IdenticalGroup {
    assert!(!members.is_empty(), "empty identical group");
    let vals: Vec<f64> = members.iter().map(|&i| times[i]).collect();
    let s: Summary = vals.iter().copied().collect();
    let peaks = if vals.len() >= 8 {
        Histogram::from_values(&vals, 32).peak_count(0.2)
    } else {
        1
    };
    IdenticalGroup {
        method: method.to_string(),
        group,
        size: members.len(),
        min: s.min(),
        max: s.max(),
        cov: s.cov(),
        peaks,
    }
}

/// One epsilon-sweep point (Figure 11).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The error bound used.
    pub epsilon: f64,
    /// CASIO harmonic-mean speedup.
    pub speedup: f64,
    /// CASIO arithmetic-mean error (%).
    pub error_pct: f64,
}

/// Reproduces Figure 11: STEM's speedup/error across error bounds
/// `eps in {3%, 5%, 10%, 25%}` on the CASIO suite.
pub fn fig11(options: &ExperimentOptions) -> Vec<SweepPoint> {
    let workloads = options.suite(SuiteKind::Casio);
    let mut points = Vec::new();
    for eps in [0.03, 0.05, 0.10, 0.25] {
        let mut opts = options.clone();
        opts.stem_config = opts.stem_config.with_epsilon(eps);
        let summaries = eval_method_on_suite(MethodKind::Stem, &workloads, &opts);
        let (speedup, error) = aggregate(&summaries);
        points.push(SweepPoint {
            epsilon: eps,
            speedup,
            error_pct: error,
        });
    }
    let mut t = Table::new(&["epsilon", "speedup", "error_pct"]);
    for p in &points {
        t.row(vec![fnum(p.epsilon), fnum(p.speedup), fnum(p.error_pct)]);
    }
    println!("Figure 11 — error-bound sweep (CASIO)\n{}", t.render());
    write_result("fig11.csv", &t.to_csv());
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_groups_span_wide_ranges() {
        let opts = ExperimentOptions::fast();
        let groups = fig10(&opts);
        assert!(!groups.is_empty());
        // At least one PKA group must span a wide (>2x) time range — the
        // figure's point.
        let wide = groups
            .iter()
            .filter(|g| g.method == "PKA")
            .any(|g| g.max / g.min > 2.0);
        assert!(wide, "no wide PKA group found: {groups:?}");
    }

    #[test]
    fn fig11_monotone_tradeoff() {
        let mut opts = ExperimentOptions::fast();
        opts.reps = 2;
        let points = fig11(&opts);
        assert_eq!(points.len(), 4);
        // Speedup grows with epsilon.
        for pair in points.windows(2) {
            assert!(
                pair[1].speedup > pair[0].speedup,
                "speedup not monotone: {points:?}"
            );
        }
        // Error stays below each bound.
        for p in &points {
            assert!(
                p.error_pct / 100.0 <= p.epsilon,
                "error {} above bound {}",
                p.error_pct,
                p.epsilon
            );
        }
    }
}
