//! Table 5: profiling overhead of the four back-ends on the three suites.

use crate::harness::ExperimentOptions;
use crate::report::{fnum, write_result, Table};
use gpu_sim::HardwareRunner;
use gpu_workload::SuiteKind;
use stem_baselines::PhotonSampler;
use gpu_profile::OverheadModel;

/// One Table 5 cell.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadCell {
    /// Profiling back-end (method).
    pub profiler: String,
    /// Suite.
    pub suite: SuiteKind,
    /// Overhead as x original wall time; `None` marks the paper's N/A cells
    /// (infeasible at HuggingFace scale).
    pub factor: Option<f64>,
    /// For N/A cells: the modelled instrumented time in days.
    pub estimated_days: Option<f64>,
}

/// Reproduces Table 5: per-profiler overhead factors. PKA's NCU, Sieve's
/// NVBit and Photon's BBV processing are computed on Rodinia and CASIO and
/// reported as N/A (with modelled days) on HuggingFace, as in the paper.
pub fn table5(options: &ExperimentOptions) -> Vec<OverheadCell> {
    let model = OverheadModel::default();
    let hw = HardwareRunner::new(options.sim_config.clone(), options.seed);
    let mut cells = Vec::new();

    for suite in [SuiteKind::Rodinia, SuiteKind::Casio, SuiteKind::Huggingface] {
        let workloads = options.suite(suite);
        // Suite-level factor: total instrumented time over total base time,
        // so a few millisecond-scale workloads cannot dominate the ratio.
        let mut base_total = 0.0;
        let mut nsys_s = 0.0;
        let mut ncu_s = 0.0;
        let mut nvbit_s = 0.0;
        let mut bbv_s = 0.0;
        for w in &workloads {
            let measured: f64 = hw.measure_all(w).iter().sum();
            let base_s = hw.config().cycles_to_seconds(measured);
            let n = w.num_invocations() as u64;
            let instr = w.total_instructions();
            base_total += base_s;
            nsys_s += model.nsys(base_s, n).instrumented_s;
            ncu_s += model.ncu(base_s, n).instrumented_s;
            nvbit_s += model.nvbit(base_s, instr, n).instrumented_s;
            if suite == SuiteKind::Huggingface {
                // Photon's comparison bill at HF scale is modelled, not run:
                // assume the table grows to ~1000 candidates of ~100 dims.
                let ops = n as f64 * 1000.0 * 100.0;
                bbv_s += model.bbv(base_s, instr, ops).instrumented_s;
            } else {
                let analysis = PhotonSampler::new().analyze(w);
                bbv_s += model.bbv(base_s, instr, analysis.compare_ops).instrumented_s;
            }
        }
        let n_wl = workloads.len() as f64;
        let feasible = suite != SuiteKind::Huggingface;
        cells.push(OverheadCell {
            profiler: "STEM (NSYS)".to_string(),
            suite,
            factor: Some(nsys_s / base_total),
            estimated_days: None,
        });
        cells.push(OverheadCell {
            profiler: "PKA (NCU)".to_string(),
            suite,
            factor: feasible.then(|| ncu_s / base_total),
            estimated_days: (!feasible).then(|| ncu_s / n_wl / 86_400.0),
        });
        cells.push(OverheadCell {
            profiler: "Sieve (NVBit)".to_string(),
            suite,
            factor: feasible.then(|| nvbit_s / base_total),
            estimated_days: (!feasible).then(|| nvbit_s / n_wl / 86_400.0),
        });
        cells.push(OverheadCell {
            profiler: "Photon (BBV)".to_string(),
            suite,
            factor: feasible.then(|| bbv_s / base_total),
            estimated_days: (!feasible).then(|| bbv_s / n_wl / 86_400.0),
        });
    }

    let mut t = Table::new(&["profiler", "rodinia", "casio", "huggingface"]);
    for profiler in ["PKA (NCU)", "Sieve (NVBit)", "Photon (BBV)", "STEM (NSYS)"] {
        let cell = |suite: SuiteKind| -> String {
            let c = cells
                .iter()
                .find(|c| c.suite == suite && c.profiler == profiler)
                .expect("cell computed");
            match (c.factor, c.estimated_days) {
                (Some(f), _) => format!("{}x", fnum(f)),
                (None, Some(d)) => format!("N/A (~{} days)", fnum(d)),
                (None, None) => "N/A".to_string(),
            }
        };
        t.row(vec![
            profiler.to_string(),
            cell(SuiteKind::Rodinia),
            cell(SuiteKind::Casio),
            cell(SuiteKind::Huggingface),
        ]);
    }
    println!("Table 5 — profiling overhead (x original wall time)\n{}", t.render());
    write_result("table5.csv", &t.to_csv());
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_ordering_matches_paper() {
        let opts = ExperimentOptions::fast();
        let cells = table5(&opts);
        let get = |p: &str, s: SuiteKind| -> f64 {
            cells
                .iter()
                .find(|c| c.profiler == p && c.suite == s)
                .and_then(|c| c.factor)
                .expect("feasible cell")
        };
        // NSYS is the cheapest everywhere.
        for suite in [SuiteKind::Rodinia, SuiteKind::Casio] {
            let nsys = get("STEM (NSYS)", suite);
            for other in ["PKA (NCU)", "Sieve (NVBit)", "Photon (BBV)"] {
                assert!(
                    nsys < get(other, suite),
                    "{other} should cost more than NSYS on {suite}"
                );
            }
        }
        // NCU explodes on CASIO (paper: 3704x vs Rodinia's 35x).
        assert!(get("PKA (NCU)", SuiteKind::Casio) > 5.0 * get("PKA (NCU)", SuiteKind::Rodinia));
        // HuggingFace: only NSYS feasible, small factor.
        let hf_nsys = get("STEM (NSYS)", SuiteKind::Huggingface);
        assert!(hf_nsys < 20.0, "hf nsys {hf_nsys}");
        let hf_ncu = cells
            .iter()
            .find(|c| c.profiler == "PKA (NCU)" && c.suite == SuiteKind::Huggingface)
            .expect("cell");
        assert!(hf_ncu.factor.is_none());
        assert!(hf_ncu.estimated_days.expect("estimate") > 0.1);
    }
}
