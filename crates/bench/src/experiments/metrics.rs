//! Figure 14: microarchitectural-metric validation on `bert_infer`.

use crate::harness::{build_sampler, ExperimentOptions, MethodKind};
use crate::report::{fnum, write_result, Table};
use gpu_workload::{MetricKind, SuiteKind};

/// One metric's full-vs-sampled comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricComparison {
    /// The metric.
    pub metric: MetricKind,
    /// Full-workload value (counts summed, rates averaged).
    pub full: f64,
    /// Sampled weighted estimate.
    pub sampled: f64,
    /// Relative difference in percent.
    pub diff_pct: f64,
}

/// Reproduces Figure 14: the 13 microarchitectural metrics of the full
/// `bert_infer` workload versus the STEM-sampled estimate (eps = 5%).
pub fn fig14(options: &ExperimentOptions) -> Vec<MetricComparison> {
    let casio = options.suite(SuiteKind::Casio);
    let w = casio
        .iter()
        .find(|w| w.name() == "bert_infer")
        .expect("bert_infer exists");
    let sim = options.simulator();
    let plan = build_sampler(MethodKind::Stem, w, &options.stem_config).plan(w, options.seed);
    let full = sim.metrics_full(w);
    let sampled = sim.metrics_sampled(w, plan.samples());

    let mut rows = Vec::new();
    for metric in MetricKind::ALL {
        let f = full.get(metric);
        let s = sampled.get(metric);
        let diff_pct = if f.abs() > 0.0 {
            (s - f).abs() / f.abs() * 100.0
        } else {
            0.0
        };
        rows.push(MetricComparison {
            metric,
            full: f,
            sampled: s,
            diff_pct,
        });
    }

    let mut t = Table::new(&["metric", "category", "full", "sampled", "diff_pct"]);
    for r in &rows {
        t.row(vec![
            r.metric.to_string(),
            format!("{:?}", r.metric.category()),
            format!("{:.4e}", r.full),
            format!("{:.4e}", r.sampled),
            fnum(r.diff_pct),
        ]);
    }
    println!(
        "Figure 14 — microarchitectural metrics, full vs sampled (bert_infer)\n{}",
        t.render()
    );
    write_result("fig14.csv", &t.to_csv());
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_metrics_near_zero_difference() {
        let opts = ExperimentOptions::fast();
        let rows = fig14(&opts);
        assert_eq!(rows.len(), 13);
        for r in &rows {
            assert!(
                r.diff_pct < 6.0,
                "{}: sampled deviates {:.2}% from full",
                r.metric,
                r.diff_pct
            );
        }
    }
}
