//! A minimal `std::time::Instant` micro-benchmark harness.
//!
//! Replaces the former `criterion` dev-dependency so the workspace builds
//! hermetically. It keeps the parts of criterion the benches actually used:
//! warmup, automatic iteration-count calibration toward a fixed measurement
//! budget, and a one-line min/median/mean report per benchmark.
//!
//! Not a statistics engine: no outlier rejection or regression tracking.
//! Numbers are for relative, same-machine comparison — exactly how the
//! paper's Sec. 5.6 scaling claims are phrased.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock budget for the measured phase of one benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Measured batches per benchmark (each batch runs `iters_per_batch` calls).
const BATCHES: usize = 10;

/// One benchmark's timing summary, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group/benchmark label, e.g. `kkt_solver/64`.
    pub name: String,
    /// Fastest batch (least interference).
    pub min_ns: f64,
    /// Median batch.
    pub median_ns: f64,
    /// Mean over all batches.
    pub mean_ns: f64,
    /// Total iterations measured.
    pub iters: u64,
}

impl BenchResult {
    fn report(&self) {
        println!(
            "bench {:<44} min {:>12}  median {:>12}  mean {:>12}  ({} iters)",
            self.name,
            fmt_ns(self.min_ns),
            fmt_ns(self.median_ns),
            fmt_ns(self.mean_ns),
            self.iters
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Time `f`, returning per-iteration statistics. The closure's result is
/// routed through [`black_box`] so the optimizer cannot delete the work.
pub fn bench<T, F: FnMut() -> T>(name: &str, mut f: F) -> BenchResult {
    // Warmup + calibration: run until 10ms or 3 calls, whichever is later.
    let cal_start = Instant::now();
    let mut cal_iters: u64 = 0;
    while cal_iters < 3 || cal_start.elapsed() < Duration::from_millis(10) {
        black_box(f());
        cal_iters += 1;
    }
    let per_call = cal_start.elapsed().as_secs_f64() / cal_iters as f64;

    let total_iters =
        ((MEASURE_BUDGET.as_secs_f64() / per_call.max(1e-9)) as u64).clamp(BATCHES as u64, 1_000_000);
    let iters_per_batch = (total_iters / BATCHES as u64).max(1);

    let mut batch_ns: Vec<f64> = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        let t = Instant::now();
        for _ in 0..iters_per_batch {
            black_box(f());
        }
        batch_ns.push(t.elapsed().as_nanos() as f64 / iters_per_batch as f64);
    }
    batch_ns.sort_by(f64::total_cmp);
    let result = BenchResult {
        name: name.to_string(),
        min_ns: batch_ns[0],
        median_ns: batch_ns[BATCHES / 2],
        mean_ns: batch_ns.iter().sum::<f64>() / BATCHES as f64,
        iters: iters_per_batch * BATCHES as u64,
    };
    result.report();
    result
}

/// Group header, mirroring criterion's `benchmark_group` output shape.
pub fn group(name: &str) {
    println!("\n== {name}");
}

/// Outcome of the threads=1 vs threads=N scaling probe
/// ([`scaling_smoke_check`]).
#[derive(Debug, Clone)]
pub struct ScalingCheck {
    /// Thread count of the parallel run.
    pub threads: usize,
    /// Workload the probe ran on.
    pub workload: String,
    /// Wall-clock of the serial run, nanoseconds.
    pub serial_ns: f64,
    /// Wall-clock of the parallel run, nanoseconds.
    pub parallel_ns: f64,
    /// serial / parallel wall-clock ratio.
    pub speedup: f64,
    /// Whether the two runs produced bit-identical summaries. This is the
    /// only field tests may gate on — timing is informational.
    pub identical: bool,
}

impl ScalingCheck {
    fn report(&self) {
        println!(
            "scaling {:<36} serial {:>12}  threads={} {:>12}  speedup {:.2}x  identical: {}",
            self.workload,
            fmt_ns(self.serial_ns),
            self.threads,
            fmt_ns(self.parallel_ns),
            self.speedup,
            self.identical
        );
    }
}

/// Runs the full pipeline on the largest workload of the HuggingFace suite
/// (the paper's biggest synthetic suite) twice — serial, then on `threads`
/// worker threads — and reports the wall-clock ratio.
///
/// Timing is informational only: machines and CI runners vary, so callers
/// must never fail on `speedup`. The contract worth gating on is
/// [`ScalingCheck::identical`] — the two runs must produce bit-identical
/// evaluation summaries.
///
/// # Panics
///
/// Panics if `threads == 0` or the suite is empty.
pub fn scaling_smoke_check(threads: usize) -> ScalingCheck {
    use crate::harness::ExperimentOptions;
    use gpu_workload::SuiteKind;
    use stem_core::{Pipeline, StemRootSampler};
    use stem_par::Parallelism;

    let options = ExperimentOptions::fast();
    let suite = options.suite(SuiteKind::Huggingface);
    let workload = suite
        .into_iter()
        .max_by_key(gpu_workload::Workload::num_invocations)
        .expect("huggingface suite is non-empty");
    let sampler = StemRootSampler::new(options.stem_config.clone());
    let run_at = |par: Parallelism| {
        let pipeline = Pipeline::new(options.simulator())
            .with_reps(4)
            .expect("positive reps")
            .with_seed(options.seed)
            .with_parallelism(par);
        let t = Instant::now();
        let summary = pipeline.run(&sampler, &workload);
        (t.elapsed().as_nanos() as f64, summary)
    };
    let (serial_ns, serial) = run_at(Parallelism::serial());
    let (parallel_ns, parallel) = run_at(Parallelism::with_threads(threads));
    let check = ScalingCheck {
        threads,
        workload: workload.name().to_string(),
        serial_ns,
        parallel_ns,
        speedup: serial_ns / parallel_ns.max(1.0),
        identical: serial == parallel,
    };
    check.report();
    check
}

/// Outcome of the grouped vs per-invocation ground-truth timing probe
/// ([`grouped_timing_check`]).
#[derive(Debug, Clone)]
pub struct GroupedTimingCheck {
    /// Workload the probe ran on.
    pub workload: String,
    /// Distinct invocation groups (deterministic cores computed).
    pub groups: usize,
    /// Total invocations (jitter draws applied).
    pub invocations: usize,
    /// Wall-clock of the grouped fast path, nanoseconds.
    pub grouped_ns: f64,
    /// Wall-clock of the per-invocation reference path, nanoseconds.
    pub per_invocation_ns: f64,
    /// per-invocation / grouped wall-clock ratio.
    pub speedup: f64,
    /// Whether the two paths produced bit-identical full runs. This is the
    /// only field tests may gate on — timing is informational.
    pub identical: bool,
}

impl GroupedTimingCheck {
    fn report(&self) {
        println!(
            "grouped {:<36} per-invocation {:>12}  grouped {:>12}  ({} groups / {} invocations)  speedup {:.2}x  identical: {}",
            self.workload,
            fmt_ns(self.per_invocation_ns),
            fmt_ns(self.grouped_ns),
            self.groups,
            self.invocations,
            self.speedup,
            self.identical
        );
    }
}

/// Times the ground-truth simulation of the largest HuggingFace workload
/// twice — once on the grouped deterministic-core/jitter fast path
/// (`Simulator::run_full`), once on the pre-overhaul per-invocation
/// reference (`gpu_sim::simulator::reference::run_full`) — and reports the
/// wall-clock ratio.
///
/// The regression contract is [`GroupedTimingCheck::identical`]: the two
/// paths must produce bit-identical [`gpu_sim::FullRun`]s. The speedup is
/// informational only (CI machines are too noisy for wall-clock gates).
///
/// # Panics
///
/// Panics if the HuggingFace suite is empty.
pub fn grouped_timing_check() -> GroupedTimingCheck {
    use crate::harness::ExperimentOptions;
    use gpu_sim::simulator::reference as sim_reference;
    use gpu_workload::SuiteKind;

    let options = ExperimentOptions::fast();
    let suite = options.suite(SuiteKind::Huggingface);
    let workload = suite
        .into_iter()
        .max_by_key(gpu_workload::Workload::num_invocations)
        .expect("huggingface suite is non-empty");
    let sim = options.simulator();

    let t = Instant::now();
    let grouped = sim.run_full(&workload);
    let grouped_ns = t.elapsed().as_nanos() as f64;

    let t = Instant::now();
    let per_invocation = sim_reference::run_full(&sim, &workload);
    let per_invocation_ns = t.elapsed().as_nanos() as f64;

    let check = GroupedTimingCheck {
        workload: workload.name().to_string(),
        groups: workload.num_invocation_groups(),
        invocations: workload.num_invocations(),
        grouped_ns,
        per_invocation_ns,
        speedup: per_invocation_ns / grouped_ns.max(1.0),
        identical: grouped == per_invocation,
    };
    check.report();
    check
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something() {
        let r = bench("smoke/sum", || (0..1000u64).sum::<u64>());
        assert!(r.min_ns > 0.0);
        assert!(r.min_ns <= r.mean_ns * 1.5 + 1.0);
        assert!(r.iters >= BATCHES as u64);
    }
}
