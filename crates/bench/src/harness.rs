//! Shared experiment machinery: method roster, per-workload tuning, suite
//! evaluation loops.

use gpu_sim::{GpuConfig, Simulator};
use gpu_workload::suites::{
    casio_sources, casio_suite, huggingface_sources, huggingface_suite, rodinia_sources,
    rodinia_suite, HuggingfaceScale,
};
use gpu_workload::{SuiteKind, Workload, WorkloadSource};
use stem_baselines::{
    PhotonSampler, PkaSampler, RandomSampler, RssSampler, SieveSampler, TbPointSampler,
    TwoPhaseSampler,
};
use stem_core::eval::{evaluate_total_par, EvalSummary};
use stem_core::sampler::KernelSampler;
use stem_core::{StemConfig, StemRootSampler};

/// The sampling methods of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// Uniform random (10% Rodinia / 0.1% elsewhere).
    Random,
    /// PKA with the paper's hand-tuning on gaussian/heartwall.
    Pka,
    /// Sieve with the paper's hand-tuning (random representatives on
    /// gaussian/heartwall/ssdrn34_infer/unet_*; KDE off on CASIO).
    Sieve,
    /// Photon.
    Photon,
    /// STEM+ROOT.
    Stem,
    /// TBPoint (extra ablation point, not in Table 3).
    TbPoint,
    /// Ranked set sampling with repeated subsampling (Ekman port).
    Rss,
    /// Two-phase stratified sampling (Ekman port).
    TwoPhase,
}

impl MethodKind {
    /// The evaluation's method rows: the paper's five Table 3 methods
    /// plus the RSS and two-phase baselines this reproduction adds.
    pub const TABLE3: [MethodKind; 7] = [
        MethodKind::Random,
        MethodKind::Pka,
        MethodKind::Sieve,
        MethodKind::Photon,
        MethodKind::Rss,
        MethodKind::TwoPhase,
        MethodKind::Stem,
    ];

    /// Display name (matches the constructed sampler's `name()`).
    pub fn label(&self) -> &'static str {
        match self {
            MethodKind::Random => "Random",
            MethodKind::Pka => "PKA",
            MethodKind::Sieve => "Sieve",
            MethodKind::Photon => "Photon",
            MethodKind::Stem => "STEM",
            MethodKind::TbPoint => "TBPoint",
            MethodKind::Rss => "RSS",
            MethodKind::TwoPhase => "TwoPhase",
        }
    }

    /// Whether the paper could run this method on the HuggingFace suite
    /// (PKA/Sieve/Photon are N/A there for overhead reasons, Table 3;
    /// RSS and two-phase plan in one pass over profile times, so they
    /// scale like Random and STEM).
    pub fn feasible_on_huggingface(&self) -> bool {
        matches!(
            self,
            MethodKind::Random | MethodKind::Stem | MethodKind::Rss | MethodKind::TwoPhase
        )
    }
}

/// Workloads the paper hand-tuned PKA/Sieve on (Sec. 5.1).
fn needs_random_representative(method: MethodKind, workload: &Workload) -> bool {
    match method {
        MethodKind::Pka => matches!(workload.name(), "gaussian" | "heartwall"),
        MethodKind::Sieve => matches!(
            workload.name(),
            "gaussian" | "heartwall" | "ssdrn34_infer" | "unet_infer" | "unet_train"
        ),
        _ => false,
    }
}

/// Builds a sampler for `method` on `workload`, applying the paper's
/// per-workload tuning and the given STEM config.
pub fn build_sampler(
    method: MethodKind,
    workload: &Workload,
    stem_config: &StemConfig,
) -> Box<dyn KernelSampler> {
    match method {
        MethodKind::Random => Box::new(RandomSampler::for_suite(workload.suite())),
        MethodKind::Pka => {
            let mut s = PkaSampler::new();
            if needs_random_representative(method, workload) {
                s = s.with_random_representative();
            }
            Box::new(s)
        }
        MethodKind::Sieve => {
            let mut s = SieveSampler::new();
            if workload.suite() == SuiteKind::Casio {
                // The paper turned Sieve's KDE off on CASIO (it capped
                // speedups at 2-5x by oversampling).
                s = s.without_kde();
            }
            if needs_random_representative(method, workload) {
                s = s.with_random_representative();
            }
            Box::new(s)
        }
        MethodKind::Photon => Box::new(PhotonSampler::new()),
        MethodKind::Stem => Box::new(StemRootSampler::new(stem_config.clone())),
        MethodKind::TbPoint => Box::new(TbPointSampler::new()),
        MethodKind::Rss => Box::new(RssSampler::new()),
        MethodKind::TwoPhase => Box::new(TwoPhaseSampler::new()),
    }
}

/// Options shared by every experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentOptions {
    /// Repetitions per (method, workload); the paper uses 10.
    pub reps: u32,
    /// Base seed for workload generation and sampling.
    pub seed: u64,
    /// HuggingFace suite scale (1.0 = paper's ~11.6M-call average).
    pub hf_scale: HuggingfaceScale,
    /// Target simulator config.
    pub sim_config: GpuConfig,
    /// STEM hyperparameters.
    pub stem_config: StemConfig,
}

impl ExperimentOptions {
    /// Paper-faithful settings at a laptop-friendly HuggingFace scale.
    pub fn default_repro() -> Self {
        ExperimentOptions {
            reps: 10,
            seed: 2025,
            hf_scale: HuggingfaceScale::default_repro(),
            sim_config: GpuConfig::rtx2080(),
            stem_config: StemConfig::paper(),
        }
    }

    /// Fast settings for smoke tests and CI.
    pub fn fast() -> Self {
        let mut o = Self::default_repro();
        o.reps = 3;
        o.hf_scale = HuggingfaceScale::custom(0.01);
        o
    }

    /// The three suites at these options' scale and seed.
    pub fn suite(&self, kind: SuiteKind) -> Vec<Workload> {
        match kind {
            SuiteKind::Rodinia => rodinia_suite(self.seed),
            SuiteKind::Casio => casio_suite(self.seed),
            SuiteKind::Huggingface => huggingface_suite(self.seed, self.hf_scale),
            SuiteKind::Custom => Vec::new(),
        }
    }

    /// The same suites as deferred [`WorkloadSource`]s (identical content
    /// and fingerprints); experiments that iterate workload-at-a-time
    /// materialize from these so only one workload is resident at once.
    pub fn suite_sources(&self, kind: SuiteKind) -> Vec<WorkloadSource> {
        match kind {
            SuiteKind::Rodinia => rodinia_sources(self.seed),
            SuiteKind::Casio => casio_sources(self.seed),
            SuiteKind::Huggingface => huggingface_sources(self.seed, self.hf_scale),
            SuiteKind::Custom => Vec::new(),
        }
    }

    /// The bound simulator.
    pub fn simulator(&self) -> Simulator {
        Simulator::new(self.sim_config.clone())
    }
}

/// Evaluates one method across a suite, returning one summary per workload
/// (input order preserved). Workloads are evaluated on the `stem-par` pool
/// (`STEM_THREADS` honoured), which merges results by input index — the
/// report order is pinned to `workloads` order regardless of which worker
/// finishes first. The old ad-hoc `scope.spawn` version also spawned one
/// thread per workload, oversubscribing the machine on large suites.
pub fn eval_method_on_suite(
    method: MethodKind,
    workloads: &[Workload],
    options: &ExperimentOptions,
) -> Vec<EvalSummary> {
    stem_par::par_map_indexed(stem_par::Parallelism::from_env(), workloads, |_, w| {
        eval_method_on_workload(method, w, options)
    })
}

/// [`eval_method_on_suite`] from deferred sources: each worker
/// materializes its workload, evaluates it, and drops it, so peak memory
/// stays one workload per worker no matter how large the suite is.
/// Bit-identical summaries to evaluating the materialized suite.
pub fn eval_method_on_sources(
    method: MethodKind,
    sources: &[WorkloadSource],
    options: &ExperimentOptions,
) -> Vec<EvalSummary> {
    stem_par::par_map_indexed(stem_par::Parallelism::from_env(), sources, |_, s| {
        let w = s.materialize();
        eval_method_on_workload(method, &w, options)
    })
}

/// One method on one workload. Ground truth folds out-of-core through
/// the block-streaming executor — bit-identical to
/// `run_full(w).total_cycles` without materializing the per-invocation
/// cycle vector.
fn eval_method_on_workload(
    method: MethodKind,
    w: &Workload,
    options: &ExperimentOptions,
) -> EvalSummary {
    let sim = options.simulator();
    let sampler = build_sampler(method, w, &options.stem_config);
    let full_total = gpu_sim::workload_total(
        &sim,
        stem_par::Parallelism::serial(),
        w,
        gpu_workload::DEFAULT_BLOCK_LEN,
        gpu_sim::DEFAULT_CHANNEL_BLOCKS,
    )
    .expect("generated workloads stream cleanly")
    .total_cycles;
    evaluate_total_par(
        sampler.as_ref(),
        w,
        &sim,
        full_total,
        options.reps,
        options.seed,
        stem_par::Parallelism::serial(),
    )
}

/// Suite-level aggregation: harmonic-mean speedup and arithmetic-mean error
/// across workloads (each itself aggregated over reps). One streaming pass
/// in workload order — bit-identical to the collect-then-mean double pass
/// it replaces (both are left-to-right sums).
pub fn aggregate(summaries: &[EvalSummary]) -> (f64, f64) {
    let mut agg = stem_core::StreamingAggregate::new();
    for s in summaries {
        agg.push(s.mean_error_pct, s.harmonic_speedup);
    }
    (agg.harmonic_speedup(), agg.mean_error_pct())
}

#[cfg(test)]
mod tests {
    use super::*;
    use stem_core::eval::evaluate;

    #[test]
    fn tuning_applies_to_the_right_workloads() {
        let opts = ExperimentOptions::fast();
        let rodinia = opts.suite(SuiteKind::Rodinia);
        let heartwall = rodinia.iter().find(|w| w.name() == "heartwall").expect("hw");
        let backprop = rodinia.iter().find(|w| w.name() == "backprop").expect("bp");
        assert!(needs_random_representative(MethodKind::Pka, heartwall));
        assert!(!needs_random_representative(MethodKind::Pka, backprop));
        assert!(!needs_random_representative(MethodKind::Photon, heartwall));
    }

    #[test]
    fn build_sampler_names() {
        let opts = ExperimentOptions::fast();
        let w = &opts.suite(SuiteKind::Rodinia)[0];
        for m in MethodKind::TABLE3 {
            let s = build_sampler(m, w, &opts.stem_config);
            assert_eq!(s.name(), m.label());
        }
    }

    #[test]
    fn hf_feasibility() {
        assert!(MethodKind::Stem.feasible_on_huggingface());
        assert!(MethodKind::Random.feasible_on_huggingface());
        assert!(!MethodKind::Pka.feasible_on_huggingface());
        assert!(!MethodKind::Photon.feasible_on_huggingface());
    }

    /// Regression for the pre-`stem-par` harness: summaries must come back
    /// in `workloads` order (not completion order) and match a serial
    /// in-order loop bitwise.
    #[test]
    fn eval_method_preserves_workload_order() {
        let mut opts = ExperimentOptions::fast();
        opts.reps = 2;
        let rodinia = opts.suite(SuiteKind::Rodinia);
        let workloads: Vec<Workload> = rodinia.into_iter().take(4).collect();
        let summaries = eval_method_on_suite(MethodKind::Random, &workloads, &opts);
        assert_eq!(summaries.len(), workloads.len());
        for (i, (summary, w)) in summaries.iter().zip(&workloads).enumerate() {
            assert_eq!(summary.workload, w.name(), "summary {i} out of order");
            let sim = opts.simulator();
            let sampler = build_sampler(MethodKind::Random, w, &opts.stem_config);
            let full = sim.run_full(w);
            let serial = evaluate(sampler.as_ref(), w, &sim, &full, opts.reps, opts.seed);
            assert_eq!(*summary, serial, "summary {i} diverges from serial eval");
        }
    }

    #[test]
    fn eval_method_smoke() {
        let mut opts = ExperimentOptions::fast();
        opts.reps = 2;
        let rodinia = opts.suite(SuiteKind::Rodinia);
        let w = rodinia
            .iter()
            .find(|w| w.name() == "backprop")
            .expect("backprop")
            .clone();
        let summaries = eval_method_on_suite(MethodKind::Stem, &[w], &opts);
        assert_eq!(summaries.len(), 1);
        assert!(summaries[0].mean_error_pct < 6.0);
        let (speedup, error) = aggregate(&summaries);
        assert!(speedup >= 1.0);
        assert!(error < 6.0);
    }
}
