//! Peak-memory observation for benchmark reports.
//!
//! The out-of-core executor's whole point is a flat peak-RSS curve, so
//! the perf benches record `VmHWM` (the kernel's high-water mark of the
//! process's resident set) next to every timed section. The counter is
//! process-wide and monotonic: a section's value is "the largest the
//! process has ever been *up to the end of this section*", which is
//! exactly the right shape for a flat-memory claim — if the streamed
//! sections plateau instead of climbing, nothing in them scaled with
//! stream length.

/// Peak resident set size of this process in kilobytes (`VmHWM` from
/// `/proc/self/status`). Returns 0 on non-Linux platforms or if the
/// counter cannot be read — benches treat 0 as "not measured".
pub fn peak_rss_kb() -> u64 {
    #[cfg(target_os = "linux")]
    {
        let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
            return 0;
        };
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let mut parts = rest.split_whitespace();
                if let Some(value) = parts.next() {
                    if let Ok(kb) = value.parse::<u64>() {
                        return kb;
                    }
                }
                return 0;
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_positive_on_linux_and_monotonic() {
        let first = peak_rss_kb();
        if cfg!(target_os = "linux") {
            assert!(first > 0, "VmHWM should be readable on linux");
        }
        // Touch a few megabytes, then re-read: the high-water mark never
        // goes down.
        let buf = vec![1u8; 4 << 20];
        assert!(buf.iter().map(|&b| b as u64).sum::<u64>() > 0);
        let second = peak_rss_kb();
        assert!(second >= first);
    }
}
