//! Paper-scale out-of-core benchmark: generates the three suites at the
//! paper's HuggingFace scale as *block streams*, commits them to a
//! columnar invocation store, and runs the streamed ground-truth executor
//! from both the generator and the store — recording wall time and peak
//! RSS (`VmHWM`) per section so the flat-memory claim is machine-checkable.
//!
//! Usage:
//!
//! ```text
//! cargo run -p stem-bench --release --bin paperscale -- \
//!     [--hf-scale 1.0] [--seed 2025] [--threads 1,4] \
//!     [--mode streamed|in-memory] [--store-dir target/paperscale_store] \
//!     [--out BENCH_paperscale.json]
//! ```
//!
//! `--mode streamed` (default) never materializes a workload: every
//! section runs off block streams, so peak RSS stays a few blocks no
//! matter the scale. `--mode in-memory` materializes each suite and runs
//! the retained reference path (`run_full_par`) — run it as a *separate
//! process* to get the before/after peak-RSS comparison, since `VmHWM`
//! is process-wide and monotonic.
//!
//! The bin asserts the streamed totals are bit-identical between the
//! generate path and the store path at every thread count (and, in
//! in-memory mode, identical to the reference), so the benchmark doubles
//! as a paper-scale equivalence gate.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use gpu_workload::suites::HuggingfaceScale;
use gpu_workload::{StoreWriter, SuiteKind, WorkloadSource, DEFAULT_BLOCK_LEN};
use stem_bench::harness::ExperimentOptions;
use stem_bench::memuse::peak_rss_kb;
use stem_core::{SnapshotError, StemConfig, StemError};
use stem_storage::RealFs;

const SUITES: [(SuiteKind, &str); 3] = [
    (SuiteKind::Rodinia, "rodinia"),
    (SuiteKind::Casio, "casio"),
    (SuiteKind::Huggingface, "huggingface"),
];

struct Section {
    name: String,
    threads: usize,
    wall_ns: u128,
    units: u64,
    peak_rss_kb: u64,
}

impl Section {
    fn units_per_s(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.units as f64 / (self.wall_ns as f64 / 1e9)
    }
}

struct Args {
    hf_scale: f64,
    seed: u64,
    threads: Vec<usize>,
    mode: String,
    store_dir: PathBuf,
    out: String,
}

fn parse_args() -> Result<Args, StemError> {
    let mut parsed = Args {
        hf_scale: 1.0,
        seed: 2025,
        threads: vec![1, 4],
        mode: "streamed".to_string(),
        store_dir: PathBuf::from("target/paperscale_store"),
        out: "BENCH_paperscale.json".to_string(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| -> Result<&str, StemError> {
            args.get(i + 1).map(String::as_str).ok_or_else(|| {
                StemError::InvalidConfig(format!("missing value after {}", args[i]))
            })
        };
        match args[i].as_str() {
            "--hf-scale" => {
                let raw = need(i)?;
                parsed.hf_scale = raw.parse().map_err(|_| {
                    StemError::InvalidConfig(format!("--hf-scale takes a float, got {raw:?}"))
                })?;
            }
            "--seed" => {
                let raw = need(i)?;
                parsed.seed = raw.parse().map_err(|_| {
                    StemError::InvalidConfig(format!("--seed takes a u64, got {raw:?}"))
                })?;
            }
            "--threads" => {
                let raw = need(i)?;
                parsed.threads = raw
                    .split(',')
                    .map(|t| {
                        t.trim().parse::<usize>().map_err(|_| {
                            StemError::InvalidConfig(format!(
                                "--threads takes a comma list of counts, got {raw:?}"
                            ))
                        })
                    })
                    .collect::<Result<_, _>>()?;
                if parsed.threads.is_empty() {
                    return Err(StemError::InvalidConfig(
                        "--threads needs at least one count".to_string(),
                    ));
                }
            }
            "--mode" => {
                let raw = need(i)?;
                if raw != "streamed" && raw != "in-memory" {
                    return Err(StemError::InvalidConfig(format!(
                        "--mode is streamed or in-memory, got {raw:?}"
                    )));
                }
                parsed.mode = raw.to_string();
            }
            "--store-dir" => parsed.store_dir = PathBuf::from(need(i)?),
            "--out" => parsed.out = need(i)?.to_string(),
            other => {
                return Err(StemError::InvalidConfig(format!("unknown option {other}")));
            }
        }
        i += 2;
    }
    Ok(parsed)
}

fn ground_truth(e: impl std::fmt::Display) -> StemError {
    StemError::GroundTruth(e.to_string())
}

fn store_dir_for(root: &Path, suite: &str, source: &WorkloadSource) -> PathBuf {
    root.join(suite).join(source.name())
}

fn log_section(s: &Section) {
    eprintln!(
        "paperscale: {:<42} t={} {:>12.3} ms  {:>14.0} units/s  rss {:>9} kB",
        s.name,
        s.threads,
        s.wall_ns as f64 / 1e6,
        s.units_per_s(),
        s.peak_rss_kb
    );
}

fn run_streamed(args: &Args, options: &ExperimentOptions) -> Result<Vec<Section>, StemError> {
    let sim = options.simulator();
    let storage = RealFs;
    let mut sections = Vec::new();

    for (kind, suite_name) in SUITES {
        let sources = options.suite_sources(kind);

        // Section 1: stream-generate into the columnar store. No workload
        // is ever materialized; the writer holds one block at a time.
        let t = Instant::now();
        let mut written = 0_u64;
        for source in &sources {
            let dir = store_dir_for(&args.store_dir, suite_name, source);
            let mut writer = StoreWriter::create(&storage, &dir, DEFAULT_BLOCK_LEN)
                .map_err(ground_truth)?;
            let summary = source
                .stream(&mut writer, DEFAULT_BLOCK_LEN)
                .map_err(ground_truth)?;
            writer.finish(&summary).map_err(ground_truth)?;
            written += summary.invocations;
        }
        let s = Section {
            name: format!("{suite_name}/colstore_write"),
            threads: 1,
            wall_ns: t.elapsed().as_nanos(),
            units: written,
            peak_rss_kb: peak_rss_kb(),
        };
        log_section(&s);
        sections.push(s);

        // Sections 2..: streamed ground truth from the generator and from
        // the store, at each thread count, cross-checked bitwise.
        let mut reference_bits: Option<Vec<u64>> = None;
        for &threads in &args.threads {
            let par = stem_par::Parallelism::with_threads(threads);

            let t = Instant::now();
            let mut gen_totals = Vec::with_capacity(sources.len());
            let mut units = 0_u64;
            for source in &sources {
                let total = gpu_sim::source_total(
                    &sim,
                    par,
                    source,
                    DEFAULT_BLOCK_LEN,
                    gpu_sim::DEFAULT_CHANNEL_BLOCKS,
                )
                .map_err(ground_truth)?;
                units += total.invocations;
                gen_totals.push(total.total_cycles.to_bits());
            }
            let s = Section {
                name: format!("{suite_name}/ground_truth_stream_generate"),
                threads,
                wall_ns: t.elapsed().as_nanos(),
                units,
                peak_rss_kb: peak_rss_kb(),
            };
            log_section(&s);
            sections.push(s);

            let t = Instant::now();
            let mut store_totals = Vec::with_capacity(sources.len());
            let mut units = 0_u64;
            for source in &sources {
                let dir = store_dir_for(&args.store_dir, suite_name, source);
                let total = gpu_sim::store_total(
                    &sim,
                    par,
                    &storage,
                    &dir,
                    gpu_sim::DEFAULT_CHANNEL_BLOCKS,
                )
                .map_err(ground_truth)?;
                units += total.invocations;
                store_totals.push(total.total_cycles.to_bits());
            }
            let s = Section {
                name: format!("{suite_name}/ground_truth_stream_store"),
                threads,
                wall_ns: t.elapsed().as_nanos(),
                units,
                peak_rss_kb: peak_rss_kb(),
            };
            log_section(&s);
            sections.push(s);

            assert_eq!(
                gen_totals, store_totals,
                "{suite_name}: store path diverged from generate path at {threads} threads"
            );
            match &reference_bits {
                None => reference_bits = Some(gen_totals),
                Some(reference) => assert_eq!(
                    reference, &gen_totals,
                    "{suite_name}: totals moved with thread count"
                ),
            }
        }
    }
    Ok(sections)
}

fn run_in_memory(args: &Args, options: &ExperimentOptions) -> Result<Vec<Section>, StemError> {
    let sim = options.simulator();
    let mut sections = Vec::new();
    for (kind, suite_name) in SUITES {
        // The retained reference path: materialize the whole suite, then
        // run the in-memory full simulation (per-invocation vector and
        // all). Peak RSS scales with suite size here — the "before"
        // column of the flat-memory table.
        let t = Instant::now();
        let workloads = options.suite(kind);
        let invocations: u64 = workloads.iter().map(|w| w.num_invocations() as u64).sum();
        let s = Section {
            name: format!("{suite_name}/materialize"),
            threads: 1,
            wall_ns: t.elapsed().as_nanos(),
            units: invocations,
            peak_rss_kb: peak_rss_kb(),
        };
        log_section(&s);
        sections.push(s);

        for &threads in &args.threads {
            let par = stem_par::Parallelism::with_threads(threads);
            let t = Instant::now();
            let mut totals = Vec::with_capacity(workloads.len());
            for w in &workloads {
                totals.push(sim.run_full_par(w, par).total_cycles);
            }
            let streamed: Vec<f64> = workloads
                .iter()
                .map(|w| {
                    gpu_sim::workload_total(
                        &sim,
                        par,
                        w,
                        DEFAULT_BLOCK_LEN,
                        gpu_sim::DEFAULT_CHANNEL_BLOCKS,
                    )
                    .map(|t| t.total_cycles)
                })
                .collect::<Result<_, _>>()
                .map_err(ground_truth)?;
            for (a, b) in totals.iter().zip(&streamed) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{suite_name}: streamed total diverged from reference at {threads} threads"
                );
            }
            let s = Section {
                name: format!("{suite_name}/ground_truth_in_memory"),
                threads,
                wall_ns: t.elapsed().as_nanos(),
                units: invocations,
                peak_rss_kb: peak_rss_kb(),
            };
            log_section(&s);
            sections.push(s);
        }
    }
    Ok(sections)
}

fn run() -> Result<(), StemError> {
    let args = parse_args()?;
    let mut options = ExperimentOptions::default_repro();
    options.seed = args.seed;
    options.hf_scale = HuggingfaceScale::custom(args.hf_scale);
    options.stem_config = StemConfig::paper();

    eprintln!(
        "paperscale: mode={} hf_scale={} seed={} threads={:?} block_len={} store={}",
        args.mode,
        args.hf_scale,
        args.seed,
        args.threads,
        DEFAULT_BLOCK_LEN,
        args.store_dir.display()
    );

    let wall = Instant::now();
    let sections = if args.mode == "streamed" {
        run_streamed(&args, &options)?
    } else {
        run_in_memory(&args, &options)?
    };
    let total_ns = wall.elapsed().as_nanos();

    // Hand-rolled JSON (the workspace is hermetic: no serde).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"paperscale\",\n");
    json.push_str("  \"schema_version\": 1,\n");
    json.push_str(&format!("  \"mode\": \"{}\",\n", args.mode));
    json.push_str(&format!("  \"hf_scale\": {},\n", args.hf_scale));
    json.push_str(&format!("  \"seed\": {},\n", args.seed));
    json.push_str(&format!("  \"block_len\": {DEFAULT_BLOCK_LEN},\n"));
    json.push_str(&format!(
        "  \"channel_blocks\": {},\n",
        gpu_sim::DEFAULT_CHANNEL_BLOCKS
    ));
    json.push_str(&format!(
        "  \"threads\": [{}],\n",
        args.threads
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!("  \"total_wall_ns\": {total_ns},\n"));
    json.push_str("  \"sections\": [\n");
    for (i, s) in sections.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"threads\": {}, \"wall_ns\": {}, \"units\": {}, \
             \"units_per_s\": {:.1}, \"peak_rss_kb\": {}}}{}\n",
            s.name,
            s.threads,
            s.wall_ns,
            s.units,
            s.units_per_s(),
            s.peak_rss_kb,
            if i + 1 < sections.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    stem_storage::write_atomic(&RealFs, Path::new(&args.out), &json)
        .map_err(|e| StemError::Snapshot(SnapshotError::Io(e)))?;
    eprintln!(
        "paperscale: total {:.3} s -> {}",
        total_ns as f64 / 1e9,
        args.out
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("paperscale: {e}");
            ExitCode::from(2)
        }
    }
}
