//! Paper-scale hot-path benchmark: times ground-truth simulation,
//! clustering (plan construction), and the end-to-end pipeline per suite,
//! and emits a machine-readable `BENCH_hotpath.json` so every PR can be
//! compared against the previous perf trajectory point.
//!
//! Usage:
//!
//! ```text
//! cargo run -p stem-bench --release --bin perf -- \
//!     [--hf-scale 0.05] [--seed 2025] [--reps 3] [--out BENCH_hotpath.json]
//! ```
//!
//! Timing is wall-clock (`Instant`); the thread budget is whatever
//! `STEM_THREADS` resolves to (recorded in the output). All simulated
//! results obey the workspace determinism contract, so two runs differ
//! only in the wall-clock fields.

use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use gpu_workload::suites::HuggingfaceScale;
use gpu_workload::{SuiteKind, Workload};
use stem_bench::harness::ExperimentOptions;
use stem_bench::memuse::peak_rss_kb;
use stem_core::sampler::KernelSampler;
use stem_core::{Pipeline, SnapshotError, StemConfig, StemError, StemRootSampler};

/// One timed section of one suite.
struct Section {
    name: &'static str,
    wall_ns: u128,
    /// Work units processed (invocations for sim phases, points for plans).
    units: u64,
    /// Process peak RSS (`VmHWM`, kB) observed at the end of the section.
    /// Monotonic across sections: a flat sequence means nothing in later
    /// sections scaled memory with stream length.
    peak_rss_kb: u64,
}

impl Section {
    fn units_per_s(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.units as f64 / (self.wall_ns as f64 / 1e9)
    }
}

struct SuiteReport {
    suite: &'static str,
    workloads: usize,
    invocations: u64,
    sections: Vec<Section>,
}

fn parse_args() -> Result<(f64, u64, u32, String), StemError> {
    let mut hf_scale = 0.05_f64;
    let mut seed = 2025_u64;
    let mut reps = 3_u32;
    let mut out = "BENCH_hotpath.json".to_string();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| -> Result<&str, StemError> {
            args.get(i + 1).map(String::as_str).ok_or_else(|| {
                StemError::InvalidConfig(format!("missing value after {}", args[i]))
            })
        };
        match args[i].as_str() {
            "--hf-scale" => {
                let raw = need(i)?;
                hf_scale = raw.parse().map_err(|_| {
                    StemError::InvalidConfig(format!("--hf-scale takes a float, got {raw:?}"))
                })?;
                i += 2;
            }
            "--seed" => {
                let raw = need(i)?;
                seed = raw.parse().map_err(|_| {
                    StemError::InvalidConfig(format!("--seed takes a u64, got {raw:?}"))
                })?;
                i += 2;
            }
            "--reps" => {
                let raw = need(i)?;
                reps = raw.parse().map_err(|_| {
                    StemError::InvalidConfig(format!("--reps takes a u32, got {raw:?}"))
                })?;
                i += 2;
            }
            "--out" => {
                out = need(i)?.to_string();
                i += 2;
            }
            other => {
                return Err(StemError::InvalidConfig(format!("unknown option {other}")));
            }
        }
    }
    Ok((hf_scale, seed, reps, out))
}

fn bench_suite(kind: SuiteKind, options: &ExperimentOptions, reps: u32) -> SuiteReport {
    let workloads: Vec<Workload> = options.suite(kind);
    let invocations: u64 = workloads.iter().map(|w| w.num_invocations() as u64).sum();
    let sim = options.simulator();
    let par = stem_par::Parallelism::from_env();
    let sampler = StemRootSampler::new(options.stem_config.clone());
    let mut sections = Vec::new();

    // Ground-truth simulation: the full analytic model over every invocation.
    let t = Instant::now();
    let mut total_cycles = 0.0_f64;
    for w in &workloads {
        total_cycles += sim.run_full_par(w, par).total_cycles;
    }
    sections.push(Section {
        name: "ground_truth_sim",
        wall_ns: t.elapsed().as_nanos(),
        units: invocations,
        peak_rss_kb: peak_rss_kb(),
    });
    assert!(total_cycles.is_finite() && total_cycles > 0.0);

    // Clustering / plan construction (profiler + ROOT + k-means + sizing).
    let t = Instant::now();
    let mut planned_samples = 0_u64;
    for w in &workloads {
        planned_samples += sampler.plan(w, options.seed).num_samples() as u64;
    }
    sections.push(Section {
        name: "clustering_plan",
        wall_ns: t.elapsed().as_nanos(),
        units: invocations,
        peak_rss_kb: peak_rss_kb(),
    });
    assert!(planned_samples > 0);

    // End-to-end pipeline: ground truth + reps × (plan + sampled sim + eval).
    // A fresh sampler keeps this a cold start: the sampler memoizes the
    // profile+clustering across repetitions, and reusing the one warmed by
    // the clustering section above would hide the first plan's cost.
    let cold_sampler = StemRootSampler::new(options.stem_config.clone());
    let pipeline = Pipeline::new(options.simulator())
        .with_reps(reps)
        .expect("positive reps")
        .with_seed(options.seed)
        .with_parallelism(par);
    let t = Instant::now();
    let mut mean_err = 0.0_f64;
    for w in &workloads {
        mean_err += pipeline.run(&cold_sampler, w).mean_error_pct;
    }
    sections.push(Section {
        name: "pipeline_end_to_end",
        wall_ns: t.elapsed().as_nanos(),
        units: invocations * (reps as u64 + 1),
        peak_rss_kb: peak_rss_kb(),
    });
    assert!(mean_err.is_finite());

    SuiteReport {
        suite: match kind {
            SuiteKind::Rodinia => "rodinia",
            SuiteKind::Casio => "casio",
            SuiteKind::Huggingface => "huggingface",
            SuiteKind::Custom => "custom",
        },
        workloads: workloads.len(),
        invocations,
        sections,
    }
}

fn run() -> Result<(), StemError> {
    let (hf_scale, seed, reps, out) = parse_args()?;
    let mut options = ExperimentOptions::default_repro();
    options.seed = seed;
    options.hf_scale = HuggingfaceScale::custom(hf_scale);
    options.stem_config = StemConfig::paper();
    let threads = stem_par::Parallelism::from_env().threads();

    eprintln!("perf: hf_scale={hf_scale} seed={seed} reps={reps} threads={threads}");

    let suites = [SuiteKind::Rodinia, SuiteKind::Casio, SuiteKind::Huggingface];
    let mut reports = Vec::new();
    let wall = Instant::now();
    for kind in suites {
        let r = bench_suite(kind, &options, reps);
        for s in &r.sections {
            eprintln!(
                "perf: {:<12} {:<20} {:>12.3} ms  {:>14.0} units/s",
                r.suite,
                s.name,
                s.wall_ns as f64 / 1e6,
                s.units_per_s()
            );
        }
        reports.push(r);
    }
    let total_ns = wall.elapsed().as_nanos();

    // Hand-rolled JSON (the workspace is hermetic: no serde).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"hotpath\",\n");
    json.push_str("  \"schema_version\": 1,\n");
    json.push_str(&format!("  \"hf_scale\": {hf_scale},\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"total_wall_ns\": {total_ns},\n"));
    json.push_str("  \"suites\": [\n");
    for (i, r) in reports.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"suite\": \"{}\",\n", r.suite));
        json.push_str(&format!("      \"workloads\": {},\n", r.workloads));
        json.push_str(&format!("      \"invocations\": {},\n", r.invocations));
        json.push_str("      \"sections\": [\n");
        for (j, s) in r.sections.iter().enumerate() {
            json.push_str(&format!(
                "        {{\"name\": \"{}\", \"wall_ns\": {}, \"units\": {}, \"units_per_s\": {:.1}, \"peak_rss_kb\": {}}}{}\n",
                s.name,
                s.wall_ns,
                s.units,
                s.units_per_s(),
                s.peak_rss_kb,
                if j + 1 < r.sections.len() { "," } else { "" }
            ));
        }
        json.push_str("      ]\n");
        json.push_str(&format!(
            "    }}{}\n",
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    stem_storage::write_atomic(&stem_storage::RealFs, Path::new(&out), &json)
        .map_err(|e| StemError::Snapshot(SnapshotError::Io(e)))?;
    eprintln!(
        "perf: total {:.3} s -> {out}",
        total_ns as f64 / 1e9
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // All failures leave through the typed StemError display, so
            // CLI and daemon error lines share one format.
            eprintln!("perf: {e}");
            ExitCode::from(2)
        }
    }
}
