//! `repro` — regenerate every table and figure of the STEM+ROOT paper.
//!
//! ```text
//! Usage: repro <command> [options]
//!
//! Commands:
//!   all              run every experiment below
//!   table2           suite inventory
//!   table3           average speedup/error, 5 methods x 3 suites
//!   table4           DSE errors under microarchitecture changes
//!   table5           profiling overhead comparison
//!   fig1             execution-time histograms of heterogeneous kernels
//!   fig2             CoV-vs-peaks motivation quadrant
//!   fig7 | fig8      per-workload speedups / errors (one run emits both)
//!   fig9             speedup-vs-error scatter (CASIO + HuggingFace)
//!   fig10            kernels grouped as "identical" by PKA/Photon (DLRM)
//!   fig11            error-bound (epsilon) sweep
//!   fig12            sampled vs full cycle counts across uarch variants
//!   fig13            H100-profile -> H200-simulate portability
//!   fig14            13 microarchitectural metrics, full vs sampled
//!   ablation-kkt     joint KKT sizing vs per-cluster Eq. 3
//!   ablation-root    ROOT hierarchical clustering on/off
//!   ablation-flush   L2 flush between kernels (Sec. 6.2)
//!   ablation-smallsample  Student-t correction below the CLT rule of thumb
//!   ext-chakra       multi-GPU execution-trace node sampling (extension)
//!   ext-intra        intra-kernel (wave-level) sampling (extension)
//!   ext-tracegen     selective trace-generation savings (Fig. 5)
//!   ext-energy       sampled energy estimation
//!   coverage         interval-calibration matrix -> coverage_summary.json
//!
//! Options:
//!   --reps N         repetitions per experiment  [default: 10; 3 with --fast]
//!   --seed S         base seed                   [default: 2025]
//!   --hf-scale F     HuggingFace suite scale     [default: 0.05; 1.0 = paper]
//!   --fast           small, quick configuration for smoke runs
//!
//! CSVs are written to ./results (override with STEM_RESULTS_DIR).
//! ```

use std::process::ExitCode;

use stem_bench::experiments::{
    ablations, accuracy, coverage, dse, extensions, limits, metrics, motivation, overhead,
};
use stem_bench::harness::ExperimentOptions;
use stem_core::StemError;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // All failures leave through the typed StemError display, so
            // CLI and daemon error lines share one format.
            eprintln!("repro: {e}");
            print_usage();
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<(), StemError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        return Ok(());
    }
    let command = args[0].clone();
    let mut options = ExperimentOptions::default_repro();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--fast" => {
                options = ExperimentOptions::fast();
            }
            "--reps" => {
                options.reps = parse_next(&args, &mut i, "reps")?;
            }
            "--seed" => {
                options.seed = parse_next(&args, &mut i, "seed")?;
            }
            "--hf-scale" => {
                let f: f64 = parse_next(&args, &mut i, "hf-scale")?;
                options.hf_scale = gpu_workload::suites::HuggingfaceScale::custom(f);
            }
            other => {
                return Err(StemError::InvalidConfig(format!("unknown option: {other}")));
            }
        }
        i += 1;
    }

    let start = std::time::Instant::now();
    match command.as_str() {
        "all" => {
            motivation::table2(&options);
            motivation::fig1(&options);
            motivation::fig2(&options);
            accuracy::table3(&options);
            accuracy::fig7_fig8(&options);
            accuracy::fig9(&options);
            limits::fig10(&options);
            limits::fig11(&options);
            dse::table4(&options);
            dse::fig12(&options);
            dse::fig13(&options);
            metrics::fig14(&options);
            overhead::table5(&options);
            ablations::ablation_kkt(&options);
            ablations::ablation_root(&options);
            ablations::ablation_flush(&options);
            ablations::ablation_smallsample(&options);
            extensions::ext_chakra(&options);
            extensions::ext_intra(&options);
            extensions::ext_tracegen(&options);
            extensions::ext_energy(&options);
        }
        "table2" => {
            motivation::table2(&options);
        }
        "table3" => {
            accuracy::table3(&options);
        }
        "table4" => {
            dse::table4(&options);
        }
        "table5" => {
            overhead::table5(&options);
        }
        "fig1" => {
            motivation::fig1(&options);
        }
        "fig2" => {
            motivation::fig2(&options);
        }
        "fig7" | "fig8" => {
            accuracy::fig7_fig8(&options);
        }
        "fig9" => {
            accuracy::fig9(&options);
        }
        "fig10" => {
            limits::fig10(&options);
        }
        "fig11" => {
            limits::fig11(&options);
        }
        "fig12" => {
            dse::fig12(&options);
        }
        "fig13" => {
            dse::fig13(&options);
        }
        "fig14" => {
            metrics::fig14(&options);
        }
        "ablation-kkt" => {
            ablations::ablation_kkt(&options);
        }
        "ablation-root" => {
            ablations::ablation_root(&options);
        }
        "ablation-flush" => {
            ablations::ablation_flush(&options);
        }
        "ablation-smallsample" => {
            ablations::ablation_smallsample(&options);
        }
        "ext-chakra" => {
            extensions::ext_chakra(&options);
        }
        "ext-intra" => {
            extensions::ext_intra(&options);
        }
        "ext-tracegen" => {
            extensions::ext_tracegen(&options);
        }
        "ext-energy" => {
            extensions::ext_energy(&options);
        }
        "coverage" => {
            // The calibration matrix pins its own reps/seed so the
            // committed summary regenerates bit-identically.
            coverage::coverage_summary();
        }
        "help" | "--help" | "-h" => {
            print_usage();
            return Ok(());
        }
        other => {
            return Err(StemError::InvalidConfig(format!("unknown command: {other}")));
        }
    }
    eprintln!(
        "done in {:.1}s; CSVs in {}",
        start.elapsed().as_secs_f64(),
        stem_bench::report::results_dir().display()
    );
    Ok(())
}

fn parse_next<T: std::str::FromStr>(
    args: &[String],
    i: &mut usize,
    name: &str,
) -> Result<T, StemError> {
    *i += 1;
    args.get(*i)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| StemError::InvalidConfig(format!("--{name} requires a value")))
}

fn print_usage() {
    println!(
        "repro — regenerate the STEM+ROOT paper's tables and figures\n\n\
         usage: repro <all|table2|table3|table4|table5|fig1|fig2|fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|ablation-kkt|ablation-root|ablation-flush|ablation-smallsample|ext-chakra|ext-intra|ext-tracegen|ext-energy|coverage>\n\
         \x20      [--reps N] [--seed S] [--hf-scale F] [--fast]"
    );
}
