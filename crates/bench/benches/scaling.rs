//! Sec. 5.6 scalability claims: STEM's profiling/clustering cost is
//! near-linear in the number of kernel invocations, while Photon's online
//! BBV matching grows superlinearly as its candidate tables fill.

use gpu_workload::suites::{huggingface_suite, HuggingfaceScale};
use gpu_workload::Workload;
use stem_baselines::PhotonSampler;
use stem_bench::microbench::{bench, group};
use stem_core::sampler::KernelSampler;
use stem_core::{StemConfig, StemRootSampler};

fn workload_at(scale: f64) -> Workload {
    huggingface_suite(7, HuggingfaceScale::custom(scale))
        .into_iter()
        .find(|w| w.name() == "bert")
        .expect("bert exists")
}

fn main() {
    group("sec5_6_scalability");
    for scale in [0.002, 0.008, 0.032] {
        let w = workload_at(scale);
        let n = w.num_invocations();
        let stem = StemRootSampler::new(StemConfig::default());
        bench(&format!("stem_plan/{n}"), || stem.plan(&w, 1));
        let photon = PhotonSampler::new();
        bench(&format!("photon_match/{n}"), || photon.analyze(&w));
    }
}
