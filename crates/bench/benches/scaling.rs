//! Sec. 5.6 scalability claims: STEM's profiling/clustering cost is
//! near-linear in the number of kernel invocations, while Photon's online
//! BBV matching grows superlinearly as its candidate tables fill.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_workload::suites::{huggingface_suite, HuggingfaceScale};
use gpu_workload::Workload;
use stem_baselines::PhotonSampler;
use stem_core::sampler::KernelSampler;
use stem_core::{StemConfig, StemRootSampler};

fn workload_at(scale: f64) -> Workload {
    huggingface_suite(7, HuggingfaceScale::custom(scale))
        .into_iter()
        .find(|w| w.name() == "bert")
        .expect("bert exists")
}

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec5_6_scalability");
    group.sample_size(10);
    for scale in [0.002, 0.008, 0.032] {
        let w = workload_at(scale);
        let n = w.num_invocations();
        let stem = StemRootSampler::new(StemConfig::default());
        group.bench_with_input(BenchmarkId::new("stem_plan", n), &w, |b, w| {
            b.iter(|| stem.plan(w, 1))
        });
        let photon = PhotonSampler::new();
        group.bench_with_input(BenchmarkId::new("photon_match", n), &w, |b, w| {
            b.iter(|| photon.analyze(w))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
