//! Core-algorithm microbenchmarks: the KKT solver (Eq. 6), ROOT's exact
//! two-way split, 1-D k-means, d-dimensional k-means and KDE.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stem_cluster::{best_two_split, kmeans_1d, KMeans, KMeansConfig};
use stem_stats::kde::Kde;
use stem_stats::kkt::{solve_sample_sizes, ClusterStat};

/// Deterministic pseudo-random values without pulling a RNG into the hot
/// loop setup.
fn synth_values(n: usize) -> Vec<f64> {
    let mut state = 0x12345678u64;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            if u < 0.5 {
                10.0 + u * 4.0
            } else {
                100.0 + u * 40.0
            }
        })
        .collect()
}

fn bench_kkt(c: &mut Criterion) {
    let mut group = c.benchmark_group("kkt_solver");
    for k in [4usize, 64, 1024] {
        let clusters: Vec<ClusterStat> = (0..k)
            .map(|i| {
                ClusterStat::new(
                    1000 + i as u64 * 13,
                    1.0 + i as f64,
                    0.1 + (i % 7) as f64 * 0.2,
                )
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(k), &clusters, |b, cl| {
            b.iter(|| solve_sample_sizes(cl, 0.05, 1.96))
        });
    }
    group.finish();
}

fn bench_two_split(c: &mut Criterion) {
    let mut group = c.benchmark_group("root_two_split");
    for n in [1_000usize, 10_000, 100_000] {
        let values = synth_values(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &values, |b, v| {
            b.iter(|| best_two_split(v))
        });
    }
    group.finish();
}

fn bench_kmeans_1d(c: &mut Criterion) {
    let values = synth_values(500);
    c.bench_function("kmeans_1d_dp_k4_n500", |b| b.iter(|| kmeans_1d(&values, 4)));
}

fn bench_kmeans(c: &mut Criterion) {
    let points: Vec<Vec<f64>> = synth_values(2_000)
        .chunks(2)
        .map(|ch| vec![ch[0], ch[1]])
        .collect();
    c.bench_function("kmeans_2d_k8_n1000", |b| {
        b.iter(|| KMeans::fit(&points, KMeansConfig::new(8, 3)))
    });
}

fn bench_kde(c: &mut Criterion) {
    let values = synth_values(2_000);
    c.bench_function("kde_modes_n2000", |b| {
        b.iter(|| Kde::new(&values).modes(256, 0.15))
    });
}

fn bench_multi_gpu_trace(c: &mut Criterion) {
    use gpu_sim::multi_gpu::{simulate_trace, ClusterConfig};
    use gpu_workload::chakra::data_parallel_training;
    let trace = data_parallel_training("ddp", 8, 24, 10, 3);
    let cfg = ClusterConfig::h100_nvlink();
    let mut group = c.benchmark_group("multi_gpu");
    group.sample_size(20);
    group.bench_function("simulate_ddp_8gpu_10step", |b| {
        b.iter(|| simulate_trace(&trace, &cfg))
    });
    group.finish();
}

fn bench_wave_profile(c: &mut Criterion) {
    use gpu_sim::{GpuConfig, Simulator};
    use gpu_workload::kernel::KernelClassBuilder;
    use gpu_workload::{RuntimeContext, SuiteKind, WorkloadBuilder};
    let mut b = WorkloadBuilder::new("w", SuiteKind::Custom, 1);
    let id = b.add_kernel(
        KernelClassBuilder::new("mega")
            .geometry(12_000, 256)
            .resources(64, 16 * 1024)
            .instructions(40_000)
            .build(),
        vec![RuntimeContext::neutral()],
    );
    b.invoke(id, 0, 1.0);
    let w = b.build();
    let sim = Simulator::new(GpuConfig::rtx2080());
    c.bench_function("wave_profile_65_waves", |bch| {
        bch.iter(|| sim.wave_profile(&w, &w.invocations()[0]))
    });
}

criterion_group!(
    benches,
    bench_kkt,
    bench_two_split,
    bench_kmeans_1d,
    bench_kmeans,
    bench_kde,
    bench_multi_gpu_trace,
    bench_wave_profile
);
criterion_main!(benches);
