//! Core-algorithm microbenchmarks: the KKT solver (Eq. 6), ROOT's exact
//! two-way split, 1-D k-means, d-dimensional k-means and KDE.

use stem_bench::microbench::{bench, group};
use stem_cluster::{best_two_split, kmeans_1d, KMeans, KMeansConfig};
use stem_stats::kde::Kde;
use stem_stats::kkt::{solve_sample_sizes, ClusterStat};

/// Deterministic pseudo-random values without pulling a RNG into the hot
/// loop setup.
fn synth_values(n: usize) -> Vec<f64> {
    let mut state = 0x12345678u64;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            if u < 0.5 {
                10.0 + u * 4.0
            } else {
                100.0 + u * 40.0
            }
        })
        .collect()
}

fn bench_kkt() {
    group("kkt_solver");
    for k in [4usize, 64, 1024] {
        let clusters: Vec<ClusterStat> = (0..k)
            .map(|i| {
                ClusterStat::new(
                    1000 + i as u64 * 13,
                    1.0 + i as f64,
                    0.1 + (i % 7) as f64 * 0.2,
                )
            })
            .collect();
        bench(&format!("kkt_solver/{k}"), || solve_sample_sizes(&clusters, 0.05, 1.96));
    }
}

fn bench_two_split() {
    group("root_two_split");
    for n in [1_000usize, 10_000, 100_000] {
        let values = synth_values(n);
        bench(&format!("root_two_split/{n}"), || best_two_split(&values));
    }
}

fn bench_kmeans_1d() {
    let values = synth_values(500);
    bench("kmeans_1d_dp_k4_n500", || kmeans_1d(&values, 4));
}

fn bench_kmeans() {
    let points: Vec<Vec<f64>> = synth_values(2_000)
        .chunks(2)
        .map(|ch| vec![ch[0], ch[1]])
        .collect();
    bench("kmeans_2d_k8_n1000", || KMeans::fit(&points, KMeansConfig::new(8, 3)));
}

fn bench_kde() {
    let values = synth_values(2_000);
    bench("kde_modes_n2000", || Kde::new(&values).modes(256, 0.15));
}

fn bench_multi_gpu_trace() {
    use gpu_sim::multi_gpu::{simulate_trace, ClusterConfig};
    use gpu_workload::chakra::data_parallel_training;
    let trace = data_parallel_training("ddp", 8, 24, 10, 3);
    let cfg = ClusterConfig::h100_nvlink();
    group("multi_gpu");
    bench("simulate_ddp_8gpu_10step", || simulate_trace(&trace, &cfg));
}

fn bench_wave_profile() {
    use gpu_sim::{GpuConfig, Simulator};
    use gpu_workload::kernel::KernelClassBuilder;
    use gpu_workload::{RuntimeContext, SuiteKind, WorkloadBuilder};
    let mut b = WorkloadBuilder::new("w", SuiteKind::Custom, 1);
    let id = b.add_kernel(
        KernelClassBuilder::new("mega")
            .geometry(12_000, 256)
            .resources(64, 16 * 1024)
            .instructions(40_000)
            .build(),
        vec![RuntimeContext::neutral()],
    );
    b.invoke(id, 0, 1.0);
    let w = b.build();
    let sim = Simulator::new(GpuConfig::rtx2080());
    bench("wave_profile_65_waves", || sim.wave_profile(&w, &w.invocations()[0]));
}

fn main() {
    bench_kkt();
    bench_two_split();
    bench_kmeans_1d();
    bench_kmeans();
    bench_kde();
    bench_multi_gpu_trace();
    bench_wave_profile();
}
