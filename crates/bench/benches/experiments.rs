//! One Criterion bench per reproduced table/figure, each timing the
//! experiment harness at a reduced setting. These complement the `repro`
//! binary (which prints the actual rows): the benches keep the cost of
//! regenerating each artifact visible and regression-tracked.

use criterion::{criterion_group, criterion_main, Criterion};
use stem_bench::experiments::{accuracy, dse, limits, metrics, motivation, overhead};
use stem_bench::harness::ExperimentOptions;
use gpu_workload::suites::HuggingfaceScale;
use gpu_workload::SuiteKind;

fn tiny_options() -> ExperimentOptions {
    let mut o = ExperimentOptions::fast();
    o.reps = 1;
    o.hf_scale = HuggingfaceScale::custom(0.003);
    o
}

fn bench_table2(c: &mut Criterion) {
    let opts = tiny_options();
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("inventory", |b| b.iter(|| motivation::table2(&opts)));
    group.finish();
}

fn bench_table3_rodinia(c: &mut Criterion) {
    let opts = tiny_options();
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("rodinia_all_methods", |b| {
        b.iter(|| accuracy::run_suite(SuiteKind::Rodinia, &opts))
    });
    group.finish();
}

fn bench_table4_dse(c: &mut Criterion) {
    let opts = tiny_options();
    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    group.bench_function("dse_errors", |b| b.iter(|| dse::table4(&opts)));
    group.finish();
}

fn bench_table5_overhead(c: &mut Criterion) {
    let opts = tiny_options();
    let mut group = c.benchmark_group("table5");
    group.sample_size(10);
    group.bench_function("profiling_overheads", |b| b.iter(|| overhead::table5(&opts)));
    group.finish();
}

fn bench_fig1(c: &mut Criterion) {
    let opts = tiny_options();
    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    group.bench_function("histograms", |b| b.iter(|| motivation::fig1(&opts)));
    group.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let opts = tiny_options();
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("identical_groups", |b| b.iter(|| limits::fig10(&opts)));
    group.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let opts = tiny_options();
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    group.bench_function("epsilon_sweep", |b| b.iter(|| limits::fig11(&opts)));
    group.finish();
}

fn bench_fig13(c: &mut Criterion) {
    let opts = tiny_options();
    let mut group = c.benchmark_group("fig13");
    group.sample_size(10);
    group.bench_function("h100_to_h200", |b| b.iter(|| dse::fig13(&opts)));
    group.finish();
}

fn bench_fig14(c: &mut Criterion) {
    let opts = tiny_options();
    let mut group = c.benchmark_group("fig14");
    group.sample_size(10);
    group.bench_function("metric_validation", |b| b.iter(|| metrics::fig14(&opts)));
    group.finish();
}

criterion_group!(
    benches,
    bench_table2,
    bench_table3_rodinia,
    bench_table4_dse,
    bench_table5_overhead,
    bench_fig1,
    bench_fig10,
    bench_fig11,
    bench_fig13,
    bench_fig14
);
criterion_main!(benches);
