//! One micro-bench per reproduced table/figure, each timing the experiment
//! harness at a reduced setting. These complement the `repro` binary (which
//! prints the actual rows): the benches keep the cost of regenerating each
//! artifact visible and regression-tracked.

use gpu_workload::suites::HuggingfaceScale;
use gpu_workload::SuiteKind;
use stem_bench::experiments::{accuracy, dse, limits, metrics, motivation, overhead};
use stem_bench::harness::ExperimentOptions;
use stem_bench::microbench::{bench, group};

fn tiny_options() -> ExperimentOptions {
    let mut o = ExperimentOptions::fast();
    o.reps = 1;
    o.hf_scale = HuggingfaceScale::custom(0.003);
    o
}

fn main() {
    let opts = tiny_options();

    group("table2");
    bench("inventory", || motivation::table2(&opts));

    group("table3");
    bench("rodinia_all_methods", || accuracy::run_suite(SuiteKind::Rodinia, &opts));

    group("table4");
    bench("dse_errors", || dse::table4(&opts));

    group("table5");
    bench("profiling_overheads", || overhead::table5(&opts));

    group("fig1");
    bench("histograms", || motivation::fig1(&opts));

    group("fig10");
    bench("identical_groups", || limits::fig10(&opts));

    group("fig11");
    bench("epsilon_sweep", || limits::fig11(&opts));

    group("fig13");
    bench("h100_to_h200", || dse::fig13(&opts));

    group("fig14");
    bench("metric_validation", || metrics::fig14(&opts));
}
