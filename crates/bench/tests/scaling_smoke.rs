//! Threads=1 vs threads=N smoke check on the largest synthetic suite.
//!
//! The assertion is *determinism only*: the parallel run must produce a
//! bit-identical summary. The measured speedup is printed (run with
//! `--nocapture` to see it) but never gated on — CI machines are too noisy
//! for wall-clock thresholds.

use stem_bench::microbench::{grouped_timing_check, scaling_smoke_check};

/// Regression entry for the deterministic-core/jitter split: the grouped
/// ground-truth path must stay bit-identical to the per-invocation
/// reference; its measured speedup is printed but never gated on.
#[test]
fn grouped_timing_matches_per_invocation_reference() {
    let check = grouped_timing_check();
    println!(
        "grouped vs per-invocation on {}: {:.2}x speedup (informational)",
        check.workload, check.speedup
    );
    assert!(
        check.identical,
        "grouped fast path diverged from the per-invocation reference on {}",
        check.workload
    );
}

#[test]
fn parallel_run_matches_serial_and_reports_speedup() {
    let check = scaling_smoke_check(4);
    println!(
        "threads=1 vs threads={}: {:.2}x speedup (informational)",
        check.threads, check.speedup
    );
    assert!(
        check.identical,
        "parallel run diverged from serial on {}",
        check.workload
    );
}
