//! Seeded property tests for the deterministic parallel runtime.
//!
//! Style follows `crates/stats/tests/properties.rs`: 64 deterministic
//! seeded cases per property, each drawing a random (seed, workload-shape,
//! thread-count) triple, so any failure replays exactly from the printed
//! case number. The property under test is always *bit-equality with the
//! serial code path* — parallelism must be invisible in results.

use stem_par::{
    par_map_indexed, par_map_range, par_reduce_ordered, split_seed, supervised_map_indexed,
    Parallelism, Supervisor, TaskCtx,
};
use stem_stats::rng::{RngCore, RngExt, SeedableRng, StdRng};

const CASES: u64 = 64;

fn rng_for(test_tag: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(0x57A7_5000 ^ (test_tag << 32) ^ case)
}

/// A random (seed, items, thread-count) triple. Lengths are biased toward
/// the awkward zone: empty, single-element, and shorter than the thread
/// count all occur regularly across the 64 cases.
fn triple(rng: &mut StdRng) -> (u64, Vec<f64>, usize) {
    let seed = rng.next_u64();
    let len = match rng.random_range(0u32..10) {
        0 => 0,
        1 => 1,
        2..=4 => rng.random_range(2usize..8),
        _ => rng.random_range(8usize..600),
    };
    let items: Vec<f64> = (0..len).map(|_| rng.random_range(-1e6..1e6)).collect();
    let threads = rng.random_range(1usize..17);
    (seed, items, threads)
}

/// A deliberately seed-dependent map: mixes the task-split seed into the
/// value so any worker-identity leak (wrong index, wrong stream) shows up
/// as a wrong number, not just a reordering.
fn seeded_map(seed: u64, i: usize, x: f64) -> f64 {
    let mut rng = StdRng::seed_from_u64(split_seed(seed, i as u64));
    x * rng.random_range(0.5..2.0) + rng.random::<f64>()
}

#[test]
fn par_map_indexed_equals_serial_map() {
    for case in 0..CASES {
        let mut rng = rng_for(1, case);
        let (seed, items, threads) = triple(&mut rng);
        let serial: Vec<f64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| seeded_map(seed, i, x))
            .collect();
        let par = Parallelism::with_threads(threads);
        let got = par_map_indexed(par, &items, |i, &x| seeded_map(seed, i, x));
        assert_eq!(
            got, serial,
            "case {case}: len {} threads {threads}",
            items.len()
        );
    }
}

#[test]
fn par_reduce_ordered_equals_serial_fold() {
    for case in 0..CASES {
        let mut rng = rng_for(2, case);
        let (seed, items, threads) = triple(&mut rng);
        let serial = items
            .iter()
            .enumerate()
            .map(|(i, &x)| seeded_map(seed, i, x))
            .fold(0.0f64, |acc, v| acc + v);
        let par = Parallelism::with_threads(threads);
        let got = par_reduce_ordered(
            par,
            &items,
            |i, &x| seeded_map(seed, i, x),
            0.0f64,
            |acc, v| acc + v,
        );
        assert_eq!(
            got.to_bits(),
            serial.to_bits(),
            "case {case}: len {} threads {threads} ({got} vs {serial})",
            items.len()
        );
    }
}

#[test]
fn par_map_range_equals_serial_range() {
    for case in 0..CASES {
        let mut rng = rng_for(3, case);
        let (seed, items, threads) = triple(&mut rng);
        let len = items.len();
        let serial: Vec<u64> = (0..len).map(|i| split_seed(seed, i as u64)).collect();
        let got = par_map_range(Parallelism::with_threads(threads), len, |i| {
            split_seed(seed, i as u64)
        });
        assert_eq!(got, serial, "case {case}: len {len} threads {threads}");
    }
}

#[test]
fn thread_count_never_changes_results() {
    // The invariant stated directly: for one input, every thread count in
    // {1, 2, 3, 8} produces the same bits.
    for case in 0..CASES {
        let mut rng = rng_for(4, case);
        let (seed, items, _) = triple(&mut rng);
        let reference = par_reduce_ordered(
            Parallelism::serial(),
            &items,
            |i, &x| seeded_map(seed, i, x),
            0.0f64,
            |acc, v| acc + v,
        );
        for threads in [2usize, 3, 8] {
            let got = par_reduce_ordered(
                Parallelism::with_threads(threads),
                &items,
                |i, &x| seeded_map(seed, i, x),
                0.0f64,
                |acc, v| acc + v,
            );
            assert_eq!(got.to_bits(), reference.to_bits(), "case {case} threads {threads}");
        }
    }
}

#[test]
fn explicit_edge_shapes() {
    let par8 = Parallelism::with_threads(8);
    // Empty input.
    let empty: Vec<f64> = Vec::new();
    assert_eq!(par_map_indexed(par8, &empty, |_, &x| x), Vec::<f64>::new());
    assert_eq!(
        par_reduce_ordered(par8, &empty, |_, &x| x, 42.0f64, |a, v| a + v),
        42.0
    );
    // Single element.
    assert_eq!(par_map_indexed(par8, &[5.0f64], |i, &x| x + i as f64), vec![5.0]);
    // len < threads.
    let short = [1.0f64, 2.0, 3.0];
    let got = par_map_indexed(par8, &short, |i, &x| x * (i + 1) as f64);
    assert_eq!(got, vec![1.0, 4.0, 9.0]);
}

#[test]
fn split_seed_streams_are_distinct_and_stable() {
    // 64 random bases: the first 1000 task streams never collide within a
    // base (a collision would correlate "independent" task RNGs).
    for case in 0..CASES {
        let mut rng = rng_for(5, case);
        let base = rng.next_u64();
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            assert!(seen.insert(split_seed(base, i)), "collision at base {base} index {i}");
        }
    }
}

/// Deterministic per-attempt fault: task `i` panics while
/// `attempt < faulty_attempts` whenever its seeded coin lands heads.
fn injected_panic(seed: u64, ctx: TaskCtx, fraction: f64, faulty_attempts: u32) {
    if ctx.attempt < faulty_attempts {
        let mut rng = StdRng::seed_from_u64(split_seed(seed ^ 0xFA_17, ctx.index as u64));
        assert!(!rng.random_bool(fraction), "injected panic at task {}", ctx.index);
    }
}

#[test]
fn supervised_quiet_path_is_bit_identical_to_unsupervised() {
    // 64 random shapes: with no faults, the supervisor must be invisible —
    // same bits as par_map_indexed at every thread count, quiet log.
    for case in 0..CASES {
        let mut rng = rng_for(6, case);
        let (seed, items, threads) = triple(&mut rng);
        let plain = par_map_indexed(Parallelism::serial(), &items, |i, &x| {
            seeded_map(seed, i, x)
        });
        let (out, log) = supervised_map_indexed(
            Parallelism::with_threads(threads),
            &items,
            &Supervisor::new(),
            |ctx, &x| seeded_map(seed, ctx.index, x),
        )
        .expect("no faults injected");
        let same = out.len() == plain.len()
            && out.iter().zip(&plain).all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "case {case}: supervised map diverged (threads {threads})");
        assert!(log.is_quiet(), "case {case}: {log:?}");
    }
}

#[test]
fn supervised_recovery_is_bit_identical_to_unfaulted_run() {
    // 64 random shapes with seeded single-attempt faults: the retried
    // tasks must recompute exactly the bits an un-faulted run produces,
    // and the recovered-task set must replay identically at every thread
    // count (it derives from task indices, never worker identity).
    for case in 0..CASES {
        let mut rng = rng_for(7, case);
        let (seed, items, threads) = triple(&mut rng);
        if items.is_empty() {
            continue;
        }
        let clean = par_map_indexed(Parallelism::serial(), &items, |i, &x| {
            seeded_map(seed, i, x)
        });
        let run = |t: usize| {
            supervised_map_indexed(
                Parallelism::with_threads(t),
                &items,
                &Supervisor::new(),
                |ctx, &x| {
                    injected_panic(seed, ctx, 0.25, 1);
                    seeded_map(seed, ctx.index, x)
                },
            )
            .expect("one retry covers single-attempt faults")
        };
        let (out, log) = run(threads);
        let same = out.len() == clean.len()
            && out.iter().zip(&clean).all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "case {case}: recovered run diverged (threads {threads})");
        assert_eq!(log.retries as usize, log.recovered.len(), "case {case}");
        let (_, serial_log) = run(1);
        assert_eq!(
            log.recovered, serial_log.recovered,
            "case {case}: recovery set depends on thread count"
        );
    }
}

#[test]
fn supervised_failure_index_is_thread_count_invariant() {
    // Permanent faults (attempt-independent): the reported failure must be
    // the lowest faulty index regardless of thread count.
    for case in 0..CASES {
        let mut rng = rng_for(8, case);
        let (seed, items, threads) = triple(&mut rng);
        let expected_fail = (0..items.len()).find(|&i| {
            let mut r = StdRng::seed_from_u64(split_seed(seed ^ 0xFA_17, i as u64));
            r.random_bool(0.2)
        });
        let Some(expected) = expected_fail else { continue };
        for t in [1, threads] {
            let err = supervised_map_indexed(
                Parallelism::with_threads(t),
                &items,
                &Supervisor::new().with_retry_budget(1),
                |ctx, &x| {
                    injected_panic(seed, ctx, 0.2, u32::MAX);
                    seeded_map(seed, ctx.index, x)
                },
            )
            .expect_err("permanent faults must exhaust the budget");
            assert_eq!(err.index, expected, "case {case}: threads {t}");
            assert_eq!(err.attempts, 2, "case {case}: threads {t}");
        }
    }
}
