//! Supervised execution: panic-isolated workers with deterministic retry.
//!
//! [`crate::par_map_range`] propagates the first worker panic to the
//! caller, tearing down the whole map — the right default for genuine
//! bugs, but fatal for long simulation campaigns where one transient task
//! fault (an injected chaos panic, a poisoned shared resource) would throw
//! away hours of completed work. This module runs every task under a
//! supervisor instead:
//!
//! * each attempt executes inside [`std::panic::catch_unwind`], so a
//!   panicking task never unwinds through the pool;
//! * a failed task is retried up to a configurable budget, and the retry
//!   re-runs the *same task index* — all task randomness derives from the
//!   index via [`crate::split_seed`], so a retried task recomputes exactly
//!   the bits the first attempt would have produced, at any thread count;
//! * attempts that outlive a per-task soft deadline are flagged as
//!   stragglers in the [`ExecLog`] (informational: wall-clock is the one
//!   thing a deterministic runtime cannot promise);
//! * a task that exhausts its budget surfaces as a typed [`TaskFailure`]
//!   for the *lowest failing task index* — deterministic regardless of
//!   which worker observed the failure first — while every other task
//!   still runs to completion.
//!
//! The determinism contract of the crate is unchanged: with no panicking
//! tasks, [`supervised_map_range`] returns bit-identical results to
//! [`crate::par_map_range`] at every thread count; with deterministic
//! per-attempt faults (see `gpu_profile`'s `ExecFaultPlan`), the recovered
//! results are bit-identical to an un-faulted run.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use crate::{chunk_size, Parallelism};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Retry and deadline policy for supervised maps.
///
/// The default supervises with one retry per task and no soft deadline:
/// a genuinely deterministic panic still fails (twice as slowly), while a
/// transient per-attempt fault is absorbed invisibly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Supervisor {
    retry_budget: u32,
    soft_deadline: Option<Duration>,
}

impl Supervisor {
    /// One retry per task, no soft deadline.
    pub fn new() -> Self {
        Supervisor { retry_budget: 1, soft_deadline: None }
    }

    /// How many times a panicked task is re-attempted before it is
    /// reported as failed (0 = fail on the first panic).
    pub fn with_retry_budget(mut self, budget: u32) -> Self {
        self.retry_budget = budget;
        self
    }

    /// Flags any attempt that runs longer than `deadline` as a straggler
    /// in the [`ExecLog`]. Purely diagnostic: a slow task is never killed
    /// (preemption would forfeit determinism), only reported.
    pub fn with_soft_deadline(mut self, deadline: Duration) -> Self {
        self.soft_deadline = Some(deadline);
        self
    }

    /// The retry budget in effect.
    pub fn retry_budget(&self) -> u32 {
        self.retry_budget
    }

    /// The soft deadline in effect, if any.
    pub fn soft_deadline(&self) -> Option<Duration> {
        self.soft_deadline
    }
}

impl Default for Supervisor {
    /// [`Supervisor::new`].
    fn default() -> Self {
        Self::new()
    }
}

/// Which task is running, and which attempt this is.
///
/// `attempt` exists for fault injection (a chaos plan can panic on early
/// attempts and recover on later ones) and for logging; task *results*
/// must depend on `index` only, or retries would not be deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskCtx {
    /// The task's input index (drives all task randomness).
    pub index: usize,
    /// 0-based attempt counter for this task.
    pub attempt: u32,
}

/// A task that panicked on every attempt its budget allowed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskFailure {
    /// The failing task's input index.
    pub index: usize,
    /// Attempts consumed (budget + 1).
    pub attempts: u32,
    /// The panic payload, stringified (`&str`/`String` payloads verbatim).
    pub message: String,
}

impl std::fmt::Display for TaskFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "task {} failed after {} attempt(s): {}",
            self.index, self.attempts, self.message
        )
    }
}

impl std::error::Error for TaskFailure {}

/// What the supervisor observed while running a map: informational
/// counters, never part of the simulation output.
///
/// `recovered` and `stragglers` hold task indices, sorted. With
/// deterministic faults, `retries` and `recovered` replay exactly;
/// `stragglers` depends on wall-clock and is diagnostic only.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecLog {
    /// Total re-attempts across all tasks.
    pub retries: u64,
    /// Tasks that panicked at least once but eventually succeeded.
    pub recovered: Vec<usize>,
    /// Tasks whose final attempt outlived the soft deadline.
    pub stragglers: Vec<usize>,
}

impl ExecLog {
    /// True if every task succeeded first try within its deadline.
    pub fn is_quiet(&self) -> bool {
        self.retries == 0 && self.recovered.is_empty() && self.stragglers.is_empty()
    }

    fn absorb(&mut self, mut other: ExecLog) {
        self.retries += other.retries;
        self.recovered.append(&mut other.recovered);
        self.stragglers.append(&mut other.stragglers);
    }

    fn finish(mut self) -> Self {
        self.recovered.sort_unstable();
        self.stragglers.sort_unstable();
        self
    }
}

/// Runs one task under the supervisor: catch_unwind per attempt, retry up
/// to the budget, straggler bookkeeping on the successful attempt.
fn run_task<U, F>(
    sup: &Supervisor,
    f: &F,
    index: usize,
    log: &mut ExecLog,
) -> Result<U, TaskFailure>
where
    F: Fn(TaskCtx) -> U + Sync,
{
    let mut attempt: u32 = 0;
    loop {
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| f(TaskCtx { index, attempt })));
        let slow = sup
            .soft_deadline
            .is_some_and(|d| started.elapsed() > d);
        match outcome {
            Ok(value) => {
                if slow {
                    log.stragglers.push(index);
                }
                if attempt > 0 {
                    log.recovered.push(index);
                }
                return Ok(value);
            }
            Err(payload) => {
                if attempt >= sup.retry_budget {
                    return Err(TaskFailure {
                        index,
                        attempts: attempt + 1,
                        message: payload_message(payload.as_ref()),
                    });
                }
                attempt += 1;
                log.retries += 1;
            }
        }
    }
}

/// Stringifies a panic payload: `&str` and `String` payloads (the panic
/// macros and chaos injection both produce these) come through verbatim.
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// [`crate::par_map_range`] under a [`Supervisor`]: maps `f` over
/// `0..len`, isolating and retrying panicking tasks.
///
/// On success, returns the results in index order together with the
/// [`ExecLog`]. If any task exhausts its retry budget, every other task
/// still completes and the error reports the **lowest** failing index —
/// the same failure the serial loop would hit first, at any thread count.
///
/// With `par.threads() == 1` the map runs on the calling thread (no pool),
/// with identical supervision semantics.
pub fn supervised_map_range<U, F>(
    par: Parallelism,
    len: usize,
    sup: &Supervisor,
    f: F,
) -> Result<(Vec<U>, ExecLog), TaskFailure>
where
    U: Send,
    F: Fn(TaskCtx) -> U + Sync,
{
    if par.is_serial() || len <= 1 {
        let mut log = ExecLog::default();
        let mut out = Vec::with_capacity(len);
        let mut first_failure: Option<TaskFailure> = None;
        for index in 0..len {
            match run_task(sup, &f, index, &mut log) {
                Ok(v) => out.push(v),
                Err(e) => {
                    first_failure.get_or_insert(e);
                }
            }
        }
        return match first_failure {
            Some(e) => Err(e),
            None => Ok((out, log.finish())),
        };
    }

    let threads = par.threads().min(len);
    let chunk = chunk_size(len, threads);
    let cursor = AtomicUsize::new(0);

    // As in `par_map_range`: chunks are tagged with their start index and
    // merged in input order, so worker identity and completion order never
    // reach the output — including which worker observed a failure.
    let (mut chunks, log) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, Vec<Result<U, TaskFailure>>)> = Vec::new();
                    let mut log = ExecLog::default();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= len {
                            break;
                        }
                        let end = (start + chunk).min(len);
                        let part = (start..end)
                            .map(|index| run_task(sup, &f, index, &mut log))
                            .collect();
                        local.push((start, part));
                    }
                    (local, log)
                })
            })
            .collect();
        let mut all = Vec::new();
        let mut log = ExecLog::default();
        for handle in handles {
            match handle.join() {
                Ok((mut part, worker_log)) => {
                    all.append(&mut part);
                    log.absorb(worker_log);
                }
                // Only `f` runs under catch_unwind; a panic in the worker
                // scaffolding itself is a bug worth propagating.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        (all, log)
    });

    chunks.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(len);
    let mut first_failure: Option<TaskFailure> = None;
    for (_, part) in chunks {
        for item in part {
            match item {
                Ok(v) => out.push(v),
                Err(e) => {
                    // Items arrive in index order, so the first error seen
                    // is the lowest failing index.
                    first_failure.get_or_insert(e);
                }
            }
        }
    }
    match first_failure {
        Some(e) => Err(e),
        None => {
            assert!(out.len() == len, "chunk dispatch lost items");
            Ok((out, log.finish()))
        }
    }
}

/// [`supervised_map_range`] over a slice: maps `f(ctx, &items[ctx.index])`
/// with the same isolation, retry, and failure-ordering semantics.
pub fn supervised_map_indexed<T, U, F>(
    par: Parallelism,
    items: &[T],
    sup: &Supervisor,
    f: F,
) -> Result<(Vec<U>, ExecLog), TaskFailure>
where
    T: Sync,
    U: Send,
    F: Fn(TaskCtx, &T) -> U + Sync,
{
    supervised_map_range(par, items.len(), sup, |ctx| f(ctx, &items[ctx.index]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic transient fault: panic while `attempt < flaky_until`
    /// for every index divisible by `stride`.
    fn flaky(ctx: TaskCtx, stride: usize, flaky_until: u32) -> u64 {
        if ctx.index % stride == 0 && ctx.attempt < flaky_until {
            panic!("transient fault at task {}", ctx.index);
        }
        ctx.index as u64 * 3 + 1
    }

    #[test]
    fn quiet_map_matches_plain_map() {
        for t in [1usize, 2, 4, 8] {
            let (out, log) = supervised_map_range(
                Parallelism::with_threads(t),
                257,
                &Supervisor::new(),
                |ctx| ctx.index as u64 * 7,
            )
            .expect("no faults");
            let expect: Vec<u64> = (0..257).map(|i| i * 7).collect();
            assert_eq!(out, expect, "threads = {t}");
            assert!(log.is_quiet(), "threads = {t}: {log:?}");
        }
    }

    #[test]
    fn transient_panics_recover_with_identical_results() {
        let expect: Vec<u64> = (0..300).map(|i| i * 3 + 1).collect();
        for t in [1usize, 2, 8] {
            let (out, log) = supervised_map_range(
                Parallelism::with_threads(t),
                300,
                &Supervisor::new(),
                |ctx| flaky(ctx, 13, 1),
            )
            .expect("retry budget covers one transient panic");
            assert_eq!(out, expect, "threads = {t}");
            let hit: Vec<usize> = (0..300).filter(|i| i % 13 == 0).collect();
            assert_eq!(log.recovered, hit, "threads = {t}");
            assert_eq!(log.retries, hit.len() as u64, "threads = {t}");
        }
    }

    #[test]
    fn exhausted_budget_reports_lowest_failing_index() {
        for t in [1usize, 2, 8] {
            let err = supervised_map_range(
                Parallelism::with_threads(t),
                100,
                &Supervisor::new().with_retry_budget(2),
                |ctx| flaky(ctx, 17, u32::MAX),
            )
            .expect_err("permanent fault must fail");
            assert_eq!(err.index, 0, "threads = {t}");
            assert_eq!(err.attempts, 3, "threads = {t}");
            assert!(err.message.contains("transient fault at task 0"), "{err}");
        }
    }

    #[test]
    fn zero_budget_fails_on_first_panic() {
        let err = supervised_map_range(
            Parallelism::serial(),
            10,
            &Supervisor::new().with_retry_budget(0),
            |ctx| flaky(ctx, 4, 1),
        )
        .expect_err("no retries allowed");
        assert_eq!(err.index, 0);
        assert_eq!(err.attempts, 1);
    }

    #[test]
    fn soft_deadline_flags_stragglers() {
        let sup = Supervisor::new().with_soft_deadline(Duration::from_millis(2));
        let (out, log) = supervised_map_range(Parallelism::with_threads(2), 8, &sup, |ctx| {
            if ctx.index == 5 {
                std::thread::sleep(Duration::from_millis(25));
            }
            ctx.index
        })
        .expect("slow tasks still succeed");
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        assert!(log.stragglers.contains(&5), "{log:?}");
        assert!(log.recovered.is_empty());
    }

    #[test]
    fn indexed_variant_sees_items() {
        let items = [10u64, 20, 30];
        let (out, _) = supervised_map_indexed(
            Parallelism::with_threads(2),
            &items,
            &Supervisor::new(),
            |ctx, &x| x + ctx.index as u64,
        )
        .expect("no faults");
        assert_eq!(out, vec![10, 21, 32]);
    }

    #[test]
    fn non_string_payload_is_labeled_opaque() {
        let err = supervised_map_range(
            Parallelism::serial(),
            2,
            &Supervisor::new().with_retry_budget(0),
            |ctx| {
                if ctx.index == 1 {
                    std::panic::panic_any(42u32);
                }
                ctx.index
            },
        )
        .expect_err("payload panic");
        assert_eq!(err.index, 1);
        assert_eq!(err.message, "opaque panic payload");
    }

    #[test]
    fn supervisor_accessors() {
        let sup = Supervisor::new()
            .with_retry_budget(5)
            .with_soft_deadline(Duration::from_secs(1));
        assert_eq!(sup.retry_budget(), 5);
        assert_eq!(sup.soft_deadline(), Some(Duration::from_secs(1)));
        assert_eq!(Supervisor::default(), Supervisor::new());
    }
}
