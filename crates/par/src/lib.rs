//! Deterministic parallel runtime: scoped fixed-size thread pool with
//! index-ordered chunked map/reduce.
//!
//! Every hot path of the reproduction (per-invocation timing in `gpu-sim`,
//! k-means assignment and PCA gram accumulation in `stem-cluster`,
//! per-repetition evaluation in `stem-core::Pipeline`) is a map over
//! independent items followed by an order-sensitive aggregation. This crate
//! parallelizes exactly that shape while preserving STEM's trustworthiness
//! invariant:
//!
//! > **same seed + same inputs ⇒ identical output for every thread count.**
//!
//! Three rules make the invariant hold by construction:
//!
//! 1. **Results are merged in input-index order.** Workers pull fixed-size
//!    chunks off an atomic cursor (so scheduling is dynamic and
//!    load-balanced), but each chunk remembers its starting index and the
//!    merge sorts chunks by that index before concatenating. Which worker
//!    computed a chunk — and when — never reaches the output.
//! 2. **Reductions fold serially in index order.** Floating-point addition
//!    is not associative, so [`par_reduce_ordered`] parallelizes only the
//!    map and performs the fold on the calling thread, left to right —
//!    bit-identical to the serial fold at any thread count.
//! 3. **Randomness is split by task index, never worker identity.**
//!    [`split_seed`] derives a per-task seed from `(base_seed, task_index)`
//!    with a SplitMix64-style mix; callers feed it to
//!    `stem_core::rng::StdRng::seed_from_u64`. No API in this crate exposes
//!    a worker id, so worker-dependent randomness cannot be written.
//!
//! Thread count comes from a [`Parallelism`] value: the default is
//! `std::thread::available_parallelism()`, the `STEM_THREADS` environment
//! variable overrides it, and `1` short-circuits to a plain serial loop —
//! byte-for-byte the pre-parallelism code path.
//!
//! For long campaigns where a worker panic must not tear down the whole
//! map, the [`supervisor`] module wraps the same primitives in
//! panic-isolated, deterministically-retried execution
//! ([`supervised_map_range`]).
//!
//! # Example
//!
//! ```
//! use stem_par::{par_map_indexed, par_reduce_ordered, Parallelism};
//!
//! let par = Parallelism::with_threads(4);
//! let xs: Vec<f64> = (0..1000).map(|i| i as f64 * 0.5).collect();
//!
//! let doubled = par_map_indexed(par, &xs, |_, &x| 2.0 * x);
//! assert_eq!(doubled[7], 7.0);
//!
//! let sum = par_reduce_ordered(par, &xs, |_, &x| 2.0 * x, 0.0, |acc, v| acc + v);
//! // Bit-identical to the serial fold, not merely close:
//! let serial: f64 = xs.iter().map(|&x| 2.0 * x).fold(0.0, |a, v| a + v);
//! assert_eq!(sum, serial);
//! ```

// Workspace lint headers, enforced by `stem-tidy` (rule `lint-headers`).
#![deny(missing_debug_implementations)]
#![forbid(unsafe_code)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod supervisor;

pub use supervisor::{
    supervised_map_indexed, supervised_map_range, ExecLog, Supervisor, TaskCtx, TaskFailure,
};

/// Environment variable overriding the default thread count.
pub const THREADS_ENV: &str = "STEM_THREADS";

/// Target chunks per worker: small enough to amortize dispatch, large
/// enough that a straggler chunk cannot serialize the whole map.
const CHUNKS_PER_WORKER: usize = 4;

/// How many worker threads parallel maps may use.
///
/// `Parallelism` is a pure count: it carries no pool state, so it is `Copy`
/// and can be stored in configs and compared in tests. A value of 1 makes
/// every primitive in this crate take the literal serial code path (no
/// threads spawned, no atomics touched).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// One thread: the serial code path, byte-for-byte.
    pub fn serial() -> Self {
        Parallelism { threads: 1 }
    }

    /// An explicit thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` — zero workers cannot make progress.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        Parallelism { threads }
    }

    /// The machine's available parallelism (falls back to 1 where the OS
    /// cannot report it).
    pub fn available() -> Self {
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        Parallelism { threads }
    }

    /// The configured default: the `STEM_THREADS` environment variable if
    /// set to a positive integer, otherwise [`Parallelism::available`].
    /// Unparsable or zero values fall back to the default rather than
    /// erroring — an experiment must not die on a typo in a launcher
    /// script, and the result is identical at any count anyway.
    pub fn from_env() -> Self {
        match std::env::var(THREADS_ENV) {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n > 0 => Parallelism { threads: n },
                _ => Self::available(),
            },
            Err(_) => Self::available(),
        }
    }

    /// The worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this is the serial path.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }
}

impl Default for Parallelism {
    /// [`Parallelism::from_env`].
    fn default() -> Self {
        Self::from_env()
    }
}

/// Derives the RNG seed for task `index` from `base`: SplitMix64-style
/// stream splitting. The seed is a function of the task's position in the
/// input — never of which worker executes it or in what order — so seeded
/// draws stay identical at every thread count.
///
/// Feed the result to `stem_core::rng::StdRng::seed_from_u64`.
pub fn split_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps `f` over `0..len` on a scoped thread pool, returning results in
/// index order. The deterministic core primitive: [`par_map_indexed`] and
/// [`par_reduce_ordered`] are built on it.
///
/// With `par.threads() == 1` (or fewer than two items) this is exactly
/// `(0..len).map(f).collect()` — no threads, no atomics.
pub fn par_map_range<U, F>(par: Parallelism, len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    if par.is_serial() || len <= 1 {
        return (0..len).map(f).collect();
    }
    let threads = par.threads().min(len);
    let chunk = chunk_size(len, threads);
    let cursor = AtomicUsize::new(0);

    // Each worker returns its chunks tagged with their start index; the
    // merge below re-establishes input order, so neither worker identity
    // nor completion order can reach the result.
    let mut chunks: Vec<(usize, Vec<U>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, Vec<U>)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= len {
                            break;
                        }
                        let end = (start + chunk).min(len);
                        local.push((start, (start..end).map(&f).collect()));
                    }
                    local
                })
            })
            .collect();
        let mut all = Vec::new();
        for handle in handles {
            match handle.join() {
                Ok(mut part) => all.append(&mut part),
                // Re-raise the worker's own panic payload on the caller.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        all
    });

    chunks.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(len);
    for (_, mut part) in chunks {
        out.append(&mut part);
    }
    assert!(out.len() == len, "chunk dispatch lost items");
    out
}

/// Maps `f(index, &item)` over a slice in parallel, returning results in
/// input-index order. See [`par_map_range`] for the determinism contract.
pub fn par_map_indexed<T, U, F>(par: Parallelism, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_range(par, items.len(), |i| f(i, &items[i]))
}

/// Parallel map + **serial in-order fold**: computes `f(index, &item)` for
/// every item on the pool, then folds the mapped values left to right on
/// the calling thread.
///
/// The fold is deliberately not parallelized: floating-point accumulation
/// is order-sensitive, and folding in index order is what makes the result
/// bit-identical to `items.iter().enumerate().map(f).fold(init, fold)` at
/// every thread count.
pub fn par_reduce_ordered<T, M, A, F, G>(
    par: Parallelism,
    items: &[T],
    f: F,
    init: A,
    mut fold: G,
) -> A
where
    T: Sync,
    M: Send,
    F: Fn(usize, &T) -> M + Sync,
    G: FnMut(A, M) -> A,
{
    let mapped = par_map_indexed(par, items, f);
    let mut acc = init;
    for m in mapped {
        acc = fold(acc, m);
    }
    acc
}

/// Two-phase grouped map: first maps `group_fn` over `0..num_groups` (the
/// expensive shared precomputation), then maps `item_fn(i, &groups[..])`
/// over `0..len` — both phases on the pool, both index-ordered.
///
/// This is the "group-precompute + stream" shape of the hot-path overhaul:
/// per-invocation simulation computes one `DeterministicTiming`-style core
/// per distinct `(kernel, context, work)` group and then streams a cheap
/// per-item transform. Determinism is inherited from [`par_map_range`]:
/// both phases merge by input index, so the result is bit-identical at
/// every thread count.
pub fn par_map_grouped<G, U, FG, FI>(
    par: Parallelism,
    num_groups: usize,
    group_fn: FG,
    len: usize,
    item_fn: FI,
) -> Vec<U>
where
    G: Send + Sync,
    U: Send,
    FG: Fn(usize) -> G + Sync,
    FI: Fn(usize, &[G]) -> U + Sync,
{
    let groups = par_map_range(par, num_groups, group_fn);
    par_map_range(par, len, |i| item_fn(i, &groups))
}

/// Bounded producer/consumer pipeline with a **serial in-order fold** on
/// the calling thread: the out-of-core counterpart of
/// [`par_reduce_ordered`].
///
/// `produce` runs on its own scoped thread and pushes items into a
/// bounded channel of `capacity` undelivered items — once full, the
/// producer blocks, so peak memory is `capacity` items regardless of
/// stream length (the generate→simulate→fold executor's flat-memory
/// knob). `consume` runs on the calling thread and receives items
/// strictly in send order; parallelism belongs *inside* `consume`
/// (e.g. a [`par_map_range`] over one block), never across items, so the
/// fold stays bit-identical at every thread count.
///
/// The producer learns of an early consumer stop through channel
/// disconnection: its next send fails and it should return its own
/// "closed" error, which this function discards in favour of the
/// consumer's. A producer panic is re-raised on the caller.
///
/// # Errors
///
/// The consumer's error if it stopped the pipeline, otherwise the
/// producer's.
///
/// # Panics
///
/// Panics if `capacity` is zero (a rendezvous channel would deadlock a
/// consumer that needs to see the first item before the second is
/// produced — always give the pipeline one slot of slack).
pub fn pipelined_fold<B, E, P, C>(capacity: usize, produce: P, mut consume: C) -> Result<(), E>
where
    B: Send,
    E: Send,
    P: FnOnce(std::sync::mpsc::SyncSender<B>) -> Result<(), E> + Send,
    C: FnMut(B) -> Result<(), E>,
{
    assert!(capacity > 0, "pipeline channel needs at least one slot");
    let (tx, rx) = std::sync::mpsc::sync_channel(capacity);
    std::thread::scope(|scope| {
        let producer = scope.spawn(move || produce(tx));
        let mut consumer_err = None;
        for item in rx.iter() {
            if let Err(e) = consume(item) {
                consumer_err = Some(e);
                break;
            }
        }
        // Hang up before joining so a blocked producer's send fails fast
        // instead of deadlocking against a consumer that already stopped.
        drop(rx);
        let produced = match producer.join() {
            Ok(r) => r,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        match consumer_err {
            Some(e) => Err(e),
            None => produced,
        }
    })
}

pub(crate) fn chunk_size(len: usize, threads: usize) -> usize {
    let target_chunks = threads * CHUNKS_PER_WORKER;
    ((len + target_chunks - 1) / target_chunks).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_fold_preserves_send_order() {
        let mut seen = Vec::new();
        let result: Result<(), ()> = pipelined_fold(
            2,
            |tx| {
                for i in 0..100u32 {
                    tx.send(i).map_err(|_| ())?;
                }
                Ok(())
            },
            |i| {
                seen.push(i);
                Ok(())
            },
        );
        assert!(result.is_ok());
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pipelined_fold_consumer_error_wins_and_stops_producer() {
        let mut consumed = 0u32;
        let result = pipelined_fold(
            1,
            |tx| {
                for i in 0..1_000_000u32 {
                    // A hung-up consumer must make this fail, not block.
                    tx.send(i).map_err(|_| "producer: closed")?;
                }
                Ok(())
            },
            |i| {
                consumed += 1;
                if i == 5 {
                    Err("consumer: enough")
                } else {
                    Ok(())
                }
            },
        );
        assert_eq!(result, Err("consumer: enough"));
        assert_eq!(consumed, 6);
    }

    #[test]
    fn pipelined_fold_reports_producer_error() {
        let result: Result<(), &str> = pipelined_fold(
            4,
            |tx| {
                tx.send(1u8).map_err(|_| "closed")?;
                Err("producer: disk on fire")
            },
            |_| Ok(()),
        );
        assert_eq!(result, Err("producer: disk on fire"));
    }

    #[test]
    fn pipelined_fold_bounds_in_flight_items() {
        use std::sync::atomic::AtomicIsize;
        // Tracks items sent minus items consumed; with capacity 3 the
        // producer can be at most 3 + 1-being-sent ahead.
        let in_flight = AtomicIsize::new(0);
        let result: Result<(), ()> = pipelined_fold(
            3,
            |tx| {
                for _ in 0..500 {
                    in_flight.fetch_add(1, Ordering::SeqCst);
                    tx.send(()).map_err(|_| ())?;
                }
                Ok(())
            },
            |()| {
                // Bound: 1 item here + 3 queued + 1 pre-incremented in a
                // blocked send = 5.
                let ahead = in_flight.fetch_sub(1, Ordering::SeqCst);
                assert!(ahead <= 5, "producer ran {ahead} items ahead");
                Ok(())
            },
        );
        assert!(result.is_ok());
    }

    #[test]
    fn serial_is_plain_map() {
        let xs = [3u64, 1, 4, 1, 5];
        let out = par_map_indexed(Parallelism::serial(), &xs, |i, &x| x * 10 + i as u64);
        assert_eq!(out, vec![30, 11, 42, 13, 54]);
    }

    #[test]
    fn order_preserved_at_many_thread_counts() {
        let xs: Vec<u64> = (0..1013).collect();
        let expect: Vec<u64> = xs.iter().enumerate().map(|(i, &x)| x * 3 + i as u64).collect();
        for t in [1, 2, 3, 5, 8, 16, 64] {
            let out = par_map_indexed(Parallelism::with_threads(t), &xs, |i, &x| {
                x * 3 + i as u64
            });
            assert_eq!(out, expect, "threads = {t}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: [u32; 0] = [];
        for t in [1, 4] {
            let par = Parallelism::with_threads(t);
            assert_eq!(par_map_indexed(par, &empty, |_, &x| x), Vec::<u32>::new());
            assert_eq!(par_map_indexed(par, &[9u32], |i, &x| x + i as u32), vec![9]);
        }
    }

    #[test]
    fn more_threads_than_items() {
        let xs = [1.0f64, 2.0, 3.0];
        let out = par_map_indexed(Parallelism::with_threads(32), &xs, |_, &x| x * 0.1);
        let expect: Vec<f64> = xs.iter().map(|&x| x * 0.1).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn reduce_matches_serial_fold_bitwise() {
        // Values chosen so that accumulation order matters in f64.
        let xs: Vec<f64> = (0..2000)
            .map(|i| if i % 3 == 0 { 1e16 } else { 1.0 + i as f64 * 1e-3 })
            .collect();
        let serial = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| x * (1.0 + i as f64))
            .fold(0.0f64, |a, v| a + v);
        for t in [1, 2, 7, 13] {
            let par = Parallelism::with_threads(t);
            let got = par_reduce_ordered(
                par,
                &xs,
                |i, &x| x * (1.0 + i as f64),
                0.0f64,
                |a, v| a + v,
            );
            assert_eq!(got.to_bits(), serial.to_bits(), "threads = {t}");
        }
    }

    #[test]
    fn grouped_map_matches_serial_at_any_thread_count() {
        // 5 groups, 1000 items; item i belongs to group i % 5.
        let serial: Vec<f64> = (0..1000)
            .map(|i| {
                let g = (i % 5) as f64 * 10.0;
                g + i as f64 * 0.25
            })
            .collect();
        for t in [1, 2, 4, 16] {
            let got = par_map_grouped(
                Parallelism::with_threads(t),
                5,
                |g| g as f64 * 10.0,
                1000,
                |i, groups: &[f64]| groups[i % 5] + i as f64 * 0.25,
            );
            assert_eq!(got, serial, "threads = {t}");
        }
    }

    #[test]
    fn grouped_map_handles_empty_groups_and_items() {
        let out = par_map_grouped(
            Parallelism::with_threads(4),
            0,
            |g| g,
            3,
            |i, groups: &[usize]| i + groups.len(),
        );
        assert_eq!(out, vec![0, 1, 2]);
        let none = par_map_grouped(
            Parallelism::with_threads(4),
            2,
            |g| g,
            0,
            |i, _groups: &[usize]| i,
        );
        assert!(none.is_empty());
    }

    #[test]
    fn split_seed_depends_on_index_and_base() {
        assert_ne!(split_seed(1, 0), split_seed(1, 1));
        assert_ne!(split_seed(1, 0), split_seed(2, 0));
        assert_eq!(split_seed(7, 42), split_seed(7, 42));
    }

    #[test]
    fn parallelism_constructors() {
        assert!(Parallelism::serial().is_serial());
        assert_eq!(Parallelism::with_threads(6).threads(), 6);
        assert!(Parallelism::available().threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn zero_threads_rejected() {
        Parallelism::with_threads(0);
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            par_map_range(Parallelism::with_threads(4), 100, |i| {
                assert!(i != 57, "boom at 57");
                i
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn chunk_size_covers_range() {
        for len in [1usize, 2, 7, 100, 1001] {
            for threads in [1usize, 2, 8, 64] {
                let c = chunk_size(len, threads);
                assert!(c >= 1);
                // Enough chunks of size c exist to cover len.
                assert!(c * threads * CHUNKS_PER_WORKER + c > len);
            }
        }
    }
}
