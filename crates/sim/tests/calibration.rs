//! Calibration tests: the timing model's cross-configuration behaviour
//! must match the qualitative physics of the real parts it names —
//! otherwise the DSE and portability experiments test nothing.

use gpu_sim::exec::{time_kernel, SimOptions};
use gpu_sim::GpuConfig;
use gpu_workload::kernel::{InstructionMix, KernelClassBuilder};
use gpu_workload::{KernelClass, RuntimeContext};

fn det_cycles(k: &KernelClass, ctx: &RuntimeContext, cfg: &GpuConfig) -> f64 {
    time_kernel(k, ctx, 1.0, 0.0, cfg, SimOptions::default()).deterministic_cycles
}

fn seconds(k: &KernelClass, ctx: &RuntimeContext, cfg: &GpuConfig) -> f64 {
    cfg.cycles_to_seconds(det_cycles(k, ctx, cfg))
}

fn tensor_gemm() -> KernelClass {
    KernelClassBuilder::new("hgemm")
        .geometry(2048, 256)
        .resources(96, 48 * 1024)
        .instructions(20_000)
        .mix(InstructionMix::tensor_core())
        .memory(96 << 20, 24.0)
        .build()
}

fn streaming_kernel() -> KernelClass {
    KernelClassBuilder::new("stream")
        .geometry(2048, 256)
        .resources(24, 0)
        .instructions(1_500)
        .mix(InstructionMix::memory_bound())
        .memory(2 << 30, 1.0)
        .build()
}

#[test]
fn h100_beats_rtx2080_much_more_on_tensor_work_than_streaming() {
    let ctx = RuntimeContext::neutral();
    let gemm = tensor_gemm();
    let stream = streaming_kernel();
    let gemm_speedup =
        seconds(&gemm, &ctx, &GpuConfig::rtx2080()) / seconds(&gemm, &ctx, &GpuConfig::h100());
    let stream_speedup =
        seconds(&stream, &ctx, &GpuConfig::rtx2080()) / seconds(&stream, &ctx, &GpuConfig::h100());
    // H100's tensor throughput advantage (~10x+) dwarfs its bandwidth
    // advantage (~7x), and both clearly beat the 2080.
    assert!(gemm_speedup > 2.0, "tensor speedup {gemm_speedup}");
    assert!(stream_speedup > 2.0, "stream speedup {stream_speedup}");
    assert!(
        gemm_speedup > stream_speedup * 0.8,
        "tensor {gemm_speedup} vs stream {stream_speedup}"
    );
}

#[test]
fn h200_helps_memory_bound_only() {
    let ctx = RuntimeContext::neutral();
    let gemm = tensor_gemm();
    let stream = streaming_kernel();
    let gemm_gain =
        det_cycles(&gemm, &ctx, &GpuConfig::h100()) / det_cycles(&gemm, &ctx, &GpuConfig::h200());
    let stream_gain = det_cycles(&stream, &ctx, &GpuConfig::h100())
        / det_cycles(&stream, &ctx, &GpuConfig::h200());
    // The H200 upgrade is memory bandwidth: streaming kernels gain
    // substantially, compute-bound GEMMs barely move.
    assert!(stream_gain > 1.2, "stream gain {stream_gain}");
    assert!(gemm_gain < stream_gain, "gemm {gemm_gain} vs stream {stream_gain}");
    assert!(gemm_gain < 1.1, "gemm should barely move: {gemm_gain}");
}

#[test]
fn streaming_kernel_is_bandwidth_limited() {
    // A 2 GiB stream on a 448 GB/s part must take at least the
    // bytes/bandwidth time.
    let ctx = RuntimeContext::neutral();
    let stream = streaming_kernel();
    let cfg = GpuConfig::rtx2080();
    let t = time_kernel(&stream, &ctx, 1.0, 0.0, &cfg, SimOptions::default());
    let min_seconds = t.dram_bytes / (cfg.dram_bandwidth_gbps * 1e9);
    let got = cfg.cycles_to_seconds(t.memory_cycles);
    assert!(got >= min_seconds * 0.99, "{got} vs floor {min_seconds}");
    assert!(t.memory_boundedness > 0.8);
}

#[test]
fn gemm_flops_rate_is_physically_plausible() {
    // The model's implied FP16 throughput must stay below the part's peak
    // (H100: ~1000 TFLOPS dense FP16) and above a silly floor.
    let ctx = RuntimeContext::neutral();
    let gemm = tensor_gemm();
    let cfg = GpuConfig::h100();
    let secs = seconds(&gemm, &ctx, &cfg);
    let fp16_ops = gemm.total_instructions() as f64 * gemm.mix.fp16;
    let tflops = fp16_ops / secs / 1e12;
    assert!(tflops < 2000.0, "implied {tflops} TFLOPS exceeds physics");
    assert!(tflops > 0.5, "implied {tflops} TFLOPS is implausibly low");
}

#[test]
fn launch_overhead_dominates_empty_kernels() {
    let ctx = RuntimeContext::neutral();
    let tiny = KernelClassBuilder::new("noop")
        .geometry(1, 32)
        .instructions(1)
        .build();
    let cfg = GpuConfig::rtx2080();
    let t = time_kernel(&tiny, &ctx, 1.0, 0.0, &cfg, SimOptions::default());
    assert!(
        t.deterministic_cycles < 2.5 * cfg.launch_overhead_cycles + cfg.dram_latency_cycles,
        "a no-op launch should cost ~launch overhead, got {}",
        t.deterministic_cycles
    );
}

#[test]
fn dse_grid_is_internally_consistent() {
    // cycles(cache x2) <= cycles(baseline) <= cycles(cache x0.5), and the
    // same ordering for SM count — across both kernel archetypes.
    use gpu_sim::DseTransform;
    let ctx = RuntimeContext::neutral().with_locality(0.8);
    for k in [tensor_gemm(), streaming_kernel()] {
        let base = GpuConfig::macsim_baseline();
        let c2 = det_cycles(&k, &ctx, &base.with_transform(DseTransform::CacheScale(2.0)));
        let c0 = det_cycles(&k, &ctx, &base);
        let ch = det_cycles(&k, &ctx, &base.with_transform(DseTransform::CacheScale(0.5)));
        assert!(c2 <= c0 * (1.0 + 1e-9) && c0 <= ch * (1.0 + 1e-9));
        let s2 = det_cycles(&k, &ctx, &base.with_transform(DseTransform::SmScale(2.0)));
        let sh = det_cycles(&k, &ctx, &base.with_transform(DseTransform::SmScale(0.5)));
        assert!(s2 <= c0 * (1.0 + 1e-9) && c0 <= sh * (1.0 + 1e-9));
    }
}
