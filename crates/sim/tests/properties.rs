//! Property-based tests for the GPU timing model.

use gpu_sim::exec::{time_kernel, SimOptions};
use gpu_sim::{DseTransform, GpuConfig};
use gpu_workload::kernel::{InstructionMix, KernelClassBuilder};
use gpu_workload::{KernelClass, RuntimeContext};
use proptest::prelude::*;

fn kernel_strategy() -> impl Strategy<Value = KernelClass> {
    (
        1u32..2048,          // grid
        prop::sample::select(vec![32u32, 64, 128, 256, 512, 1024]), // block
        16u32..128,          // regs
        0u32..48,            // shared KiB
        100u64..100_000,     // instr per thread
        0usize..5,           // mix preset
        20u64..34,           // footprint log2 (1 MiB .. 16 GiB)
        1.0f64..32.0,        // reuse
    )
        .prop_map(|(grid, block, regs, shared_kib, instr, mix, fp_log2, reuse)| {
            let mix = match mix {
                0 => InstructionMix::compute_bound(),
                1 => InstructionMix::tensor_core(),
                2 => InstructionMix::memory_bound(),
                3 => InstructionMix::streaming(),
                _ => InstructionMix::irregular(),
            };
            KernelClassBuilder::new("prop")
                .geometry(grid, block)
                .resources(regs, shared_kib * 1024)
                .instructions(instr)
                .mix(mix)
                .memory(1u64 << fp_log2, reuse)
                .build()
        })
}

fn ctx_strategy() -> impl Strategy<Value = RuntimeContext> {
    (0.1f64..8.0, 0.2f64..4.0, 0.1f64..6.0, 0.0f64..0.5).prop_map(
        |(work, footprint, locality, jitter)| {
            RuntimeContext::neutral()
                .with_work(work)
                .with_footprint(footprint)
                .with_locality(locality)
                .with_jitter(jitter)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every timing output is finite, positive and internally consistent.
    #[test]
    fn timing_outputs_well_formed(
        kernel in kernel_strategy(),
        ctx in ctx_strategy(),
        z in -4.0f64..4.0,
    ) {
        for config in [GpuConfig::rtx2080(), GpuConfig::h100(), GpuConfig::macsim_baseline()] {
            let t = time_kernel(&kernel, &ctx, 1.0, z, &config, SimOptions::default());
            prop_assert!(t.cycles.is_finite() && t.cycles > 0.0);
            prop_assert!(t.compute_cycles >= 0.0 && t.memory_cycles >= 0.0);
            prop_assert!(t.deterministic_cycles >= config.launch_overhead_cycles);
            prop_assert!((0.0..=1.0).contains(&t.memory_boundedness));
            prop_assert!((0.0..=1.0).contains(&t.l1_hit));
            prop_assert!((0.0..=1.0).contains(&t.l2_hit));
            prop_assert!(t.dram_bytes >= 0.0);
            prop_assert!(t.occupancy.occupancy > 0.0 && t.occupancy.occupancy <= 1.0);
        }
    }

    /// More work never makes the deterministic time shorter.
    #[test]
    fn monotone_in_work(kernel in kernel_strategy(), ctx in ctx_strategy()) {
        let cfg = GpuConfig::rtx2080();
        let t1 = time_kernel(&kernel, &ctx, 1.0, 0.0, &cfg, SimOptions::default());
        let t2 = time_kernel(&kernel, &ctx, 2.0, 0.0, &cfg, SimOptions::default());
        prop_assert!(t2.deterministic_cycles >= t1.deterministic_cycles);
    }

    /// A zero-jitter context has no randomness: z is irrelevant.
    #[test]
    fn zero_jitter_ignores_z(kernel in kernel_strategy(), z in -4.0f64..4.0) {
        let cfg = GpuConfig::rtx2080();
        let ctx = RuntimeContext::neutral().with_jitter(0.0);
        let a = time_kernel(&kernel, &ctx, 1.0, z, &cfg, SimOptions::default());
        let b = time_kernel(&kernel, &ctx, 1.0, 0.0, &cfg, SimOptions::default());
        prop_assert!((a.cycles - b.cycles).abs() < 1e-9 * b.cycles.max(1.0));
    }

    /// Doubling SMs never slows a kernel down (deterministic part).
    #[test]
    fn more_sms_never_slower(kernel in kernel_strategy(), ctx in ctx_strategy()) {
        let base = GpuConfig::macsim_baseline();
        let big = base.with_transform(DseTransform::SmScale(2.0));
        let t_base = time_kernel(&kernel, &ctx, 1.0, 0.0, &base, SimOptions::default());
        let t_big = time_kernel(&kernel, &ctx, 1.0, 0.0, &big, SimOptions::default());
        prop_assert!(
            t_big.deterministic_cycles <= t_base.deterministic_cycles * (1.0 + 1e-9),
            "{} vs {}", t_big.deterministic_cycles, t_base.deterministic_cycles
        );
    }

    /// Growing the caches never increases DRAM traffic.
    #[test]
    fn bigger_cache_never_more_dram(kernel in kernel_strategy(), ctx in ctx_strategy()) {
        let base = GpuConfig::macsim_baseline();
        let big = base.with_transform(DseTransform::CacheScale(2.0));
        let t_base = time_kernel(&kernel, &ctx, 1.0, 0.0, &base, SimOptions::default());
        let t_big = time_kernel(&kernel, &ctx, 1.0, 0.0, &big, SimOptions::default());
        prop_assert!(t_big.dram_bytes <= t_base.dram_bytes * (1.0 + 1e-9));
    }

    /// The flush mode never makes a kernel faster.
    #[test]
    fn flush_never_faster(kernel in kernel_strategy(), ctx in ctx_strategy()) {
        let cfg = GpuConfig::rtx2080();
        let normal = time_kernel(&kernel, &ctx, 1.0, 0.0, &cfg, SimOptions::default());
        let flushed = time_kernel(
            &kernel,
            &ctx,
            1.0,
            0.0,
            &cfg,
            SimOptions { flush_l2_between_kernels: true, ..SimOptions::default() },
        );
        prop_assert!(flushed.deterministic_cycles >= normal.deterministic_cycles * (1.0 - 1e-9));
    }

    /// Better locality never increases the deterministic time.
    #[test]
    fn locality_never_hurts(kernel in kernel_strategy(), boost in 1.0f64..6.0) {
        let cfg = GpuConfig::rtx2080();
        let cold = RuntimeContext::neutral().with_locality(1.0);
        let warm = RuntimeContext::neutral().with_locality(boost);
        let t_cold = time_kernel(&kernel, &cold, 1.0, 0.0, &cfg, SimOptions::default());
        let t_warm = time_kernel(&kernel, &warm, 1.0, 0.0, &cfg, SimOptions::default());
        prop_assert!(t_warm.deterministic_cycles <= t_cold.deterministic_cycles * (1.0 + 1e-9));
    }
}
