//! Property-style tests for the GPU timing model.
//!
//! Formerly `proptest`-based; rewritten as deterministic seeded-loop
//! property tests so the workspace builds hermetically.

use gpu_sim::exec::{time_kernel, SimOptions};
use gpu_sim::{DseTransform, GpuConfig};
use gpu_workload::kernel::{InstructionMix, KernelClassBuilder};
use gpu_workload::{KernelClass, RuntimeContext};
use stem_stats::rng::{RngExt, SeedableRng, StdRng};

const CASES: u64 = 64;

fn rng_for(test_tag: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(0x51D0_DE10 ^ (test_tag << 32) ^ case)
}

fn gen_kernel(rng: &mut StdRng) -> KernelClass {
    let grid = rng.random_range(1u32..2048);
    let block = [32u32, 64, 128, 256, 512, 1024][rng.random_range(0usize..6)];
    let regs = rng.random_range(16u32..128);
    let shared_kib = rng.random_range(0u32..48);
    let instr = rng.random_range(100u64..100_000);
    let mix = match rng.random_range(0usize..5) {
        0 => InstructionMix::compute_bound(),
        1 => InstructionMix::tensor_core(),
        2 => InstructionMix::memory_bound(),
        3 => InstructionMix::streaming(),
        _ => InstructionMix::irregular(),
    };
    let fp_log2 = rng.random_range(20u64..34); // footprint 1 MiB .. 16 GiB
    let reuse = rng.random_range(1.0..32.0);
    KernelClassBuilder::new("prop")
        .geometry(grid, block)
        .resources(regs, shared_kib * 1024)
        .instructions(instr)
        .mix(mix)
        .memory(1u64 << fp_log2, reuse)
        .build()
}

fn gen_ctx(rng: &mut StdRng) -> RuntimeContext {
    RuntimeContext::neutral()
        .with_work(rng.random_range(0.1..8.0))
        .with_footprint(rng.random_range(0.2..4.0))
        .with_locality(rng.random_range(0.1..6.0))
        .with_jitter(rng.random_range(0.0..0.5))
}

/// Every timing output is finite, positive and internally consistent.
#[test]
fn timing_outputs_well_formed() {
    for case in 0..CASES {
        let mut rng = rng_for(1, case);
        let kernel = gen_kernel(&mut rng);
        let ctx = gen_ctx(&mut rng);
        let z = rng.random_range(-4.0..4.0);
        for config in [GpuConfig::rtx2080(), GpuConfig::h100(), GpuConfig::macsim_baseline()] {
            let t = time_kernel(&kernel, &ctx, 1.0, z, &config, SimOptions::default());
            assert!(t.cycles.is_finite() && t.cycles > 0.0, "case {case}");
            assert!(t.compute_cycles >= 0.0 && t.memory_cycles >= 0.0, "case {case}");
            assert!(t.deterministic_cycles >= config.launch_overhead_cycles, "case {case}");
            assert!((0.0..=1.0).contains(&t.memory_boundedness), "case {case}");
            assert!((0.0..=1.0).contains(&t.l1_hit), "case {case}");
            assert!((0.0..=1.0).contains(&t.l2_hit), "case {case}");
            assert!(t.dram_bytes >= 0.0, "case {case}");
            assert!(
                t.occupancy.occupancy > 0.0 && t.occupancy.occupancy <= 1.0,
                "case {case}"
            );
        }
    }
}

/// More work never makes the deterministic time shorter.
#[test]
fn monotone_in_work() {
    for case in 0..CASES {
        let mut rng = rng_for(2, case);
        let kernel = gen_kernel(&mut rng);
        let ctx = gen_ctx(&mut rng);
        let cfg = GpuConfig::rtx2080();
        let t1 = time_kernel(&kernel, &ctx, 1.0, 0.0, &cfg, SimOptions::default());
        let t2 = time_kernel(&kernel, &ctx, 2.0, 0.0, &cfg, SimOptions::default());
        assert!(t2.deterministic_cycles >= t1.deterministic_cycles, "case {case}");
    }
}

/// A zero-jitter context has no randomness: z is irrelevant.
#[test]
fn zero_jitter_ignores_z() {
    for case in 0..CASES {
        let mut rng = rng_for(3, case);
        let kernel = gen_kernel(&mut rng);
        let z = rng.random_range(-4.0..4.0);
        let cfg = GpuConfig::rtx2080();
        let ctx = RuntimeContext::neutral().with_jitter(0.0);
        let a = time_kernel(&kernel, &ctx, 1.0, z, &cfg, SimOptions::default());
        let b = time_kernel(&kernel, &ctx, 1.0, 0.0, &cfg, SimOptions::default());
        assert!((a.cycles - b.cycles).abs() < 1e-9 * b.cycles.max(1.0), "case {case}");
    }
}

/// Doubling SMs never slows a kernel down (deterministic part).
#[test]
fn more_sms_never_slower() {
    for case in 0..CASES {
        let mut rng = rng_for(4, case);
        let kernel = gen_kernel(&mut rng);
        let ctx = gen_ctx(&mut rng);
        let base = GpuConfig::macsim_baseline();
        let big = base.with_transform(DseTransform::SmScale(2.0));
        let t_base = time_kernel(&kernel, &ctx, 1.0, 0.0, &base, SimOptions::default());
        let t_big = time_kernel(&kernel, &ctx, 1.0, 0.0, &big, SimOptions::default());
        assert!(
            t_big.deterministic_cycles <= t_base.deterministic_cycles * (1.0 + 1e-9),
            "case {case}: {} vs {}",
            t_big.deterministic_cycles,
            t_base.deterministic_cycles
        );
    }
}

/// Growing the caches never increases DRAM traffic.
#[test]
fn bigger_cache_never_more_dram() {
    for case in 0..CASES {
        let mut rng = rng_for(5, case);
        let kernel = gen_kernel(&mut rng);
        let ctx = gen_ctx(&mut rng);
        let base = GpuConfig::macsim_baseline();
        let big = base.with_transform(DseTransform::CacheScale(2.0));
        let t_base = time_kernel(&kernel, &ctx, 1.0, 0.0, &base, SimOptions::default());
        let t_big = time_kernel(&kernel, &ctx, 1.0, 0.0, &big, SimOptions::default());
        assert!(t_big.dram_bytes <= t_base.dram_bytes * (1.0 + 1e-9), "case {case}");
    }
}

/// The flush mode never makes a kernel faster.
#[test]
fn flush_never_faster() {
    for case in 0..CASES {
        let mut rng = rng_for(6, case);
        let kernel = gen_kernel(&mut rng);
        let ctx = gen_ctx(&mut rng);
        let cfg = GpuConfig::rtx2080();
        let normal = time_kernel(&kernel, &ctx, 1.0, 0.0, &cfg, SimOptions::default());
        let flushed = time_kernel(
            &kernel,
            &ctx,
            1.0,
            0.0,
            &cfg,
            SimOptions { flush_l2_between_kernels: true, ..SimOptions::default() },
        );
        assert!(
            flushed.deterministic_cycles >= normal.deterministic_cycles * (1.0 - 1e-9),
            "case {case}"
        );
    }
}

/// Better locality never increases the deterministic time.
#[test]
fn locality_never_hurts() {
    for case in 0..CASES {
        let mut rng = rng_for(7, case);
        let kernel = gen_kernel(&mut rng);
        let boost = rng.random_range(1.0..6.0);
        let cfg = GpuConfig::rtx2080();
        let cold = RuntimeContext::neutral().with_locality(1.0);
        let warm = RuntimeContext::neutral().with_locality(boost);
        let t_cold = time_kernel(&kernel, &cold, 1.0, 0.0, &cfg, SimOptions::default());
        let t_warm = time_kernel(&kernel, &warm, 1.0, 0.0, &cfg, SimOptions::default());
        assert!(
            t_warm.deterministic_cycles <= t_cold.deterministic_cycles * (1.0 + 1e-9),
            "case {case}"
        );
    }
}
