//! Sharded memoisation of deterministic timing cores.
//!
//! Sampling plans revisit the same `(kernel signature, runtime context,
//! work scale, µarch config)` group many times — across repetitions, across
//! warm re-runs, and across clusters that share a kernel. [`SimCache`]
//! memoises [`DeterministicTiming`] cores (the jitter-free half of the
//! model) behind a sharded mutex map so parallel workers rarely contend,
//! and [`Simulator::run_sampled_cached`] is the cached, optionally parallel
//! twin of [`Simulator::run_sampled`].
//!
//! Since the hot-path overhaul the cache keys the *group*, not the
//! invocation: fingerprints are computed once per group per run (not once
//! per sample), the per-invocation noise draw never enters the key, and a
//! hit saves the whole analytic model, leaving one `exp` per sample.
//!
//! The cache is *output-invisible*: `deterministic_timing` is a pure
//! function, so a hit returns exactly the bits a recomputation would
//! produce, and the weighted-sum reduction still folds in sample order.
//! For long-lived processes the table can be bounded
//! ([`SimCache::with_capacity`]): full shards evict their oldest insertion,
//! which is equally output-invisible — an evicted entry is simply
//! recomputed to the same bits on its next miss.
//! Hit/miss counters are informational only. Keys are 128-bit structural
//! fingerprints over the full µarch config, the sim options, the workload's
//! kernel and context tables, and the group's own fields, so two different
//! configurations (or workloads) can never alias a cache line — the
//! cache-poisoning guard tests below pin this.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::exec::{deterministic_of_invocation, DeterministicTiming};
use crate::sampled::{SampledRun, WeightedSample};
use crate::simulator::Simulator;
use gpu_workload::Workload;
use stem_par::Parallelism;

/// Shard count; a power of two so `key & (SHARDS - 1)` selects a shard.
const SHARDS: usize = 16;

/// One shard: the memo map plus its keys in insertion order, so a bounded
/// shard can evict deterministically (oldest insertion first).
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<u128, DeterministicTiming>,
    order: VecDeque<u128>,
}

/// A sharded, thread-safe memo table from group fingerprints to
/// [`DeterministicTiming`] cores.
///
/// By default the table is unbounded — the right choice for one-shot runs,
/// where the working set is the run's own group count. Long-lived processes
/// (the `stem-serve` daemon shares one cache across every campaign it ever
/// runs) must bound it with [`SimCache::with_capacity`]: each shard then
/// holds at most `cap` entries and evicts its **oldest insertion** to make
/// room. Eviction is output-invisible — entries are pure functions of their
/// key, so an evicted-then-recomputed entry is bit-identical to the cached
/// one; only the hit rate and [`SimCache::evictions`] move.
#[derive(Debug)]
pub struct SimCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    poison_recoveries: AtomicU64,
}

impl Default for SimCache {
    fn default() -> Self {
        SimCache::new()
    }
}

impl SimCache {
    /// Creates an empty, unbounded cache.
    pub fn new() -> Self {
        Self::build(None)
    }

    /// Creates an empty cache holding at most `per_shard` entries per shard
    /// (so at most `per_shard * num_shards()` entries total). A zero cap is
    /// promoted to one — a cache that cannot hold anything would turn every
    /// lookup into a miss-and-evict churn for no benefit.
    pub fn with_capacity(per_shard: usize) -> Self {
        Self::build(Some(per_shard.max(1)))
    }

    fn build(capacity_per_shard: Option<usize>) -> Self {
        SimCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            capacity_per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            poison_recoveries: AtomicU64::new(0),
        }
    }

    /// The per-shard entry cap, if the cache is bounded.
    pub fn capacity_per_shard(&self) -> Option<usize> {
        self.capacity_per_shard
    }

    /// Number of memoised timings.
    pub fn len(&self) -> usize {
        (0..SHARDS).map(|i| self.lock_shard(i).map.len()).sum()
    }

    /// True if nothing has been memoised yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to simulate.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fraction of lookups served from the cache (0 when untouched).
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits();
        let total = h + self.misses();
        if total == 0 {
            0.0
        } else {
            h as f64 / total as f64
        }
    }

    /// Shard-lock poisonings recovered so far (see [`SimCache::lock_shard`]).
    pub fn poison_recoveries(&self) -> u64 {
        self.poison_recoveries.load(Ordering::Relaxed)
    }

    /// Entries evicted so far to honour the per-shard cap (always 0 for an
    /// unbounded cache).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Returns the memoised core for `key`, computing and inserting it on
    /// a miss. `compute` runs outside the shard lock so a slow simulation
    /// never blocks other shard traffic; a racing duplicate insert is
    /// harmless because the computed value is a pure function of the key.
    fn get_or_insert(
        &self,
        key: u128,
        compute: impl FnOnce() -> DeterministicTiming,
    ) -> DeterministicTiming {
        let shard = (key as usize) & (SHARDS - 1);
        if let Some(&t) = self.lock_shard(shard).map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return t;
        }
        let t = compute();
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.lock_shard(shard);
        // A racing worker may have inserted the same key while we computed;
        // re-inserting would double-count it in the insertion-order queue.
        if !guard.map.contains_key(&key) {
            if let Some(cap) = self.capacity_per_shard {
                while guard.map.len() >= cap {
                    match guard.order.pop_front() {
                        Some(oldest) => {
                            guard.map.remove(&oldest);
                            self.evictions.fetch_add(1, Ordering::Relaxed);
                        }
                        // Map and queue can only disagree transiently after
                        // a poison recovery cleared both; nothing to evict.
                        None => break,
                    }
                }
            }
            guard.map.insert(key, t);
            guard.order.push_back(key);
        }
        t
    }

    /// Locks one shard, recovering from poisoning. A poisoned shard means
    /// a worker panicked while holding the lock; under supervised
    /// execution that worker's task is retried rather than tearing down
    /// the pool, so the cache must stay usable. Every memoised value is a
    /// pure function of its key, which makes the recovery trivially sound:
    /// clear the shard and let it rebuild — a rebuilt entry is
    /// bit-identical to the lost one, so recovery is output-invisible
    /// (only the hit rate and [`SimCache::poison_recoveries`] move).
    fn lock_shard(&self, shard: usize) -> std::sync::MutexGuard<'_, Shard> {
        match self.shards[shard].lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
                self.shards[shard].clear_poison();
                let mut guard = poisoned.into_inner();
                guard.map.clear();
                guard.order.clear();
                guard
            }
        }
    }

    /// Chaos injection: poisons shard `index % num_shards` by panicking a
    /// throwaway thread while it holds the lock — the state a worker panic
    /// mid-insert leaves behind. The next access recovers (clears and
    /// rebuilds the shard); results are unaffected.
    pub fn poison_shard(&self, index: usize) {
        let shard = &self.shards[index % SHARDS];
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                let _guard = shard.lock();
                // Poison the mutex without the panic! macro: this is a
                // deliberate, typed chaos stimulus, not a hot-path bug.
                std::panic::panic_any("injected memo-shard poisoning");
            });
            // The join error is the injected panic itself.
            let _ = handle.join();
        });
    }

    /// Number of shards (the modulus [`SimCache::poison_shard`] applies).
    pub fn num_shards(&self) -> usize {
        SHARDS
    }
}

/// Incremental dual-stream 64-bit fingerprint (FNV-1a plus an independent
/// odd-multiplier stream) folded into a 128-bit key. Not cryptographic —
/// it only needs to keep distinct (config, workload, invocation) triples
/// from colliding in a process-local cache.
#[derive(Debug, Clone, Copy)]
struct Fingerprint {
    a: u64,
    b: u64,
}

impl Fingerprint {
    fn new() -> Self {
        Fingerprint {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn word(&mut self, w: u64) {
        self.a = (self.a ^ w).wrapping_mul(0x0000_0100_0000_01b3);
        self.b = (self.b ^ w.rotate_left(32)).wrapping_mul(0xd6e8_feb8_6659_fd93);
    }

    fn f64(&mut self, v: f64) {
        self.word(v.to_bits());
    }

    fn bytes(&mut self, s: &[u8]) {
        self.word(s.len() as u64);
        for chunk in s.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.word(u64::from_le_bytes(w));
        }
    }

    fn key(self) -> u128 {
        ((self.a as u128) << 64) | self.b as u128
    }
}

impl Simulator {
    /// Fingerprints everything a timing depends on *except* the invocation
    /// itself: the µarch config, the sim options, and the workload's kernel
    /// and context tables. Computed once per cached run and reused for
    /// every sample.
    fn environment_fingerprint(&self, workload: &Workload) -> Fingerprint {
        let mut fp = Fingerprint::new();
        let c = self.config();
        fp.bytes(c.name.as_bytes());
        fp.word(c.num_sms as u64);
        fp.f64(c.clock_ghz);
        fp.word(c.max_threads_per_sm as u64);
        fp.word(c.max_ctas_per_sm as u64);
        fp.word(c.regs_per_sm as u64);
        fp.word(c.shared_mem_per_sm as u64);
        fp.word(c.l1_size);
        fp.word(c.l2_size);
        fp.f64(c.dram_bandwidth_gbps);
        fp.f64(c.dram_latency_cycles);
        fp.f64(c.fp32_throughput);
        fp.f64(c.fp16_throughput);
        fp.f64(c.int_throughput);
        fp.f64(c.ldst_throughput);
        fp.f64(c.sfu_throughput);
        fp.f64(c.launch_overhead_cycles);
        let o = self.options();
        fp.word(o.flush_l2_between_kernels as u64);
        fp.word(o.warmup_kernels as u64);
        fp.word(workload.kernels().len() as u64);
        for (ki, k) in workload.kernels().iter().enumerate() {
            fp.bytes(k.name.as_bytes());
            fp.word(k.grid_dim as u64);
            fp.word(k.block_dim as u64);
            fp.word(k.regs_per_thread as u64);
            fp.word(k.shared_mem_per_cta as u64);
            fp.word(k.instr_per_thread);
            fp.f64(k.mix.fp32);
            fp.f64(k.mix.fp16);
            fp.f64(k.mix.int_alu);
            fp.f64(k.mix.ldst_global);
            fp.f64(k.mix.ldst_shared);
            fp.f64(k.mix.branch);
            fp.f64(k.mix.special);
            fp.word(k.footprint_bytes);
            fp.f64(k.reuse_factor);
            let contexts = workload.contexts_of(gpu_workload::KernelId(ki as u32));
            fp.word(contexts.len() as u64);
            for ctx in contexts {
                fp.f64(ctx.work_scale);
                fp.f64(ctx.footprint_scale);
                fp.f64(ctx.locality_boost);
                fp.f64(ctx.jitter_cov);
            }
        }
        fp
    }

    /// [`Simulator::run_sampled`] with memoisation and optional
    /// parallelism. Bit-identical to the uncached serial run at every
    /// thread count and cache temperature: cores are pure functions of
    /// their fingerprint, the jitter expression matches the uncached path,
    /// and both accumulators fold in sample order.
    ///
    /// Group fingerprints are computed once per run for the groups the
    /// sample set touches — never per sample — and the per-invocation
    /// noise draw stays out of the key, so warm reps hit once per group.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or any index is out of range.
    pub fn run_sampled_cached(
        &self,
        workload: &Workload,
        samples: &[WeightedSample],
        par: Parallelism,
        cache: &SimCache,
    ) -> SampledRun {
        assert!(!samples.is_empty(), "sampled simulation needs samples");
        let n = workload.num_invocations();
        let env = self.environment_fingerprint(workload);
        // Which groups this sample set touches, and where each group's
        // fetched core lands (`slot_of[g]` indexes into `cores`).
        let num_groups = workload.num_invocation_groups();
        let mut slot_of: Vec<u32> = vec![u32::MAX; num_groups];
        let mut needed: Vec<u32> = Vec::new();
        for s in samples {
            assert!(s.index < n, "sample index {} out of range", s.index);
            let g = workload.group_of(s.index) as usize;
            if slot_of[g] == u32::MAX {
                slot_of[g] = needed.len() as u32;
                needed.push(g as u32);
            }
        }
        // One cache lookup (and at most one model evaluation) per group.
        let cores: Vec<DeterministicTiming> = stem_par::par_map_indexed(par, &needed, |_, &g| {
            let rep = &workload.invocations()[workload.group_representative(g)];
            let mut fp = env;
            fp.word(rep.kernel.index() as u64);
            fp.word(rep.context as u64);
            fp.word(rep.work_scale.to_bits() as u64);
            cache.get_or_insert(fp.key(), || {
                deterministic_of_invocation(workload, rep, self.config(), self.options())
            })
        });
        // Stream the jitter: one `exp` per sample, folded in sample order.
        let pairs = stem_par::par_map_indexed(par, samples, |_, s| {
            let inv = &workload.invocations()[s.index];
            let det = &cores[slot_of[workload.group_of(s.index) as usize] as usize];
            let cycles = det.jittered_cycles(inv.noise_z as f64);
            (s.weight * cycles, cycles + det.warmup_cycles)
        });
        let mut estimated = 0.0;
        let mut simulated = 0.0;
        for (e, s) in pairs {
            estimated += e;
            simulated += s;
        }
        SampledRun {
            estimated_total_cycles: estimated,
            simulated_cycles: simulated,
            num_samples: samples.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use gpu_workload::suites::rodinia_suite;

    fn unit_samples(n: usize) -> Vec<WeightedSample> {
        (0..n).map(|i| WeightedSample::new(i, 1.5)).collect()
    }

    #[test]
    fn cached_run_matches_uncached_bitwise() {
        let w = &rodinia_suite(5)[0];
        let sim = Simulator::new(GpuConfig::rtx2080());
        let samples = unit_samples(w.num_invocations().min(500));
        let plain = sim.run_sampled(w, &samples);
        let cache = SimCache::new();
        for threads in [1usize, 2, 3, 8] {
            let cached = sim.run_sampled_cached(
                w,
                &samples,
                Parallelism::with_threads(threads),
                &cache,
            );
            assert_eq!(cached, plain, "threads = {threads}");
        }
    }

    #[test]
    fn warm_run_is_identical_and_hits() {
        let w = &rodinia_suite(5)[1];
        let sim = Simulator::new(GpuConfig::rtx2080());
        let samples = unit_samples(w.num_invocations().min(400));
        let cache = SimCache::new();
        let par = Parallelism::with_threads(4);
        let cold = sim.run_sampled_cached(w, &samples, par, &cache);
        let misses_after_cold = cache.misses();
        assert!(misses_after_cold > 0, "cold run must populate the cache");
        // One lookup per *group* per run, never per sample.
        let touched_groups: std::collections::BTreeSet<u32> =
            samples.iter().map(|s| w.group_of(s.index)).collect();
        assert_eq!(misses_after_cold, touched_groups.len() as u64);
        assert_eq!(cache.hits(), 0, "cold run must not hit");
        let warm = sim.run_sampled_cached(w, &samples, par, &cache);
        assert_eq!(warm, cold, "warm run must be bit-identical to cold");
        assert_eq!(
            cache.hits(),
            touched_groups.len() as u64,
            "warm run must hit exactly once per touched group"
        );
        assert!(cache.hit_rate() > 0.0);
        // The warm run computed nothing new.
        assert_eq!(cache.misses(), misses_after_cold);
    }

    #[test]
    fn different_uarch_config_misses() {
        // Cache-poisoning guard: the same workload + samples on a different
        // µarch config must never be served H100 timings from RTX 2080
        // entries (or vice versa).
        let w = &rodinia_suite(5)[2];
        let samples = unit_samples(w.num_invocations().min(300));
        let cache = SimCache::new();
        let par = Parallelism::serial();
        let a = Simulator::new(GpuConfig::rtx2080());
        let b = Simulator::new(GpuConfig::h100());
        let run_a = a.run_sampled_cached(w, &samples, par, &cache);
        let hits_after_a = cache.hits();
        let run_b = b.run_sampled_cached(w, &samples, par, &cache);
        assert_eq!(
            cache.hits(),
            hits_after_a,
            "a different config must not hit the other config's entries"
        );
        assert_eq!(run_b, b.run_sampled(w, &samples));
        assert_ne!(run_a.estimated_total_cycles, run_b.estimated_total_cycles);
    }

    #[test]
    fn different_sim_options_miss() {
        let w = &rodinia_suite(5)[3];
        let samples = unit_samples(w.num_invocations().min(300));
        let cache = SimCache::new();
        let par = Parallelism::serial();
        let plain = Simulator::new(GpuConfig::rtx2080());
        let flushed = Simulator::with_options(
            GpuConfig::rtx2080(),
            crate::exec::SimOptions {
                flush_l2_between_kernels: true,
                warmup_kernels: true,
            },
        );
        plain.run_sampled_cached(w, &samples, par, &cache);
        let hits_before = cache.hits();
        let run = flushed.run_sampled_cached(w, &samples, par, &cache);
        assert_eq!(cache.hits(), hits_before, "options change must miss");
        assert_eq!(run, flushed.run_sampled(w, &samples));
    }

    #[test]
    fn counters_start_at_zero() {
        let cache = SimCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 0);
        assert_eq!(cache.hit_rate(), 0.0);
        assert_eq!(cache.poison_recoveries(), 0);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.capacity_per_shard(), None);
        assert_eq!(SimCache::with_capacity(7).capacity_per_shard(), Some(7));
        // A zero cap is promoted to one entry per shard.
        assert_eq!(SimCache::with_capacity(0).capacity_per_shard(), Some(1));
    }

    #[test]
    fn bounded_cache_never_exceeds_cap_and_counts_evictions() {
        // One workload alone may touch fewer groups than there are shards;
        // stream the whole suite through one tight cache so shards collide
        // and the cap has to evict.
        let suite = rodinia_suite(5);
        let sim = Simulator::new(GpuConfig::rtx2080());
        let cache = SimCache::with_capacity(1);
        let mut total_groups = 0;
        for w in &suite {
            let samples = unit_samples(w.num_invocations().min(500));
            let plain = sim.run_sampled(w, &samples);
            for threads in [1usize, 4] {
                let run = sim.run_sampled_cached(
                    w,
                    &samples,
                    Parallelism::with_threads(threads),
                    &cache,
                );
                assert_eq!(
                    run, plain,
                    "{}: eviction must be output-invisible (threads {threads})",
                    w.name()
                );
                assert!(
                    cache.len() <= cache.num_shards(),
                    "cap 1 per shard exceeded: {} entries",
                    cache.len()
                );
            }
            total_groups += w.num_invocation_groups();
        }
        assert!(
            total_groups > cache.num_shards(),
            "suite too small to force collisions: {total_groups} groups"
        );
        assert!(cache.evictions() > 0, "a cap of 1 must have evicted something");
    }

    #[test]
    fn warm_run_on_a_bounded_cache_stays_identical() {
        let w = &rodinia_suite(5)[1];
        let sim = Simulator::new(GpuConfig::rtx2080());
        let samples = unit_samples(w.num_invocations().min(400));
        let plain = sim.run_sampled(w, &samples);
        // Generous cap: nothing is evicted, warm behaviour matches the
        // unbounded cache exactly.
        let roomy = SimCache::with_capacity(4096);
        let cold = sim.run_sampled_cached(w, &samples, Parallelism::serial(), &roomy);
        let warm = sim.run_sampled_cached(w, &samples, Parallelism::serial(), &roomy);
        assert_eq!(cold, plain);
        assert_eq!(warm, plain);
        assert_eq!(roomy.evictions(), 0);
        assert!(roomy.hits() > 0, "warm run must hit a roomy cache");
        // Tight cap: the warm run may churn, but the bits never move.
        let tight = SimCache::with_capacity(1);
        let cold = sim.run_sampled_cached(w, &samples, Parallelism::serial(), &tight);
        let warm = sim.run_sampled_cached(w, &samples, Parallelism::serial(), &tight);
        assert_eq!(cold, plain);
        assert_eq!(warm, plain);
    }

    #[test]
    fn poisoned_bounded_shard_recovers_clean() {
        let w = &rodinia_suite(5)[2];
        let sim = Simulator::new(GpuConfig::rtx2080());
        let samples = unit_samples(w.num_invocations().min(200));
        let plain = sim.run_sampled(w, &samples);
        let cache = SimCache::with_capacity(2);
        sim.run_sampled_cached(w, &samples, Parallelism::serial(), &cache);
        for shard in 0..cache.num_shards() {
            cache.poison_shard(shard);
        }
        let after = sim.run_sampled_cached(w, &samples, Parallelism::serial(), &cache);
        assert_eq!(after, plain, "recovery on a bounded cache must be output-invisible");
        assert!(cache.len() <= 2 * cache.num_shards());
    }

    #[test]
    fn poisoned_shard_is_recovered_and_output_invisible() {
        let w = &rodinia_suite(5)[0];
        let sim = Simulator::new(GpuConfig::rtx2080());
        let samples = unit_samples(w.num_invocations().min(400));
        let plain = sim.run_sampled(w, &samples);
        let cache = SimCache::new();
        let par = Parallelism::with_threads(4);
        // Warm the cache, then poison every shard — the worst case a
        // storm of worker panics could leave behind.
        let cold = sim.run_sampled_cached(w, &samples, par, &cache);
        assert_eq!(cold, plain);
        for shard in 0..cache.num_shards() {
            cache.poison_shard(shard);
        }
        let after = sim.run_sampled_cached(w, &samples, par, &cache);
        assert_eq!(after, plain, "recovery must be output-invisible");
        assert!(
            cache.poison_recoveries() >= 1,
            "recoveries must be counted: {}",
            cache.poison_recoveries()
        );
    }

    #[test]
    fn poison_recovery_rebuilds_the_shard() {
        let w = &rodinia_suite(5)[1];
        let sim = Simulator::new(GpuConfig::rtx2080());
        let samples = unit_samples(w.num_invocations().min(200));
        let cache = SimCache::new();
        sim.run_sampled_cached(w, &samples, Parallelism::serial(), &cache);
        let warm_len = cache.len();
        assert!(warm_len > 0);
        cache.poison_shard(3);
        // `len` touches every shard, recovering (clearing) the poisoned
        // one; the rest keep their entries.
        let after_poison = cache.len();
        assert!(after_poison <= warm_len);
        assert_eq!(cache.poison_recoveries(), 1);
        // A re-run repopulates whatever the recovery dropped.
        let rerun = sim.run_sampled_cached(w, &samples, Parallelism::serial(), &cache);
        assert_eq!(rerun, sim.run_sampled(w, &samples));
        assert_eq!(cache.len(), warm_len);
        // Recovery happened once; the shard is healthy again.
        assert_eq!(cache.poison_recoveries(), 1);
    }
}
