//! GPU configurations: real-hardware presets and DSE transforms.


/// A GPU (micro)architecture configuration.
///
/// Presets model the machines of the paper's evaluation: RTX 2080 (the
/// profiling machine), H100 and H200 (the cross-GPU portability pair,
/// Fig. 13), and a small MacSim-like baseline used for full cycle-level
/// simulation in the DSE study (Table 4).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Human-readable name.
    pub name: String,
    /// Streaming multiprocessor count.
    pub num_sms: u32,
    /// Core clock in GHz (converts cycles to seconds only for display).
    pub clock_ghz: f64,
    /// Max resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Max resident CTAs per SM.
    pub max_ctas_per_sm: u32,
    /// Register file per SM (32-bit registers).
    pub regs_per_sm: u32,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm: u32,
    /// L1 data cache per SM in bytes.
    pub l1_size: u64,
    /// Shared L2 cache in bytes.
    pub l2_size: u64,
    /// DRAM bandwidth in GB/s.
    pub dram_bandwidth_gbps: f64,
    /// DRAM access latency in core cycles.
    pub dram_latency_cycles: f64,
    /// FP32 warp-instruction throughput per SM per cycle.
    pub fp32_throughput: f64,
    /// FP16/tensor warp-instruction throughput per SM per cycle.
    pub fp16_throughput: f64,
    /// Integer warp-instruction throughput per SM per cycle.
    pub int_throughput: f64,
    /// Load/store-issue warp-instruction throughput per SM per cycle.
    pub ldst_throughput: f64,
    /// Special-function warp-instruction throughput per SM per cycle.
    pub sfu_throughput: f64,
    /// Fixed kernel-launch overhead in cycles.
    pub launch_overhead_cycles: f64,
}

impl GpuConfig {
    /// NVIDIA RTX 2080 (Turing): the paper's profiling machine.
    pub fn rtx2080() -> Self {
        GpuConfig {
            name: "rtx2080".to_string(),
            num_sms: 46,
            clock_ghz: 1.71,
            max_threads_per_sm: 1024,
            max_ctas_per_sm: 16,
            regs_per_sm: 65_536,
            shared_mem_per_sm: 64 * 1024,
            l1_size: 64 * 1024,
            l2_size: 4 << 20,
            dram_bandwidth_gbps: 448.0,
            dram_latency_cycles: 400.0,
            fp32_throughput: 2.0,
            fp16_throughput: 4.0,
            int_throughput: 2.0,
            ldst_throughput: 1.0,
            sfu_throughput: 0.5,
            launch_overhead_cycles: 2_000.0,
        }
    }

    /// NVIDIA H100 (Hopper, SXM).
    pub fn h100() -> Self {
        GpuConfig {
            name: "h100".to_string(),
            num_sms: 132,
            clock_ghz: 1.98,
            max_threads_per_sm: 2048,
            max_ctas_per_sm: 32,
            regs_per_sm: 65_536,
            shared_mem_per_sm: 228 * 1024,
            l1_size: 256 * 1024,
            l2_size: 50 << 20,
            dram_bandwidth_gbps: 3350.0,
            dram_latency_cycles: 500.0,
            fp32_throughput: 4.0,
            fp16_throughput: 16.0,
            int_throughput: 4.0,
            ldst_throughput: 2.0,
            sfu_throughput: 1.0,
            launch_overhead_cycles: 2_000.0,
        }
    }

    /// NVIDIA H200: H100 with the memory subsystem upgraded (more, faster
    /// HBM3e) — the hardware delta behind Fig. 13.
    pub fn h200() -> Self {
        let mut c = GpuConfig::h100();
        c.name = "h200".to_string();
        c.dram_bandwidth_gbps = 4800.0;
        c.dram_latency_cycles = 460.0;
        c
    }

    /// A reduced MacSim-like baseline config, small enough that "full
    /// cycle-level simulation" of every workload is tractable (the Table 4
    /// setting).
    pub fn macsim_baseline() -> Self {
        GpuConfig {
            name: "macsim-baseline".to_string(),
            num_sms: 16,
            clock_ghz: 1.4,
            max_threads_per_sm: 1536,
            max_ctas_per_sm: 16,
            regs_per_sm: 65_536,
            shared_mem_per_sm: 96 * 1024,
            l1_size: 32 * 1024,
            l2_size: 2 << 20,
            dram_bandwidth_gbps: 320.0,
            dram_latency_cycles: 350.0,
            fp32_throughput: 2.0,
            fp16_throughput: 4.0,
            int_throughput: 2.0,
            ldst_throughput: 1.0,
            sfu_throughput: 0.5,
            launch_overhead_cycles: 1_500.0,
        }
    }

    /// Applies a DSE transform, returning the modified config with a
    /// suffixed name.
    pub fn with_transform(&self, t: DseTransform) -> GpuConfig {
        let mut c = self.clone();
        match t {
            DseTransform::Baseline => {}
            DseTransform::CacheScale(f) => {
                assert!(f > 0.0, "cache scale must be positive");
                c.l1_size = ((c.l1_size as f64) * f).round().max(1.0) as u64;
                c.l2_size = ((c.l2_size as f64) * f).round().max(1.0) as u64;
                c.name = format!("{}+cache_x{f}", self.name);
            }
            DseTransform::SmScale(f) => {
                assert!(f > 0.0, "SM scale must be positive");
                c.num_sms = ((c.num_sms as f64) * f).round().max(1.0) as u32;
                c.name = format!("{}+sm_x{f}", self.name);
            }
        }
        c
    }

    /// Bytes the DRAM can move per core cycle.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_bandwidth_gbps / self.clock_ghz
    }

    /// Converts a cycle count to seconds at this config's clock.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e9)
    }

    /// Validates physical plausibility.
    ///
    /// # Panics
    ///
    /// Panics on nonpositive sizes, clocks or throughputs.
    pub fn validate(&self) {
        assert!(self.num_sms > 0, "config {} has zero SMs", self.name);
        assert!(self.clock_ghz > 0.0, "config {} has zero clock", self.name);
        assert!(self.max_threads_per_sm >= 32, "config {} too few threads", self.name);
        assert!(self.l1_size > 0 && self.l2_size > 0, "config {} zero cache", self.name);
        assert!(
            self.dram_bandwidth_gbps > 0.0,
            "config {} zero bandwidth",
            self.name
        );
        for (name, v) in [
            ("fp32", self.fp32_throughput),
            ("fp16", self.fp16_throughput),
            ("int", self.int_throughput),
            ("ldst", self.ldst_throughput),
            ("sfu", self.sfu_throughput),
        ] {
            assert!(v > 0.0, "config {} zero {name} throughput", self.name);
        }
    }
}

/// The design-space-exploration transforms of Table 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DseTransform {
    /// Unmodified config.
    Baseline,
    /// Scale L1 and L2 capacity by the factor (2.0 and 0.5 in the paper).
    CacheScale(f64),
    /// Scale SM count by the factor (2.0 and 0.5 in the paper).
    SmScale(f64),
}

impl DseTransform {
    /// The five Table 4 rows in paper order.
    pub const TABLE4: [DseTransform; 5] = [
        DseTransform::Baseline,
        DseTransform::CacheScale(2.0),
        DseTransform::CacheScale(0.5),
        DseTransform::SmScale(2.0),
        DseTransform::SmScale(0.5),
    ];

    /// Display label matching the paper's row names.
    pub fn label(&self) -> String {
        match self {
            DseTransform::Baseline => "Baseline".to_string(),
            DseTransform::CacheScale(f) => format!("Cache size x{f}"),
            DseTransform::SmScale(f) => format!("#SM x{f}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for c in [
            GpuConfig::rtx2080(),
            GpuConfig::h100(),
            GpuConfig::h200(),
            GpuConfig::macsim_baseline(),
        ] {
            c.validate();
        }
    }

    #[test]
    fn h200_is_h100_with_faster_memory() {
        let h100 = GpuConfig::h100();
        let h200 = GpuConfig::h200();
        assert_eq!(h100.num_sms, h200.num_sms);
        assert_eq!(h100.l2_size, h200.l2_size);
        assert!(h200.dram_bandwidth_gbps > h100.dram_bandwidth_gbps);
    }

    #[test]
    fn cache_transform_scales_both_levels() {
        let base = GpuConfig::macsim_baseline();
        let doubled = base.with_transform(DseTransform::CacheScale(2.0));
        assert_eq!(doubled.l1_size, base.l1_size * 2);
        assert_eq!(doubled.l2_size, base.l2_size * 2);
        assert_eq!(doubled.num_sms, base.num_sms);
        doubled.validate();
    }

    #[test]
    fn sm_transform_scales_sms() {
        let base = GpuConfig::macsim_baseline();
        let halved = base.with_transform(DseTransform::SmScale(0.5));
        assert_eq!(halved.num_sms, base.num_sms / 2);
        assert_eq!(halved.l2_size, base.l2_size);
    }

    #[test]
    fn baseline_transform_is_identity() {
        let base = GpuConfig::h100();
        let same = base.with_transform(DseTransform::Baseline);
        assert_eq!(base, same);
    }

    #[test]
    fn table4_has_five_rows() {
        assert_eq!(DseTransform::TABLE4.len(), 5);
        assert_eq!(DseTransform::TABLE4[0].label(), "Baseline");
        assert_eq!(DseTransform::TABLE4[1].label(), "Cache size x2");
    }

    #[test]
    fn bytes_per_cycle() {
        let c = GpuConfig::rtx2080();
        let bpc = c.dram_bytes_per_cycle();
        assert!((bpc - 448.0 / 1.71).abs() < 1e-9);
    }

    #[test]
    fn cycles_to_seconds_roundtrip() {
        let c = GpuConfig::rtx2080();
        let s = c.cycles_to_seconds(1.71e9);
        assert!((s - 1.0).abs() < 1e-12);
    }
}
