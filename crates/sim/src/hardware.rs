//! "Real hardware" mode: what a kernel profiler measures.
//!
//! The paper profiles on physical GPUs (Nsight Systems on an RTX 2080) and
//! simulates on MacSim. We reproduce that separation: a [`HardwareRunner`]
//! wraps a high-fidelity config and adds per-measurement noise on top of
//! the invocation's intrinsic jitter — timer quantization, driver
//! scheduling, thermal state — so that profiled times are *close to but not
//! identical to* what any simulator config produces.

use crate::config::GpuConfig;
use crate::simulator::Simulator;
use gpu_workload::Workload;

/// Measures kernel execution times the way a lightweight profiler would.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareRunner {
    sim: Simulator,
    /// CoV of multiplicative measurement noise.
    measurement_noise: f64,
    /// Seed decorrelating measurement noise from workload jitter.
    seed: u64,
}

impl HardwareRunner {
    /// Default measurement-noise CoV (~1%, typical of kernel-level timers).
    pub const DEFAULT_NOISE: f64 = 0.01;

    /// Creates a hardware runner on `config`.
    pub fn new(config: GpuConfig, seed: u64) -> Self {
        HardwareRunner {
            sim: Simulator::new(config),
            measurement_noise: Self::DEFAULT_NOISE,
            seed,
        }
    }

    /// Overrides the measurement-noise CoV.
    ///
    /// # Panics
    ///
    /// Panics if `cov` is negative or above 1.
    pub fn with_noise(mut self, cov: f64) -> Self {
        assert!((0.0..=1.0).contains(&cov), "noise CoV must be in [0, 1]");
        self.measurement_noise = cov;
        self
    }

    /// The underlying config.
    pub fn config(&self) -> &GpuConfig {
        self.sim.config()
    }

    /// Measures one invocation (cycles, with measurement noise).
    pub fn measure_one(&self, workload: &Workload, index: usize) -> f64 {
        let inv = &workload.invocations()[index];
        let true_cycles = self.sim.cycles(workload, inv);
        let z = noise_z(self.seed, index as u64);
        let s = self.measurement_noise;
        true_cycles * (s * z - s * s / 2.0).exp()
    }

    /// Measures every invocation — the execution-time profile STEM consumes
    /// (an Nsight-Systems-style trace).
    ///
    /// Grouped fast path: the simulator's deterministic core runs once per
    /// invocation group, then each measurement applies the invocation's
    /// jitter and its own `(seed, index)` noise — bit-identical to calling
    /// [`HardwareRunner::measure_one`] per index, because the per-index
    /// floating-point expression is unchanged.
    pub fn measure_all(&self, workload: &Workload) -> Vec<f64> {
        self.measure_all_par(workload, stem_par::Parallelism::serial())
    }

    /// [`HardwareRunner::measure_all`] spread across `par` threads.
    /// Measurement noise is a pure function of `(seed, index)`, so the
    /// result is bit-identical to the serial profile at any thread count.
    pub fn measure_all_par(&self, workload: &Workload, par: stem_par::Parallelism) -> Vec<f64> {
        let invocations = workload.invocations();
        stem_par::par_map_grouped(
            par,
            workload.num_invocation_groups(),
            |g| {
                let rep = &invocations[workload.group_representative(g as u32)];
                crate::exec::deterministic_of_invocation(
                    workload,
                    rep,
                    self.sim.config(),
                    self.sim.options(),
                )
            },
            invocations.len(),
            |i, groups: &[crate::exec::DeterministicTiming]| {
                let true_cycles = groups[workload.group_of(i) as usize]
                    .jittered_cycles(invocations[i].noise_z as f64);
                let z = noise_z(self.seed, i as u64);
                let s = self.measurement_noise;
                true_cycles * (s * z - s * s / 2.0).exp()
            },
        )
    }
}

/// The pre-overhaul per-invocation profiling loop, kept as the executable
/// specification for `tests/hotpath_equivalence.rs`.
#[doc(hidden)]
pub mod reference {
    use super::*;

    /// Per-invocation [`HardwareRunner::measure_all`].
    pub fn measure_all(hw: &HardwareRunner, workload: &Workload) -> Vec<f64> {
        (0..workload.num_invocations())
            .map(|i| hw.measure_one(workload, i))
            .collect()
    }
}

/// Deterministic standard-normal draw from `(seed, index)` via splitmix64 +
/// Box–Muller.
fn noise_z(seed: u64, index: u64) -> f64 {
    let u1 = splitmix_unit(seed ^ index.wrapping_mul(0x9e3779b97f4a7c15));
    let u2 = splitmix_unit(seed.wrapping_add(1) ^ index.wrapping_mul(0xbf58476d1ce4e5b9));
    let u1 = u1.max(f64::MIN_POSITIVE);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn splitmix_unit(mut x: u64) -> f64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_workload::suites::rodinia_suite;

    #[test]
    fn measurement_close_to_truth() {
        let w = &rodinia_suite(2)[0];
        let hw = HardwareRunner::new(GpuConfig::rtx2080(), 99);
        let sim = Simulator::new(GpuConfig::rtx2080());
        let truth = sim.run_full(w);
        let measured = hw.measure_all(w);
        for (m, t) in measured.iter().zip(&truth.per_invocation) {
            let rel = (m - t).abs() / t;
            assert!(rel < 0.08, "measurement deviates {rel}");
        }
    }

    #[test]
    fn parallel_measurement_is_bit_identical() {
        let w = &rodinia_suite(2)[0];
        let hw = HardwareRunner::new(GpuConfig::rtx2080(), 99);
        let serial = hw.measure_all(w);
        for threads in [1usize, 2, 3, 8] {
            let par = hw.measure_all_par(w, stem_par::Parallelism::with_threads(threads));
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn noise_is_reproducible() {
        let w = &rodinia_suite(2)[0];
        let hw = HardwareRunner::new(GpuConfig::rtx2080(), 99);
        assert_eq!(hw.measure_all(w), hw.measure_all(w));
    }

    #[test]
    fn different_seeds_differ() {
        let w = &rodinia_suite(2)[0];
        let a = HardwareRunner::new(GpuConfig::rtx2080(), 1).measure_one(w, 0);
        let b = HardwareRunner::new(GpuConfig::rtx2080(), 2).measure_one(w, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_noise_equals_simulation() {
        let w = &rodinia_suite(2)[1];
        let hw = HardwareRunner::new(GpuConfig::rtx2080(), 1).with_noise(0.0);
        let sim = Simulator::new(GpuConfig::rtx2080());
        let truth = sim.run_full(w);
        let measured = hw.measure_all(w);
        for (m, t) in measured.iter().zip(&truth.per_invocation) {
            assert_eq!(m, t);
        }
    }

    #[test]
    fn noise_z_is_roughly_standard_normal() {
        let n = 50_000u64;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for i in 0..n {
            let z = noise_z(7, i);
            sum += z;
            sum2 += z * z;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    #[should_panic(expected = "noise CoV must be in")]
    fn bad_noise_rejected() {
        HardwareRunner::new(GpuConfig::rtx2080(), 1).with_noise(2.0);
    }
}
