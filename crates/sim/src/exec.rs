//! Per-invocation timing: the core analytic model.
//!
//! The model is a classical two-rail (compute vs memory) kernel model:
//!
//! * **Compute rail** — dynamic warp instructions weighted by per-class
//!   throughputs, divided by the SMs actually covered by the grid and a
//!   latency-hiding utilization that grows with resident warps.
//! * **Memory rail** — global-access traffic derived from the instruction
//!   mix, filtered by L1 (per-SM, aided by blocking quality) and L2
//!   (device-wide, modulated by the context's locality), with the residual
//!   DRAM bytes pushed through the bandwidth roofline.
//!
//! The kernel's cycles are `launch + max(rails) + 0.15 * min(rails)`
//! (imperfect overlap), and runtime jitter is lognormal with a CoV that
//! grows with memory-boundedness — the mechanism behind the paper's
//! observation that memory-bound kernels need more samples (Sec. 2.2) and
//! stay robust across hardware (Sec. 6.1).

use crate::cache::{hit_rate, miss_bytes};
use crate::config::GpuConfig;
use crate::dram::dram_cycles;
use crate::occupancy::{occupancy, Occupancy};
use gpu_workload::{Invocation, Workload};

/// Simulation options.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimOptions {
    /// Model an L2 flush between every kernel (the Sec. 6.2 extreme-case
    /// warmup experiment): inter-kernel residency benefits are removed by
    /// capping the context's locality boost at 1.
    pub flush_l2_between_kernels: bool,
    /// Model the lightweight warmup strategy Sec. 6.2 suggests ("inserting
    /// warmup instructions or short warmup kernels"): before each simulated
    /// kernel a short warmup pass restores most of the producer-consumer L2
    /// residency that a flush destroyed, at a small simulated-time tax.
    /// Only meaningful together with `flush_l2_between_kernels`.
    pub warmup_kernels: bool,
}

/// Fraction of a kernel's own time spent on its warmup pass.
const WARMUP_TAX: f64 = 0.04;
/// Fraction of destroyed residency a warmup pass restores.
const WARMUP_RESTORE: f64 = 0.8;

/// Full timing breakdown of one invocation on one config.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelTiming {
    /// Compute-rail cycles.
    pub compute_cycles: f64,
    /// Memory-rail cycles.
    pub memory_cycles: f64,
    /// Deterministic total (launch + max + overlap tax), before jitter.
    pub deterministic_cycles: f64,
    /// Total with this invocation's lognormal jitter applied — the number a
    /// cycle-level simulator (or profiler) would report.
    pub cycles: f64,
    /// Memory-boundedness `beta = mem / (mem + compute)` in `[0, 1]`.
    pub memory_boundedness: f64,
    /// Occupancy analysis.
    pub occupancy: Occupancy,
    /// L1 hit rate.
    pub l1_hit: f64,
    /// L2 hit rate (reads).
    pub l2_hit: f64,
    /// Bytes that reached DRAM.
    pub dram_bytes: f64,
    /// Bytes of global-memory demand issued to L1.
    pub access_bytes: f64,
    /// Warp execution efficiency (active-lane fraction).
    pub warp_efficiency: f64,
    /// Effective jitter CoV used for this invocation.
    pub jitter_sigma: f64,
    /// Extra cycles a sampled simulation spends warming the caches before
    /// this kernel (0 unless `SimOptions::warmup_kernels`). Warmup cycles
    /// are *simulation cost*, not part of the kernel's measured time.
    pub warmup_cycles: f64,
}

/// The memoizable half of the timing model: everything that depends only on
/// `(kernel, context, work scale, config, options)` — both rails, occupancy,
/// hit rates, the deterministic cycle total, and the jitter CoV. The only
/// per-invocation input left out is the lognormal noise draw, applied by
/// [`DeterministicTiming::apply_jitter`].
///
/// Workloads repeat the same `(kernel, context, work scale)` triple across
/// thousands-to-millions of invocations (see `Workload::num_invocation_groups`),
/// so computing this once per group and streaming the jitter turns full
/// simulation into "group-precompute + one `exp` per invocation".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeterministicTiming {
    /// Compute-rail cycles.
    pub compute_cycles: f64,
    /// Memory-rail cycles.
    pub memory_cycles: f64,
    /// Deterministic total (launch + max + overlap tax), before jitter.
    pub deterministic_cycles: f64,
    /// Memory-boundedness `beta = mem / (mem + compute)` in `[0, 1]`.
    pub memory_boundedness: f64,
    /// Occupancy analysis.
    pub occupancy: Occupancy,
    /// L1 hit rate.
    pub l1_hit: f64,
    /// L2 hit rate (reads).
    pub l2_hit: f64,
    /// Bytes that reached DRAM.
    pub dram_bytes: f64,
    /// Bytes of global-memory demand issued to L1.
    pub access_bytes: f64,
    /// Warp execution efficiency (active-lane fraction).
    pub warp_efficiency: f64,
    /// Effective jitter CoV for invocations of this group.
    pub jitter_sigma: f64,
    /// Extra warmup-simulation cycles (0 unless `SimOptions::warmup_kernels`).
    pub warmup_cycles: f64,
}

impl DeterministicTiming {
    /// Total cycles with the lognormal jitter for noise draw `z` applied —
    /// bit-identical to the `cycles` field [`time_kernel`] computes, because
    /// the floating-point expression is the same.
    #[inline]
    pub fn jittered_cycles(&self, noise_z: f64) -> f64 {
        let jitter_sigma = self.jitter_sigma;
        let z = noise_z;
        let jitter = (jitter_sigma * z - jitter_sigma * jitter_sigma / 2.0).exp();
        self.deterministic_cycles * jitter
    }

    /// Expands into the full per-invocation [`KernelTiming`] for noise draw
    /// `z`. `time_kernel(..) == deterministic_timing(..).apply_jitter(z)`
    /// bitwise.
    pub fn apply_jitter(&self, noise_z: f64) -> KernelTiming {
        KernelTiming {
            compute_cycles: self.compute_cycles,
            memory_cycles: self.memory_cycles,
            deterministic_cycles: self.deterministic_cycles,
            cycles: self.jittered_cycles(noise_z),
            memory_boundedness: self.memory_boundedness,
            occupancy: self.occupancy,
            l1_hit: self.l1_hit,
            l2_hit: self.l2_hit,
            dram_bytes: self.dram_bytes,
            access_bytes: self.access_bytes,
            warp_efficiency: self.warp_efficiency,
            jitter_sigma: self.jitter_sigma,
            warmup_cycles: self.warmup_cycles,
        }
    }
}

/// Times one invocation of `workload` on `config`.
///
/// Pure function of its arguments: the invocation's stored `noise_z` is the
/// only source of randomness, so repeated calls agree and different configs
/// see *correlated* times for the same invocation.
pub fn time_invocation(
    workload: &Workload,
    inv: &Invocation,
    config: &GpuConfig,
    options: SimOptions,
) -> KernelTiming {
    let kernel = workload.kernel_of(inv);
    let ctx = workload.context_of(inv);
    time_kernel(
        kernel,
        ctx,
        inv.work_scale as f64,
        inv.noise_z as f64,
        config,
        options,
    )
}

/// The deterministic core of one invocation's timing (no jitter applied).
pub fn deterministic_of_invocation(
    workload: &Workload,
    inv: &Invocation,
    config: &GpuConfig,
    options: SimOptions,
) -> DeterministicTiming {
    let kernel = workload.kernel_of(inv);
    let ctx = workload.context_of(inv);
    deterministic_timing(kernel, ctx, inv.work_scale as f64, config, options)
}

/// Times one kernel launch directly from its components — the primitive
/// behind [`time_invocation`], also used by the multi-GPU execution-trace
/// simulator where launches are DAG nodes rather than stream entries.
pub fn time_kernel(
    kernel: &gpu_workload::KernelClass,
    ctx: &gpu_workload::RuntimeContext,
    extra_work: f64,
    noise_z: f64,
    config: &GpuConfig,
    options: SimOptions,
) -> KernelTiming {
    deterministic_timing(kernel, ctx, extra_work, config, options).apply_jitter(noise_z)
}

/// The deterministic core of [`time_kernel`]: both rails, caches, occupancy
/// and the jitter CoV — everything except the per-invocation noise draw.
pub fn deterministic_timing(
    kernel: &gpu_workload::KernelClass,
    ctx: &gpu_workload::RuntimeContext,
    extra_work: f64,
    config: &GpuConfig,
    options: SimOptions,
) -> DeterministicTiming {
    let work = ctx.work_scale * extra_work;

    let occ = occupancy(kernel, config);

    // --- Compute rail ---------------------------------------------------
    let warp_efficiency = 1.0 - 0.6 * kernel.mix.branch;
    let thread_instr = kernel.total_instructions() as f64 * work;
    let warp_instr = thread_instr / 32.0 / warp_efficiency;
    let mix = &kernel.mix;
    let weighted_cycles = warp_instr
        * (mix.fp32 / config.fp32_throughput
            + mix.fp16 / config.fp16_throughput
            + mix.int_alu / config.int_throughput
            + (mix.ldst_global + mix.ldst_shared) / config.ldst_throughput
            + mix.branch / config.int_throughput
            + mix.special / config.sfu_throughput);
    let effective_sms = (config.num_sms.min(kernel.grid_dim)) as f64;
    // Latency hiding improves with resident warps, saturating around 12.
    let utilization = (occ.warps_per_sm as f64 / 12.0).clamp(0.1, 1.0);
    let compute_cycles = weighted_cycles / (effective_sms * utilization);

    // --- Memory rail ------------------------------------------------------
    let locality = if options.flush_l2_between_kernels {
        if options.warmup_kernels && ctx.locality_boost > 1.0 {
            1.0 + WARMUP_RESTORE * (ctx.locality_boost - 1.0)
        } else {
            ctx.locality_boost.min(1.0)
        }
    } else {
        ctx.locality_boost
    };
    let footprint = kernel.footprint_bytes as f64 * ctx.footprint_scale * work.max(1e-6);
    let access_bytes = thread_instr * mix.ldst_global * 4.0;
    let (l1_hit, l2_hit, dram_bytes) = if access_bytes > 0.0 {
        let traffic_reuse = (access_bytes / footprint).max(1.0);
        let blocking = kernel.reuse_factor.sqrt();
        let l1_ws = footprint / effective_sms;
        let l1_hit = hit_rate(l1_ws, config.l1_size as f64, locality * blocking, traffic_reuse);
        let post_l1 = miss_bytes(access_bytes, l1_hit);
        let l2_reuse = (post_l1 / footprint).max(1.0);
        let l2_hit = hit_rate(footprint, config.l2_size as f64, locality, l2_reuse);
        let dram_bytes = miss_bytes(post_l1, l2_hit);
        (l1_hit, l2_hit, dram_bytes)
    } else {
        (0.0, 0.0, 0.0)
    };
    let memory_cycles = dram_cycles(dram_bytes, occ.waves, config);

    // --- Combine ----------------------------------------------------------
    let hi = compute_cycles.max(memory_cycles);
    let lo = compute_cycles.min(memory_cycles);
    let deterministic_cycles = config.launch_overhead_cycles + hi + 0.15 * lo;
    let warmup_cycles = if options.warmup_kernels {
        WARMUP_TAX * deterministic_cycles
    } else {
        0.0
    };
    let memory_boundedness = if hi + lo > 0.0 {
        memory_cycles / (compute_cycles + memory_cycles)
    } else {
        0.0
    };

    // --- Jitter CoV -------------------------------------------------------
    // Memory-bound kernels fluctuate more (DRAM contention, row-buffer
    // state); compute-bound ones are stable. Lognormal with unit mean —
    // the draw itself is applied per invocation by `apply_jitter`.
    let jitter_sigma = ctx.jitter_cov * (0.4 + 1.2 * memory_boundedness);

    DeterministicTiming {
        compute_cycles,
        memory_cycles,
        deterministic_cycles,
        memory_boundedness,
        occupancy: occ,
        l1_hit,
        l2_hit,
        dram_bytes,
        access_bytes,
        warp_efficiency,
        jitter_sigma,
        warmup_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_workload::kernel::{InstructionMix, KernelClassBuilder};
    use gpu_workload::{RuntimeContext, SuiteKind, WorkloadBuilder};

    fn workload_with(kernel: gpu_workload::KernelClass, ctx: RuntimeContext) -> Workload {
        let mut b = WorkloadBuilder::new("t", SuiteKind::Custom, 1);
        let id = b.add_kernel(kernel, vec![ctx]);
        b.invoke(id, 0, 1.0);
        b.build()
    }

    fn gemm_like() -> gpu_workload::KernelClass {
        KernelClassBuilder::new("gemm")
            .geometry(256, 256)
            .resources(96, 48 * 1024)
            .instructions(12_000)
            .mix(InstructionMix::compute_bound())
            .memory(32 << 20, 24.0)
            .build()
    }

    fn pool_like() -> gpu_workload::KernelClass {
        KernelClassBuilder::new("pool")
            .geometry(192, 128)
            .resources(24, 0)
            .instructions(600)
            .mix(InstructionMix::memory_bound())
            .memory(48 << 20, 1.2)
            .build()
    }

    fn time_one(w: &Workload, config: &GpuConfig) -> KernelTiming {
        time_invocation(w, &w.invocations()[0], config, SimOptions::default())
    }

    #[test]
    fn pool_is_memory_bound_gemm_is_not() {
        let cfg = GpuConfig::rtx2080();
        let g = time_one(&workload_with(gemm_like(), RuntimeContext::neutral()), &cfg);
        let p = time_one(&workload_with(pool_like(), RuntimeContext::neutral()), &cfg);
        assert!(
            p.memory_boundedness > 0.7,
            "pool beta = {}",
            p.memory_boundedness
        );
        assert!(
            g.memory_boundedness < p.memory_boundedness,
            "gemm beta {} should be below pool beta {}",
            g.memory_boundedness,
            p.memory_boundedness
        );
    }

    #[test]
    fn deterministic_and_positive() {
        let cfg = GpuConfig::rtx2080();
        let w = workload_with(gemm_like(), RuntimeContext::neutral());
        let a = time_one(&w, &cfg);
        let b = time_one(&w, &cfg);
        assert_eq!(a, b);
        assert!(a.cycles > 0.0 && a.cycles.is_finite());
        assert!(a.cycles >= cfg.launch_overhead_cycles * 0.5);
    }

    #[test]
    fn more_work_more_cycles() {
        let cfg = GpuConfig::rtx2080();
        let w1 = workload_with(gemm_like(), RuntimeContext::neutral());
        let w2 = workload_with(gemm_like(), RuntimeContext::neutral().with_work(3.0));
        let t1 = time_one(&w1, &cfg);
        let t2 = time_one(&w2, &cfg);
        assert!(t2.deterministic_cycles > 2.0 * t1.deterministic_cycles);
    }

    /// A memory-bound kernel that re-touches a modest working set many
    /// times — the kind whose DRAM traffic collapses once the set fits in
    /// L2 (stencils, attention over the KV cache).
    fn cache_hungry() -> gpu_workload::KernelClass {
        KernelClassBuilder::new("stencil")
            .geometry(512, 256)
            .resources(24, 0)
            .instructions(2_000)
            .mix(InstructionMix::memory_bound())
            .memory(8 << 20, 1.5)
            .build()
    }

    #[test]
    fn memory_bound_kernel_sensitive_to_cache_size() {
        // The DSE premise: growing L2 speeds the cache-hungry memory-bound
        // kernel by a larger factor than the compute-bound one.
        let base = GpuConfig::macsim_baseline();
        let bigger = base.with_transform(crate::DseTransform::CacheScale(4.0));
        let mem_w = workload_with(cache_hungry(), RuntimeContext::neutral().with_locality(0.8));
        let gemm_w = workload_with(gemm_like(), RuntimeContext::neutral());
        let mem_gain = time_one(&mem_w, &base).deterministic_cycles
            / time_one(&mem_w, &bigger).deterministic_cycles;
        let gemm_gain = time_one(&gemm_w, &base).deterministic_cycles
            / time_one(&gemm_w, &bigger).deterministic_cycles;
        assert!(
            mem_gain > gemm_gain && mem_gain > 1.2,
            "mem gain {mem_gain} vs gemm gain {gemm_gain}"
        );
    }

    #[test]
    fn compute_bound_kernel_sensitive_to_sm_count() {
        let base = GpuConfig::macsim_baseline();
        let bigger = base.with_transform(crate::DseTransform::SmScale(2.0));
        let gemm_w = workload_with(gemm_like(), RuntimeContext::neutral());
        let t_base = time_one(&gemm_w, &base);
        let t_big = time_one(&gemm_w, &bigger);
        assert!(
            t_big.compute_cycles < 0.6 * t_base.compute_cycles,
            "{} vs {}",
            t_big.compute_cycles,
            t_base.compute_cycles
        );
    }

    #[test]
    fn jitter_wider_for_memory_bound() {
        let cfg = GpuConfig::rtx2080();
        let jittery = RuntimeContext::neutral().with_jitter(0.2);
        let p = time_one(&workload_with(pool_like(), jittery), &cfg);
        let g = time_one(&workload_with(gemm_like(), jittery), &cfg);
        assert!(p.jitter_sigma > g.jitter_sigma);
    }

    #[test]
    fn jitter_has_unit_mean() {
        // Average over many draws of z: mean of lognormal(mu=-s^2/2, s) = 1.
        let cfg = GpuConfig::rtx2080();
        let mut b = WorkloadBuilder::new("t", SuiteKind::Custom, 9);
        let id = b.add_kernel(
            pool_like(),
            vec![RuntimeContext::neutral().with_jitter(0.3)],
        );
        for _ in 0..20_000 {
            b.invoke(id, 0, 1.0);
        }
        let w = b.build();
        let det = time_invocation(&w, &w.invocations()[0], &cfg, SimOptions::default())
            .deterministic_cycles;
        let mean: f64 = w
            .invocations()
            .iter()
            .map(|inv| time_invocation(&w, inv, &cfg, SimOptions::default()).cycles)
            .sum::<f64>()
            / w.num_invocations() as f64;
        assert!(
            (mean / det - 1.0).abs() < 0.02,
            "mean/det = {}",
            mean / det
        );
    }

    #[test]
    fn locality_boost_reduces_time() {
        let cfg = GpuConfig::rtx2080();
        let cold = workload_with(pool_like(), RuntimeContext::neutral().with_locality(0.2));
        let warm = workload_with(pool_like(), RuntimeContext::neutral().with_locality(5.0));
        assert!(
            time_one(&warm, &cfg).deterministic_cycles
                < time_one(&cold, &cfg).deterministic_cycles
        );
    }

    #[test]
    fn flush_mode_caps_locality() {
        let cfg = GpuConfig::rtx2080();
        let warm = workload_with(pool_like(), RuntimeContext::neutral().with_locality(5.0));
        let normal = time_one(&warm, &cfg);
        let flushed = time_invocation(
            &warm,
            &warm.invocations()[0],
            &cfg,
            SimOptions {
                flush_l2_between_kernels: true,
                ..SimOptions::default()
            },
        );
        assert!(flushed.deterministic_cycles > normal.deterministic_cycles);

        // A context without residency benefits is unaffected.
        let cold = workload_with(pool_like(), RuntimeContext::neutral().with_locality(0.8));
        let n = time_one(&cold, &cfg);
        let f = time_invocation(
            &cold,
            &cold.invocations()[0],
            &cfg,
            SimOptions {
                flush_l2_between_kernels: true,
                ..SimOptions::default()
            },
        );
        assert_eq!(n.deterministic_cycles, f.deterministic_cycles);
    }

    #[test]
    fn warmup_restores_most_residency_at_a_tax() {
        let cfg = GpuConfig::rtx2080();
        let warm_ctx = RuntimeContext::neutral().with_locality(5.0);
        let w = workload_with(pool_like(), warm_ctx);
        let inv = &w.invocations()[0];
        let normal = time_invocation(&w, inv, &cfg, SimOptions::default());
        let flushed = time_invocation(
            &w,
            inv,
            &cfg,
            SimOptions {
                flush_l2_between_kernels: true,
                ..SimOptions::default()
            },
        );
        let warmed = time_invocation(
            &w,
            inv,
            &cfg,
            SimOptions {
                flush_l2_between_kernels: true,
                warmup_kernels: true,
            },
        );
        // Warmup restores most of the flushed residency...
        assert!(warmed.deterministic_cycles < flushed.deterministic_cycles);
        assert!(warmed.deterministic_cycles >= normal.deterministic_cycles);
        // ...at a simulation-cost tax that is tracked separately.
        assert!(warmed.warmup_cycles > 0.0);
        assert_eq!(normal.warmup_cycles, 0.0);
        // Without residency to restore, warmup changes nothing but the tax.
        let cold = workload_with(pool_like(), RuntimeContext::neutral().with_locality(0.7));
        let cold_inv = &cold.invocations()[0];
        let n = time_invocation(&cold, cold_inv, &cfg, SimOptions::default());
        let wu = time_invocation(
            &cold,
            cold_inv,
            &cfg,
            SimOptions {
                flush_l2_between_kernels: true,
                warmup_kernels: true,
            },
        );
        assert_eq!(wu.deterministic_cycles, n.deterministic_cycles);
        assert!(wu.warmup_cycles > 0.0);
    }

    #[test]
    fn hit_rates_in_range() {
        let cfg = GpuConfig::rtx2080();
        for (k, ctx) in [
            (gemm_like(), RuntimeContext::neutral()),
            (pool_like(), RuntimeContext::neutral().with_locality(0.3)),
        ] {
            let t = time_one(&workload_with(k, ctx), &cfg);
            assert!((0.0..=1.0).contains(&t.l1_hit));
            assert!((0.0..=1.0).contains(&t.l2_hit));
            assert!(t.dram_bytes >= 0.0);
        }
    }
}
