//! Wave-level decomposition of a kernel launch.
//!
//! A launch with more CTAs than fit on the machine executes in *waves*.
//! Intra-kernel sampling (TBPoint, PKA and Photon all carry a variant; the
//! paper's Sec. 7.3 notes it is orthogonal to kernel-level sampling and
//! applicable "with few kernel calls or long-running kernels") estimates a
//! long kernel's time from a subset of its waves. This module exposes the
//! per-wave durations of an invocation, consistent with the kernel total:
//! the waves sum exactly to the invocation's cycles (minus the one-time
//! launch overhead, which is reported separately).

use crate::simulator::Simulator;
use gpu_workload::{Invocation, Workload};

/// Per-wave timing of one invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveProfile {
    /// One-time launch overhead (cycles), outside any wave.
    pub launch_cycles: f64,
    /// Duration of each wave; sums to the invocation total minus launch.
    pub wave_cycles: Vec<f64>,
}

impl WaveProfile {
    /// Total cycles of the invocation (launch + all waves).
    pub fn total(&self) -> f64 {
        self.launch_cycles + self.wave_cycles.iter().sum::<f64>()
    }

    /// Number of waves.
    pub fn num_waves(&self) -> usize {
        self.wave_cycles.len()
    }
}

impl Simulator {
    /// Decomposes an invocation into per-wave durations.
    ///
    /// Wave-to-wave variation is deterministic in `(invocation, wave
    /// index)`: tail waves are partially filled (shorter), and waves carry
    /// small jitter around the mean — the structure intra-kernel samplers
    /// exploit ("stable runtime behaviour" after the first waves).
    pub fn wave_profile(&self, workload: &Workload, inv: &Invocation) -> WaveProfile {
        let timing = self.timing(workload, inv);
        let kernel = workload.kernel_of(inv);
        let waves = timing.occupancy.waves.max(1) as usize;
        let launch_cycles = self.config().launch_overhead_cycles;
        let body = (timing.cycles - launch_cycles).max(1.0);

        if waves == 1 {
            return WaveProfile {
                launch_cycles,
                wave_cycles: vec![body],
            };
        }

        // The last wave covers only the leftover CTAs.
        let slots = timing.occupancy.ctas_per_sm as u64 * self.config().num_sms as u64;
        let full_waves = waves - 1;
        let tail_ctas = kernel.grid_dim as u64 - full_waves as u64 * slots;
        let tail_fraction = (tail_ctas as f64 / slots as f64).clamp(0.05, 1.0);

        // Raw weights: full waves with ±3% deterministic jitter, tail wave
        // scaled by its occupancy.
        let mut weights: Vec<f64> = (0..full_waves)
            .map(|w| 1.0 + 0.03 * wave_noise(inv.noise_z.to_bits(), w as u64))
            .collect();
        weights.push(tail_fraction * (1.0 + 0.03 * wave_noise(inv.noise_z.to_bits(), waves as u64)));
        let sum: f64 = weights.iter().sum();
        let wave_cycles = weights.into_iter().map(|w| body * w / sum).collect();
        WaveProfile {
            launch_cycles,
            wave_cycles,
        }
    }
}

/// Deterministic draw in [-1, 1] from (invocation bits, wave index).
fn wave_noise(bits: u32, wave: u64) -> f64 {
    let mut z = (bits as u64) ^ wave.wrapping_mul(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use gpu_workload::kernel::KernelClassBuilder;
    use gpu_workload::{RuntimeContext, SuiteKind, WorkloadBuilder};

    fn long_kernel_workload() -> Workload {
        let mut b = WorkloadBuilder::new("t", SuiteKind::Custom, 1);
        let id = b.add_kernel(
            KernelClassBuilder::new("long")
                .geometry(4000, 1024) // many waves: 1 CTA/SM by threads
                .resources(32, 0)
                .instructions(50_000)
                .build(),
            vec![RuntimeContext::neutral().with_jitter(0.05)],
        );
        b.invoke(id, 0, 1.0);
        b.build()
    }

    #[test]
    fn waves_sum_to_invocation_total() {
        let w = long_kernel_workload();
        let sim = Simulator::new(GpuConfig::rtx2080());
        let inv = &w.invocations()[0];
        let profile = sim.wave_profile(&w, inv);
        let total = sim.cycles(&w, inv);
        assert!(
            (profile.total() - total).abs() < 1e-6 * total,
            "waves {} vs total {total}",
            profile.total()
        );
        assert!(profile.num_waves() > 10);
    }

    #[test]
    fn single_wave_kernel() {
        let mut b = WorkloadBuilder::new("t", SuiteKind::Custom, 1);
        let id = b.add_kernel(
            KernelClassBuilder::new("small").geometry(8, 128).build(),
            vec![RuntimeContext::neutral()],
        );
        b.invoke(id, 0, 1.0);
        let w = b.build();
        let sim = Simulator::new(GpuConfig::rtx2080());
        let profile = sim.wave_profile(&w, &w.invocations()[0]);
        assert_eq!(profile.num_waves(), 1);
    }

    #[test]
    fn full_waves_are_similar_tail_shorter_or_equal() {
        let w = long_kernel_workload();
        let sim = Simulator::new(GpuConfig::rtx2080());
        let profile = sim.wave_profile(&w, &w.invocations()[0]);
        let full = &profile.wave_cycles[..profile.num_waves() - 1];
        let mean = full.iter().sum::<f64>() / full.len() as f64;
        for &c in full {
            assert!((c - mean).abs() / mean < 0.05, "full waves stable");
        }
        let tail = *profile.wave_cycles.last().expect("has waves");
        assert!(tail <= mean * 1.05);
    }

    #[test]
    fn deterministic() {
        let w = long_kernel_workload();
        let sim = Simulator::new(GpuConfig::rtx2080());
        let inv = &w.invocations()[0];
        assert_eq!(sim.wave_profile(&w, inv), sim.wave_profile(&w, inv));
    }
}
