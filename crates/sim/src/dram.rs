//! DRAM bandwidth roofline.

use crate::config::GpuConfig;

/// Cycles to move `bytes` through DRAM at the config's bandwidth, plus a
/// latency exposure term for the first access of each wave (latency is
/// otherwise hidden by multithreading).
///
/// # Panics
///
/// Panics if `bytes` is negative.
pub fn dram_cycles(bytes: f64, waves: u64, config: &GpuConfig) -> f64 {
    assert!(bytes >= 0.0, "bytes must be nonnegative");
    let bandwidth_term = bytes / config.dram_bytes_per_cycle();
    let latency_term = config.dram_latency_cycles * waves as f64;
    bandwidth_term + latency_term
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_pays_only_latency() {
        let c = GpuConfig::rtx2080();
        let cycles = dram_cycles(0.0, 2, &c);
        assert!((cycles - 2.0 * c.dram_latency_cycles).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_scaling() {
        let c = GpuConfig::rtx2080();
        let one = dram_cycles(1e9, 1, &c);
        let two = dram_cycles(2e9, 1, &c);
        let lat = c.dram_latency_cycles;
        assert!(((two - lat) / (one - lat) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn faster_memory_fewer_cycles() {
        let h100 = GpuConfig::h100();
        let h200 = GpuConfig::h200();
        assert!(dram_cycles(1e9, 1, &h200) < dram_cycles(1e9, 1, &h100));
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_bytes_rejected() {
        dram_cycles(-1.0, 1, &GpuConfig::rtx2080());
    }
}
