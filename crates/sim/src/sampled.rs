//! Sampled simulation: simulate only selected invocations and extrapolate
//! by weighted sum (Sec. 3.5).

use crate::exec::{deterministic_of_invocation, DeterministicTiming};
use crate::simulator::Simulator;
use gpu_workload::Workload;

/// One sampled invocation with the number of workload invocations it
/// represents (its extrapolation weight).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedSample {
    /// Index into the workload's invocation stream.
    pub index: usize,
    /// Extrapolation weight (`N_i / m_i` for cluster sampling, `1/p` for
    /// uniform sampling).
    pub weight: f64,
}

impl WeightedSample {
    /// Creates a sample.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not positive and finite.
    pub fn new(index: usize, weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight > 0.0,
            "sample weight must be positive and finite, got {weight}"
        );
        WeightedSample { index, weight }
    }
}

/// Result of a sampled simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledRun {
    /// Weighted-sum estimate of the full workload's total cycles
    /// (`t_total` of Eq. (1)).
    pub estimated_total_cycles: f64,
    /// Cycles actually simulated (the cost of the sampled simulation; the
    /// denominator of the paper's speedup metric).
    pub simulated_cycles: f64,
    /// Number of sampled invocations.
    pub num_samples: usize,
}

impl SampledRun {
    /// Speedup versus a full simulation of `full_total_cycles`
    /// (paper Sec. 4: ratio of full to sampled cycle counts).
    ///
    /// # Panics
    ///
    /// Panics if either cycle count is nonpositive.
    pub fn speedup(&self, full_total_cycles: f64) -> f64 {
        assert!(full_total_cycles > 0.0, "full cycles must be positive");
        assert!(self.simulated_cycles > 0.0, "sampled cycles must be positive");
        full_total_cycles / self.simulated_cycles
    }

    /// Sampling error versus ground truth, as a fraction (Eq. (1) without
    /// the x100).
    ///
    /// # Panics
    ///
    /// Panics if `full_total_cycles` is nonpositive.
    pub fn error(&self, full_total_cycles: f64) -> f64 {
        assert!(full_total_cycles > 0.0, "full cycles must be positive");
        (self.estimated_total_cycles - full_total_cycles).abs() / full_total_cycles
    }
}

impl Simulator {
    /// Runs a sampled simulation: simulates exactly the invocations in
    /// `samples` and forms the weighted-sum estimate.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or any index is out of range.
    ///
    /// Grouped fast path: the deterministic core is computed lazily once
    /// per invocation group touched by the sample set; each sample then
    /// costs one jitter `exp`. The accumulation order over `samples` is
    /// unchanged, so the result is bit-identical to the per-invocation
    /// reference ([`crate::simulator::reference::run_sampled`]).
    pub fn run_sampled(&self, workload: &Workload, samples: &[WeightedSample]) -> SampledRun {
        assert!(!samples.is_empty(), "sampled simulation needs samples");
        let n = workload.num_invocations();
        let mut groups: Vec<Option<DeterministicTiming>> =
            vec![None; workload.num_invocation_groups()];
        let mut estimated = 0.0;
        let mut simulated = 0.0;
        for s in samples {
            assert!(s.index < n, "sample index {} out of range", s.index);
            let inv = &workload.invocations()[s.index];
            let g = workload.group_of(s.index) as usize;
            let det = groups[g].get_or_insert_with(|| {
                deterministic_of_invocation(workload, inv, self.config(), self.options())
            });
            let cycles = det.jittered_cycles(inv.noise_z as f64);
            estimated += s.weight * cycles;
            // Warmup passes (SimOptions::warmup_kernels) cost simulation
            // time but are excluded from the measured kernel time.
            simulated += cycles + det.warmup_cycles;
        }
        SampledRun {
            estimated_total_cycles: estimated,
            simulated_cycles: simulated,
            num_samples: samples.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use gpu_workload::suites::rodinia_suite;

    #[test]
    fn sampling_everything_with_unit_weights_is_exact() {
        let w = &rodinia_suite(1)[0];
        let sim = Simulator::new(GpuConfig::rtx2080());
        let full = sim.run_full(w);
        let samples: Vec<WeightedSample> = (0..w.num_invocations())
            .map(|i| WeightedSample::new(i, 1.0))
            .collect();
        let run = sim.run_sampled(w, &samples);
        assert!((run.estimated_total_cycles - full.total_cycles).abs() < 1e-6 * full.total_cycles);
        assert!(run.error(full.total_cycles) < 1e-9);
        assert!((run.speedup(full.total_cycles) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn half_sampling_with_weight_two() {
        let w = &rodinia_suite(1)[3]; // cfd: homogeneous repeated kernels
        let sim = Simulator::new(GpuConfig::rtx2080());
        let full = sim.run_full(w);
        let samples: Vec<WeightedSample> = (0..w.num_invocations())
            .step_by(2)
            .map(|i| WeightedSample::new(i, 2.0))
            .collect();
        let run = sim.run_sampled(w, &samples);
        // Every-other-invocation sampling of a stationary stream is close.
        assert!(run.error(full.total_cycles) < 0.05);
        let speedup = run.speedup(full.total_cycles);
        assert!(speedup > 1.5 && speedup < 2.5, "speedup = {speedup}");
    }

    #[test]
    fn speedup_reflects_cycles_not_count() {
        let suite = rodinia_suite(1);
        let h = suite.iter().find(|w| w.name() == "heartwall").expect("heartwall");
        let sim = Simulator::new(GpuConfig::rtx2080());
        let full = sim.run_full(h);
        // Sampling only the tiny first kernel gives an enormous "speedup"
        // (and an enormous error) — exactly the PKA/Sieve failure mode.
        let run = sim.run_sampled(
            h,
            &[WeightedSample::new(0, h.num_invocations() as f64)],
        );
        assert!(run.speedup(full.total_cycles) > 1000.0);
        assert!(run.error(full.total_cycles) > 0.99);
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn empty_samples_rejected() {
        let w = &rodinia_suite(1)[0];
        let sim = Simulator::new(GpuConfig::rtx2080());
        sim.run_sampled(w, &[]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let w = &rodinia_suite(1)[0];
        let sim = Simulator::new(GpuConfig::rtx2080());
        sim.run_sampled(w, &[WeightedSample::new(usize::MAX, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn bad_weight_rejected() {
        WeightedSample::new(0, f64::NAN);
    }
}
