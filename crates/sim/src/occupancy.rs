//! SM occupancy: how many CTAs of a kernel fit on one SM, and how many
//! waves the launch takes.

use crate::config::GpuConfig;
use gpu_workload::KernelClass;

/// Occupancy analysis of one kernel on one config.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Resident CTAs per SM (>= 1; a kernel too large for the SM still runs
    /// one CTA at a time, as real hardware serializes).
    pub ctas_per_sm: u32,
    /// Resident warps per SM.
    pub warps_per_sm: u32,
    /// Fraction of the SM's warp slots occupied, in `(0, 1]`.
    pub occupancy: f64,
    /// Number of waves needed to run the whole grid.
    pub waves: u64,
}

/// Computes occupancy for `kernel` on `config`.
///
/// The limiters are the classical four: max CTAs per SM, max threads per
/// SM, register file, and shared memory.
pub fn occupancy(kernel: &KernelClass, config: &GpuConfig) -> Occupancy {
    let by_ctas = config.max_ctas_per_sm;
    let by_threads = config.max_threads_per_sm / kernel.block_dim.max(1);
    let regs_per_cta = kernel.regs_per_thread.max(1) * kernel.block_dim;
    let by_regs = config.regs_per_sm / regs_per_cta.max(1);
    let by_shared = config
        .shared_mem_per_sm
        .checked_div(kernel.shared_mem_per_cta)
        .unwrap_or(u32::MAX);
    let ctas_per_sm = by_ctas.min(by_threads).min(by_regs).min(by_shared).max(1);
    let warps_per_sm = ctas_per_sm * kernel.warps_per_cta();
    let max_warps = (config.max_threads_per_sm / 32).max(1);
    let occupancy = (warps_per_sm as f64 / max_warps as f64).min(1.0);
    let slots = ctas_per_sm as u64 * config.num_sms as u64;
    let waves = (kernel.grid_dim as u64).div_ceil(slots);
    Occupancy {
        ctas_per_sm,
        warps_per_sm,
        occupancy,
        waves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_workload::kernel::KernelClassBuilder;

    fn config() -> GpuConfig {
        GpuConfig::rtx2080()
    }

    #[test]
    fn small_kernel_fits_many_ctas() {
        let k = KernelClassBuilder::new("small")
            .geometry(46, 64)
            .resources(16, 0)
            .build();
        let o = occupancy(&k, &config());
        assert!(o.ctas_per_sm >= 8);
        assert_eq!(o.waves, 1);
    }

    #[test]
    fn register_limited() {
        let k = KernelClassBuilder::new("fat")
            .geometry(1000, 1024)
            .resources(64, 0)
            .build();
        let o = occupancy(&k, &config());
        // 64 regs * 1024 threads = 65536 = whole register file -> 1 CTA.
        assert_eq!(o.ctas_per_sm, 1);
    }

    #[test]
    fn shared_memory_limited() {
        let k = KernelClassBuilder::new("shm")
            .geometry(100, 128)
            .resources(16, 32 * 1024)
            .build();
        let o = occupancy(&k, &config());
        assert_eq!(o.ctas_per_sm, 2); // 64KB SM / 32KB per CTA
    }

    #[test]
    fn oversized_cta_still_runs() {
        let k = KernelClassBuilder::new("huge")
            .geometry(10, 1024)
            .resources(255, 64 * 1024)
            .build();
        let o = occupancy(&k, &config());
        assert_eq!(o.ctas_per_sm, 1);
        assert!(o.occupancy > 0.0);
    }

    #[test]
    fn waves_round_up() {
        let k = KernelClassBuilder::new("wavey")
            .geometry(100, 1024)
            .resources(32, 0)
            .build();
        let o = occupancy(&k, &config());
        // block 1024 -> 1 CTA/SM by threads; 46 SMs -> ceil(100/46) = 3.
        assert_eq!(o.ctas_per_sm, 1);
        assert_eq!(o.waves, 3);
    }

    #[test]
    fn more_sms_fewer_waves() {
        let k = KernelClassBuilder::new("k")
            .geometry(4096, 256)
            .resources(32, 8 * 1024)
            .build();
        let base = occupancy(&k, &GpuConfig::macsim_baseline());
        let big = occupancy(
            &k,
            &GpuConfig::macsim_baseline().with_transform(crate::DseTransform::SmScale(2.0)),
        );
        assert!(big.waves <= base.waves);
        assert!(big.waves >= base.waves / 2);
    }

    #[test]
    fn occupancy_in_unit_interval() {
        let k = KernelClassBuilder::new("k").geometry(64, 96).build();
        let o = occupancy(&k, &config());
        assert!(o.occupancy > 0.0 && o.occupancy <= 1.0);
    }
}
