//! Multi-GPU execution-trace simulation (the paper's Sec. 6.2 extension).
//!
//! Simulates a Chakra-style [`ExecutionTrace`]: compute nodes run on their
//! GPU through the same per-kernel timing model as single-GPU simulation;
//! collectives and point-to-point transfers run over the inter-GPU links
//! with a bandwidth/latency model (ring all-reduce cost
//! `2(n-1)/n * bytes / link_bw`). Scheduling is list scheduling in
//! topological order: a node starts when its dependencies have finished
//! *and* the devices it occupies are free.

use crate::config::GpuConfig;
use crate::exec::{time_kernel, SimOptions};
use gpu_workload::chakra::{EtOp, ExecutionTrace};

/// Configuration of a multi-GPU node.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Per-GPU configuration.
    pub gpu: GpuConfig,
    /// Inter-GPU link bandwidth (GB/s, per direction; NVLink-class).
    pub link_bandwidth_gbps: f64,
    /// Link latency in GPU core cycles.
    pub link_latency_cycles: f64,
    /// Jitter CoV of communication operations (congestion, stragglers).
    pub comm_jitter_cov: f64,
}

impl ClusterConfig {
    /// An H100 NVLink-class node.
    pub fn h100_nvlink() -> Self {
        ClusterConfig {
            gpu: GpuConfig::h100(),
            link_bandwidth_gbps: 450.0,
            link_latency_cycles: 4_000.0,
            comm_jitter_cov: 0.08,
        }
    }

    /// Validates ranges.
    ///
    /// # Panics
    ///
    /// Panics on nonpositive bandwidth or out-of-range jitter.
    pub fn validate(&self) {
        self.gpu.validate();
        assert!(self.link_bandwidth_gbps > 0.0, "zero link bandwidth");
        assert!(self.link_latency_cycles >= 0.0, "negative link latency");
        assert!(
            (0.0..=1.0).contains(&self.comm_jitter_cov),
            "comm jitter CoV out of range"
        );
    }

    fn link_bytes_per_cycle(&self) -> f64 {
        self.link_bandwidth_gbps / self.gpu.clock_ghz
    }
}

/// Result of simulating a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRun {
    /// End-to-end completion time (cycles) — the critical-path quantity a
    /// multi-GPU simulator reports.
    pub makespan_cycles: f64,
    /// Sum of all node durations (device-time; the analogue of the
    /// single-GPU total the samplers estimate).
    pub total_device_cycles: f64,
    /// Per-node durations in node order.
    pub durations: Vec<f64>,
    /// Per-node start times in node order.
    pub starts: Vec<f64>,
}

/// Simulates a trace on a cluster.
///
/// # Panics
///
/// Panics if the config is invalid or the trace is empty.
pub fn simulate_trace(trace: &ExecutionTrace, config: &ClusterConfig) -> TraceRun {
    config.validate();
    assert!(!trace.is_empty(), "cannot simulate an empty trace");
    let durations = node_durations(trace, config);
    schedule(trace, &durations)
}

/// Computes every node's duration without scheduling (the "profile" a
/// kernel-level tracer would collect).
pub fn node_durations(trace: &ExecutionTrace, config: &ClusterConfig) -> Vec<f64> {
    trace
        .nodes()
        .iter()
        .map(|node| node_duration(trace, config, &node.op, node.noise_z as f64))
        .collect()
}

/// Duration of a single node.
pub fn node_duration(
    trace: &ExecutionTrace,
    config: &ClusterConfig,
    op: &EtOp,
    noise_z: f64,
) -> f64 {
    match *op {
        EtOp::Compute {
            kernel,
            context,
            work_scale,
        } => {
            let k = &trace.kernels()[kernel.index()];
            let ctx = &trace.contexts_of(kernel)[context as usize];
            time_kernel(
                k,
                ctx,
                work_scale as f64,
                noise_z,
                &config.gpu,
                SimOptions::default(),
            )
            .cycles
        }
        EtOp::AllReduce { bytes } => {
            let n = trace.num_gpus() as f64;
            let transfer = 2.0 * (n - 1.0) / n * bytes as f64 / config.link_bytes_per_cycle();
            comm_jitter(transfer + config.link_latency_cycles * 2.0, config, noise_z)
        }
        EtOp::P2p { bytes, .. } => {
            let transfer = bytes as f64 / config.link_bytes_per_cycle();
            comm_jitter(transfer + config.link_latency_cycles, config, noise_z)
        }
    }
}

fn comm_jitter(base: f64, config: &ClusterConfig, z: f64) -> f64 {
    let s = config.comm_jitter_cov;
    base * (s * z - s * s / 2.0).exp()
}

/// List scheduling with given durations. Exposed separately so estimated
/// durations (from a sampled plan) can be scheduled the same way.
///
/// # Panics
///
/// Panics if `durations.len() != trace.len()`.
pub fn schedule(trace: &ExecutionTrace, durations: &[f64]) -> TraceRun {
    assert_eq!(durations.len(), trace.len(), "one duration per node");
    let num_gpus = trace.num_gpus() as usize;
    let mut gpu_free = vec![0.0f64; num_gpus];
    let mut finish = vec![0.0f64; trace.len()];
    let mut starts = vec![0.0f64; trace.len()];
    for (i, node) in trace.nodes().iter().enumerate() {
        let deps_ready = node
            .deps
            .iter()
            .map(|&d| finish[d as usize])
            .fold(0.0f64, f64::max);
        let devices: Vec<usize> = match node.op {
            EtOp::Compute { .. } => vec![node.gpu as usize],
            EtOp::AllReduce { .. } => (0..num_gpus).collect(),
            EtOp::P2p { src, dst, .. } => vec![src as usize, dst as usize],
        };
        let device_ready = devices
            .iter()
            .map(|&g| gpu_free[g])
            .fold(0.0f64, f64::max);
        let start = deps_ready.max(device_ready);
        let end = start + durations[i];
        for &g in &devices {
            gpu_free[g] = end;
        }
        starts[i] = start;
        finish[i] = end;
    }
    TraceRun {
        makespan_cycles: finish.iter().copied().fold(0.0, f64::max),
        total_device_cycles: durations.iter().sum(),
        durations: durations.to_vec(),
        starts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_workload::chakra::data_parallel_training;

    fn cluster() -> ClusterConfig {
        ClusterConfig::h100_nvlink()
    }

    #[test]
    fn makespan_bounded_by_device_time() {
        let t = data_parallel_training("ddp", 4, 6, 2, 3);
        let run = simulate_trace(&t, &cluster());
        assert!(run.makespan_cycles > 0.0);
        // Makespan can't exceed serial execution of everything...
        assert!(run.makespan_cycles <= run.total_device_cycles + 1e-6);
        // ...and can't beat the per-GPU lower bound (its own serial work).
        let per_gpu_work: f64 = run
            .durations
            .iter()
            .zip(t.nodes())
            .filter(|(_, n)| matches!(n.op, EtOp::Compute { .. }) && n.gpu == 0)
            .map(|(d, _)| d)
            .sum();
        assert!(run.makespan_cycles >= per_gpu_work);
    }

    #[test]
    fn dependencies_respected() {
        let t = data_parallel_training("ddp", 2, 4, 1, 3);
        let run = simulate_trace(&t, &cluster());
        for (i, node) in t.nodes().iter().enumerate() {
            for &d in &node.deps {
                let dep_end = run.starts[d as usize] + run.durations[d as usize];
                assert!(
                    run.starts[i] >= dep_end - 1e-6,
                    "node {i} started before dep {d} finished"
                );
            }
        }
    }

    #[test]
    fn devices_never_double_booked() {
        let t = data_parallel_training("ddp", 3, 4, 2, 5);
        let run = simulate_trace(&t, &cluster());
        // Collect per-GPU intervals of compute nodes and check no overlap.
        for g in 0..3u8 {
            let mut intervals: Vec<(f64, f64)> = t
                .nodes()
                .iter()
                .enumerate()
                .filter(|(_, n)| n.gpu == g || n.op.is_communication())
                .map(|(i, _)| (run.starts[i], run.starts[i] + run.durations[i]))
                .collect();
            intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in intervals.windows(2) {
                assert!(
                    w[1].0 >= w[0].1 - 1e-6,
                    "GPU {g} double-booked: {:?}",
                    w
                );
            }
        }
    }

    #[test]
    fn communication_accounts_for_the_multi_gpu_overhead() {
        // Same per-GPU compute; the 2-GPU makespan exceeds the 1-GPU one
        // only by (at most) the communication time it added.
        let t2 = data_parallel_training("ddp", 2, 6, 2, 3);
        let run2 = simulate_trace(&t2, &cluster());
        let t1 = data_parallel_training("solo", 1, 6, 2, 3);
        let run1 = simulate_trace(&t1, &cluster());
        assert!(run2.makespan_cycles > run1.makespan_cycles);
        let comm_total: f64 = t2
            .nodes()
            .iter()
            .zip(&run2.durations)
            .filter(|(n, _)| n.op.is_communication())
            .map(|(_, d)| d)
            .sum();
        assert!(
            run2.makespan_cycles <= run1.makespan_cycles * 1.2 + comm_total,
            "makespan2 {} vs makespan1 {} + comm {comm_total}",
            run2.makespan_cycles,
            run1.makespan_cycles
        );
    }

    #[test]
    fn faster_links_shrink_allreduce() {
        let t = data_parallel_training("ddp", 4, 4, 1, 3);
        let slow = simulate_trace(&t, &cluster());
        let mut fast_cfg = cluster();
        fast_cfg.link_bandwidth_gbps *= 4.0;
        let fast = simulate_trace(&t, &fast_cfg);
        assert!(fast.makespan_cycles < slow.makespan_cycles);
    }

    #[test]
    fn deterministic() {
        let t = data_parallel_training("ddp", 2, 3, 2, 7);
        assert_eq!(simulate_trace(&t, &cluster()), simulate_trace(&t, &cluster()));
    }

    #[test]
    #[should_panic(expected = "one duration per node")]
    fn mismatched_durations_rejected() {
        let t = data_parallel_training("ddp", 2, 2, 1, 1);
        schedule(&t, &[1.0]);
    }
}
