//! Out-of-core ground truth: the pipelined generate→simulate→fold
//! executor.
//!
//! [`run_streaming_total`] computes the same number as
//! [`Simulator::run_full_total`] without ever holding a whole workload in
//! memory. A producer thread emits the block stream (a streaming suite
//! generator, or a columnar store read) into a bounded channel; the
//! calling thread consumes blocks in stream order, computing each newly
//! seen `(kernel, context, work_scale)` group's deterministic timing once
//! (groups within a block in parallel — they are independent, so thread
//! count cannot reach the result) and folding the per-invocation jittered
//! cycles serially, left to right.
//!
//! Determinism argument, in the same terms as `stem-par`'s:
//!
//! 1. The deterministic timing of a group depends only on the frozen
//!    tables and the group key, never on *when* the group was first seen
//!    or which thread computed it.
//! 2. The jittered-cycles fold runs on one thread in stream order —
//!    bit-identical to the in-memory fold of `run_full_total`, whose
//!    group values are the same f64s.
//! 3. The channel bound only throttles the producer; it cannot reorder
//!    blocks (`std::sync::mpsc` is FIFO).
//!
//! The consumer also re-folds the stream's content fingerprint and
//! cross-checks it against the producer's [`StreamSummary`], so a total
//! can never silently describe different content than the producer
//! claims to have sent.

use crate::exec::{deterministic_of_invocation, DeterministicTiming};
use crate::simulator::Simulator;
use gpu_workload::stream::{BlockSink, ChannelSink, SinkError, StreamItem, StreamSummary};
use gpu_workload::{FingerprintFold, Invocation, KernelId, Workload, WorkloadSource};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Mutex;

/// Default bound on undelivered blocks in the pipeline channel. Peak
/// memory of the executor is roughly `(DEFAULT_CHANNEL_BLOCKS + 2)`
/// blocks (queued + one at each end).
pub const DEFAULT_CHANNEL_BLOCKS: usize = 4;

/// What a streaming ground-truth run produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingTotal {
    /// Ground-truth total cycles — bit-identical to
    /// [`Simulator::run_full_total`] over the materialized equivalent.
    pub total_cycles: f64,
    /// Invocations folded.
    pub invocations: u64,
    /// Content fingerprint of the folded stream, cross-checked against
    /// the producer's summary (and equal to
    /// [`Workload::fingerprint`](gpu_workload::Workload::fingerprint) of
    /// the materialized equivalent).
    pub fingerprint: u64,
    /// Distinct `(kernel, context, work_scale)` groups seen.
    pub groups: usize,
}

/// Why a streaming run failed. `E` is the producer's error type
/// ([`SinkError`] for generation, `ColStoreError` for store reads).
#[derive(Debug, Clone, PartialEq)]
pub enum StreamRunError<E> {
    /// The producer failed (generation sink error, store corruption...).
    Produce(E),
    /// A block arrived before the frozen tables.
    MissingTables,
    /// The tables arrived twice.
    DuplicateTables,
    /// An invocation referenced a kernel/context outside the frozen
    /// tables or carried a non-finite work scale. The fold stops rather
    /// than time garbage.
    InvalidInvocation {
        /// Stream index of the offending invocation.
        index: u64,
        /// What was wrong with it.
        message: String,
    },
    /// The consumer's re-folded fingerprint disagrees with the
    /// producer's summary — the pipeline delivered different content
    /// than the producer claims to have sent.
    FingerprintMismatch {
        /// Fingerprint the producer reported.
        expected: u64,
        /// Fingerprint the consumer folded.
        found: u64,
    },
    /// The producer finished without reporting a summary (it was
    /// cancelled mid-stream).
    MissingSummary,
}

impl<E: std::fmt::Display> std::fmt::Display for StreamRunError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamRunError::Produce(e) => write!(f, "stream producer failed: {e}"),
            StreamRunError::MissingTables => {
                f.write_str("block stream sent invocations before its tables")
            }
            StreamRunError::DuplicateTables => f.write_str("block stream sent tables twice"),
            StreamRunError::InvalidInvocation { index, message } => {
                write!(f, "invalid invocation at stream index {index}: {message}")
            }
            StreamRunError::FingerprintMismatch { expected, found } => write!(
                f,
                "stream fingerprint mismatch: producer reported {expected:016x}, \
                 consumer folded {found:016x}"
            ),
            StreamRunError::MissingSummary => {
                f.write_str("stream producer finished without a summary")
            }
        }
    }
}

impl<E: std::fmt::Display + std::fmt::Debug> std::error::Error for StreamRunError<E> {}

/// Serial in-stream-order fold state of the consumer.
struct StreamFold<'a> {
    sim: &'a Simulator,
    par: stem_par::Parallelism,
    skeleton: Option<Workload>,
    memo: HashMap<(u32, u16, u32), DeterministicTiming>,
    fingerprint: FingerprintFold,
    total: f64,
    count: u64,
}

impl<'a> StreamFold<'a> {
    fn new(sim: &'a Simulator, par: stem_par::Parallelism) -> Self {
        StreamFold {
            sim,
            par,
            skeleton: None,
            memo: HashMap::new(),
            fingerprint: FingerprintFold::new(),
            total: 0.0,
            count: 0,
        }
    }

    fn tables<E>(&mut self, skeleton: Workload) -> Result<(), StreamRunError<E>> {
        if self.skeleton.is_some() {
            return Err(StreamRunError::DuplicateTables);
        }
        let contexts: Vec<_> = (0..skeleton.kernels().len())
            .map(|k| skeleton.contexts_of(KernelId(k as u32)).to_vec())
            .collect();
        self.fingerprint.eat_header(
            skeleton.name(),
            skeleton.suite(),
            skeleton.kernels(),
            &contexts,
        );
        self.skeleton = Some(skeleton);
        Ok(())
    }

    fn block<E>(&mut self, invocations: Vec<Invocation>) -> Result<(), StreamRunError<E>> {
        let Some(skeleton) = self.skeleton.as_ref() else {
            return Err(StreamRunError::MissingTables);
        };
        // Validate the whole block before timing any of it: a stream that
        // escaped checksumming must yield a typed error, never garbage
        // cycles or an index panic.
        for (offset, inv) in invocations.iter().enumerate() {
            let index = self.count + offset as u64;
            if inv.kernel.index() >= skeleton.kernels().len() {
                return Err(StreamRunError::InvalidInvocation {
                    index,
                    message: format!("kernel id {} out of range", inv.kernel.index()),
                });
            }
            if (inv.context as usize) >= skeleton.contexts_of(inv.kernel).len() {
                return Err(StreamRunError::InvalidInvocation {
                    index,
                    message: format!("context {} out of range for {}", inv.context, inv.kernel),
                });
            }
            if !inv.work_scale.is_finite() || inv.work_scale <= 0.0 {
                return Err(StreamRunError::InvalidInvocation {
                    index,
                    message: format!("work scale {} not finite-positive", inv.work_scale),
                });
            }
        }
        // Deterministic cores for groups first seen in this block, in
        // first-appearance order. Each core depends only on the tables
        // and the group key, so computing them in parallel (and in
        // whatever block they first appear) cannot change their values.
        let mut fresh: Vec<(u32, u16, u32)> = Vec::new();
        let mut representatives: Vec<&Invocation> = Vec::new();
        for inv in &invocations {
            let key = (inv.kernel.0, inv.context, inv.work_scale.to_bits());
            if !self.memo.contains_key(&key) && !fresh.contains(&key) {
                fresh.push(key);
                representatives.push(inv);
            }
        }
        let timings = stem_par::par_map_indexed(self.par, &representatives, |_, inv| {
            deterministic_of_invocation(skeleton, inv, self.sim.config(), self.sim.options())
        });
        for (key, timing) in fresh.into_iter().zip(timings) {
            self.memo.insert(key, timing);
        }
        // Serial, stream-order jitter fold: bit-identical to the
        // in-memory `run_full_total` loop.
        for inv in &invocations {
            let key = (inv.kernel.0, inv.context, inv.work_scale.to_bits());
            let Some(timing) = self.memo.get(&key) else {
                return Err(StreamRunError::InvalidInvocation {
                    index: self.count,
                    message: "group timing missing after precompute".to_string(),
                });
            };
            self.fingerprint.eat_invocation(inv);
            self.total += timing.jittered_cycles(inv.noise_z as f64);
            self.count += 1;
        }
        Ok(())
    }
}

/// Runs the pipelined generate→simulate→fold executor over an arbitrary
/// block-stream producer. `produce` runs on its own thread and pushes
/// tables + blocks through a [`BlockSink`]; at most `channel_blocks`
/// undelivered items sit in the channel, so peak memory stays flat no
/// matter how long the stream is.
///
/// # Errors
///
/// [`StreamRunError`] — the producer's own failure, a malformed stream,
/// or a producer/consumer fingerprint disagreement.
///
/// # Panics
///
/// Panics if `channel_blocks` is zero.
pub fn run_streaming_total<E, P>(
    sim: &Simulator,
    par: stem_par::Parallelism,
    channel_blocks: usize,
    produce: P,
) -> Result<StreamingTotal, StreamRunError<E>>
where
    E: Send,
    P: FnOnce(&mut dyn BlockSink) -> Result<StreamSummary, E> + Send,
{
    let summary_cell: Mutex<Option<StreamSummary>> = Mutex::new(None);
    let mut fold = StreamFold::new(sim, par);
    let piped = stem_par::pipelined_fold(
        channel_blocks,
        |tx| {
            let mut sink = ChannelSink::new(tx);
            match produce(&mut sink) {
                Ok(summary) => {
                    if let Ok(mut cell) = summary_cell.lock() {
                        *cell = Some(summary);
                    }
                    Ok(())
                }
                Err(e) => Err(StreamRunError::Produce(e)),
            }
        },
        |item| match item {
            StreamItem::Tables(skeleton) => fold.tables(skeleton),
            StreamItem::Block(invocations) => fold.block(invocations),
        },
    );
    piped?;
    let summary = match summary_cell.lock() {
        Ok(mut cell) => cell.take(),
        Err(_) => None,
    };
    let Some(summary) = summary else {
        return Err(StreamRunError::MissingSummary);
    };
    let fingerprint = fold.fingerprint.finish();
    if fingerprint != summary.fingerprint || fold.count != summary.invocations {
        return Err(StreamRunError::FingerprintMismatch {
            expected: summary.fingerprint,
            found: fingerprint,
        });
    }
    Ok(StreamingTotal {
        total_cycles: fold.total,
        invocations: fold.count,
        fingerprint,
        groups: fold.memo.len(),
    })
}

/// Streaming ground truth of a generated workload: runs the source's
/// emit body on the producer thread, cutting blocks of `block_len`.
/// Bit-identical to `run_full_total` of `source.materialize()` at every
/// thread count.
///
/// # Errors
///
/// [`StreamRunError`] over the generation [`SinkError`].
pub fn source_total(
    sim: &Simulator,
    par: stem_par::Parallelism,
    source: &WorkloadSource,
    block_len: usize,
    channel_blocks: usize,
) -> Result<StreamingTotal, StreamRunError<SinkError>> {
    run_streaming_total(sim, par, channel_blocks, |sink| {
        source.stream(sink, block_len)
    })
}

/// Streaming ground truth of an already-materialized workload — replays
/// it as a block stream through the pipelined executor. Bit-identical to
/// [`Simulator::run_full_total`] at every thread count; the campaign and
/// `Pipeline` ground-truth paths run through here, so the streamed
/// executor is the code under test everywhere totals are produced.
///
/// # Errors
///
/// [`StreamRunError`] — only reachable for a hand-built workload whose
/// invocations escape [`gpu_workload::Workload`]'s construction checks
/// (e.g. a non-finite work scale).
pub fn workload_total(
    sim: &Simulator,
    par: stem_par::Parallelism,
    workload: &Workload,
    block_len: usize,
    channel_blocks: usize,
) -> Result<StreamingTotal, StreamRunError<SinkError>> {
    run_streaming_total(sim, par, channel_blocks, |sink| {
        workload.stream_blocks(sink, block_len)
    })
}

/// Streaming ground truth straight off a columnar invocation store:
/// blocks are read, checksummed and decoded on the producer thread and
/// timed here, so peak memory stays a few blocks even for paper-scale
/// stores.
///
/// # Errors
///
/// [`StreamRunError`] over `ColStoreError` — corrupt stores quarantine
/// and surface typed errors, never garbage cycles.
pub fn store_total(
    sim: &Simulator,
    par: stem_par::Parallelism,
    storage: &dyn stem_storage::Storage,
    dir: &Path,
    channel_blocks: usize,
) -> Result<StreamingTotal, StreamRunError<gpu_workload::ColStoreError>> {
    run_streaming_total(sim, par, channel_blocks, |sink| {
        gpu_workload::stream_store(storage, dir, sink)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use gpu_workload::suites::rodinia_sources;
    use gpu_workload::SuiteKind;

    fn sim() -> Simulator {
        Simulator::new(GpuConfig::rtx2080())
    }

    #[test]
    fn streamed_total_is_bit_identical_to_in_memory() {
        let sim = sim();
        for source in rodinia_sources(7).iter().take(4) {
            let reference = sim.run_full_total(&source.materialize(), stem_par::Parallelism::serial());
            for threads in [1usize, 4] {
                let par = stem_par::Parallelism::with_threads(threads);
                let got = source_total(&sim, par, source, 256, 2).expect("stream");
                assert_eq!(
                    got.total_cycles.to_bits(),
                    reference.to_bits(),
                    "{} at {threads} threads",
                    source.name()
                );
            }
        }
    }

    #[test]
    fn summary_matches_materialized_fingerprint() {
        let sim = sim();
        let sources = rodinia_sources(9);
        let source = &sources[0];
        let w = source.materialize();
        let got = source_total(&sim, stem_par::Parallelism::serial(), source, 128, 2)
            .expect("stream");
        assert_eq!(got.fingerprint, w.fingerprint());
        assert_eq!(got.invocations, w.num_invocations() as u64);
        assert_eq!(got.groups, w.num_invocation_groups());
    }

    #[test]
    fn workload_total_replays_in_memory_workloads() {
        let sim = sim();
        let w = rodinia_sources(5)[2].materialize();
        let reference = sim.run_full_total(&w, stem_par::Parallelism::serial());
        for threads in [1usize, 4] {
            let par = stem_par::Parallelism::with_threads(threads);
            let got = workload_total(&sim, par, &w, 128, 2).expect("stream");
            assert_eq!(got.total_cycles.to_bits(), reference.to_bits());
            assert_eq!(got.fingerprint, w.fingerprint());
        }
    }

    #[test]
    fn block_before_tables_is_typed_error() {
        let sim = sim();
        let result: Result<StreamingTotal, StreamRunError<SinkError>> =
            run_streaming_total(&sim, stem_par::Parallelism::serial(), 2, |sink| {
                sink.block(&[Invocation::with_work(KernelId(0), 0, 1.0, 0.0)])?;
                Ok(StreamSummary {
                    fingerprint: 0,
                    invocations: 1,
                })
            });
        assert_eq!(result, Err(StreamRunError::MissingTables));
    }

    #[test]
    fn out_of_range_invocation_is_typed_error_not_panic() {
        let sim = sim();
        let sources = rodinia_sources(3);
        let skeleton = {
            let w = sources[0].materialize();
            Workload::new(
                w.name().to_string(),
                SuiteKind::Rodinia,
                w.kernels().to_vec(),
                (0..w.kernels().len())
                    .map(|k| w.contexts_of(KernelId(k as u32)).to_vec())
                    .collect(),
                Vec::new(),
            )
        };
        let bogus = Invocation::with_work(KernelId(99), 0, 1.0, 0.0);
        let result: Result<StreamingTotal, StreamRunError<SinkError>> =
            run_streaming_total(&sim, stem_par::Parallelism::serial(), 2, move |sink| {
                sink.tables(&skeleton)?;
                sink.block(&[bogus])?;
                Ok(StreamSummary {
                    fingerprint: 0,
                    invocations: 1,
                })
            });
        assert!(matches!(
            result,
            Err(StreamRunError::InvalidInvocation { index: 0, .. })
        ));
    }

    #[test]
    fn lying_summary_is_rejected() {
        let sim = sim();
        let sources = rodinia_sources(3);
        let source = &sources[0];
        let honest = source_total(&sim, stem_par::Parallelism::serial(), source, 128, 2)
            .expect("stream");
        let result: Result<StreamingTotal, StreamRunError<SinkError>> =
            run_streaming_total(&sim, stem_par::Parallelism::serial(), 2, |sink| {
                let mut summary = source.stream(sink, 128)?;
                summary.fingerprint ^= 1;
                Ok(summary)
            });
        assert_eq!(
            result,
            Err(StreamRunError::FingerprintMismatch {
                expected: honest.fingerprint ^ 1,
                found: honest.fingerprint,
            })
        );
    }
}
