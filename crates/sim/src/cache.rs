//! Capacity-based cache hit-rate model.
//!
//! A kernel-level model does not track individual lines; instead the hit
//! rate follows the classical capacity curve: of the traffic that *could*
//! hit (everything beyond each byte's cold first touch), the fraction that
//! actually hits grows with the ratio of effective cache capacity to the
//! kernel's working set. Contexts modulate the effective capacity through
//! their `locality_boost` (producer-consumer L2 residency boosts it above
//! 1, random embedding gathers push it far below 1).

/// Hit rate of a cache level.
///
/// * `working_set` — bytes the kernel touches (per partition sharing the
///   cache: per SM for L1, whole GPU for L2).
/// * `capacity` — physical capacity in bytes.
/// * `locality_boost` — context multiplier on effective capacity.
/// * `reuse_factor` — average touches per byte (>= 1); the cold first touch
///   can never hit, bounding the hit rate by `1 - 1/reuse`.
///
/// Returns a value in `[0, 1 - 1/reuse]`.
///
/// # Panics
///
/// Panics if `working_set <= 0`, `capacity <= 0`, `locality_boost <= 0`, or
/// `reuse_factor < 1`.
pub fn hit_rate(working_set: f64, capacity: f64, locality_boost: f64, reuse_factor: f64) -> f64 {
    assert!(working_set > 0.0, "working set must be positive");
    assert!(capacity > 0.0, "capacity must be positive");
    assert!(locality_boost > 0.0, "locality boost must be positive");
    assert!(reuse_factor >= 1.0, "reuse factor must be >= 1");
    // Intra-kernel reuse: touches beyond a byte's first can hit if the line
    // is still resident; the capacity curve is ~r for r << 1 and saturates
    // at 1 for r >> 1.
    let reuse_max = 1.0 - 1.0 / reuse_factor;
    let ratio = capacity * locality_boost / working_set;
    let coverage = (ratio / (ratio + 1.0) * 2.0).min(1.0);
    let intra = reuse_max * coverage;
    // Inter-kernel residency (locality_boost > 1): a producer kernel left
    // part of the working set in the cache, so even first touches hit — but
    // only for the slice that physically fits.
    let warm_frac = if locality_boost > 1.0 {
        1.0 - 1.0 / locality_boost
    } else {
        0.0
    };
    let warm = (1.0 - reuse_max) * warm_frac * (capacity / working_set).min(1.0);
    (intra + warm).min(0.999)
}

/// Miss traffic in bytes after a cache level: total demand minus hits.
/// Cold first touches are already accounted for inside [`hit_rate`] (its
/// `1 - 1/reuse` bound keeps one pass per byte missing unless inter-kernel
/// residency covers it).
pub fn miss_bytes(demand: f64, hit: f64) -> f64 {
    assert!((0.0..=1.0).contains(&hit), "hit rate must be in [0, 1]");
    assert!(demand >= 0.0, "demand must be nonnegative");
    demand * (1.0 - hit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_working_set_hits_near_max() {
        let h = hit_rate(1024.0, 4.0 * (1 << 20) as f64, 1.0, 8.0);
        assert!((h - (1.0 - 1.0 / 8.0)).abs() < 1e-9);
    }

    #[test]
    fn huge_working_set_misses() {
        let h = hit_rate(64.0 * (1 << 30) as f64, 4.0 * (1 << 20) as f64, 1.0, 8.0);
        assert!(h < 0.001, "h = {h}");
    }

    #[test]
    fn no_reuse_means_no_hits() {
        let h = hit_rate(1024.0, (1u64 << 30) as f64, 1.0, 1.0);
        assert_eq!(h, 0.0);
    }

    #[test]
    fn warm_residency_lets_first_touches_hit() {
        // Streaming kernel (reuse 1) whose input was produced by the
        // previous kernel: locality_boost > 1 yields hits bounded by the
        // slice of the working set that fits in the cache.
        let ws = 32.0 * (1 << 20) as f64;
        let cap = (8u64 << 20) as f64;
        let h = hit_rate(ws, cap, 4.0, 1.0);
        assert!(h > 0.1 && h <= 0.25, "h = {h}");
        // Without residency there is nothing to hit.
        assert_eq!(hit_rate(ws, cap, 1.0, 1.0), 0.0);
    }

    #[test]
    fn hit_rate_never_reaches_one() {
        let h = hit_rate(1.0, 1e18, 100.0, 1e9);
        assert!(h < 1.0);
    }

    #[test]
    fn monotone_in_capacity() {
        let mut last = 0.0;
        for cap_mb in [1u64, 2, 4, 8, 16, 32] {
            let h = hit_rate(32.0 * (1 << 20) as f64, (cap_mb << 20) as f64, 1.0, 4.0);
            assert!(h >= last);
            last = h;
        }
    }

    #[test]
    fn locality_boost_raises_hits() {
        let ws = 32.0 * (1 << 20) as f64;
        let cap = (4u64 << 20) as f64;
        let low = hit_rate(ws, cap, 0.3, 4.0);
        let high = hit_rate(ws, cap, 3.0, 4.0);
        assert!(high > low);
    }

    #[test]
    fn miss_bytes_tracks_hit_rate() {
        let m = miss_bytes(1000.0, 0.25);
        assert!((m - 750.0).abs() < 1e-9);
        assert_eq!(miss_bytes(1000.0, 0.0), 1000.0);
        assert_eq!(miss_bytes(1000.0, 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "hit rate must be in")]
    fn bad_hit_rate_rejected() {
        miss_bytes(1.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "reuse factor must be >= 1")]
    fn reuse_below_one_rejected() {
        hit_rate(1.0, 1.0, 1.0, 0.5);
    }
}
