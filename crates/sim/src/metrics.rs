//! Per-invocation microarchitectural metrics (the 13 of Sec. 5.5).
//!
//! Derived deterministically from the same timing model quantities the
//! cycle count uses, so a sampled estimate of these metrics carries exactly
//! the sampling error structure of Figure 14.

use crate::simulator::Simulator;
use gpu_workload::{Invocation, MetricKind, MetricVector, Workload};

impl Simulator {
    /// Computes the 13-metric vector for one invocation.
    pub fn metrics(&self, workload: &Workload, inv: &Invocation) -> MetricVector {
        let kernel = workload.kernel_of(inv);
        let ctx = workload.context_of(inv);
        let timing = self.timing(workload, inv);
        let work = ctx.work_scale * inv.work_scale as f64;
        let thread_instr = kernel.total_instructions() as f64 * work;
        let mix = &kernel.mix;

        // Memory transactions: 32-thread warps coalesce into ~4 transactions
        // for regular access; irregular kernels (branchy mixes) coalesce
        // worse.
        let coalescing = 4.0 + 12.0 * mix.branch;
        let global_accesses = thread_instr * mix.ldst_global / 32.0 * coalescing;
        let shared_accesses = thread_instr * mix.ldst_shared / 32.0 * coalescing;
        let gld = global_accesses * 0.7;
        let gst = global_accesses * 0.3;
        let sld = shared_accesses * 0.6;
        let sst = shared_accesses * 0.4;

        let l1_accesses = global_accesses;
        let l2_accesses = l1_accesses * (1.0 - timing.l1_hit);

        // Per-invocation data dependence: divergent inputs shift coalescing,
        // replay counts and hit rates a little between invocations of the
        // same kernel. Derived deterministically from the invocation's
        // jitter draw so a sampled estimate carries real (but small)
        // sampling variance — the structure Figure 14 validates.
        let (z_tx, z_hit) = metric_noise(inv.noise_z.to_bits());
        let tx = 1.0 + 0.05 * z_tx;
        let hit_shift = 0.01 * z_hit;
        let clamp01 = |v: f64| v.clamp(0.0, 1.0);

        let mut m = MetricVector::zero();
        m.set(MetricKind::GlobalLoadTransactions, gld * tx);
        m.set(MetricKind::GlobalStoreTransactions, gst * tx);
        m.set(MetricKind::SharedLoadTransactions, sld * tx);
        m.set(MetricKind::SharedStoreTransactions, sst * tx);
        m.set(MetricKind::L1Accesses, l1_accesses * tx);
        m.set(MetricKind::L1HitRate, clamp01(timing.l1_hit + hit_shift));
        m.set(MetricKind::L2Accesses, l2_accesses * tx);
        m.set(MetricKind::L2ReadHitRate, clamp01(timing.l2_hit + hit_shift));
        m.set(MetricKind::DramReadBytes, timing.dram_bytes * 0.7 * tx);
        m.set(MetricKind::Fp16Ops, thread_instr * mix.fp16);
        m.set(MetricKind::Fp32Ops, thread_instr * mix.fp32);
        m.set(
            MetricKind::WarpExecutionEfficiency,
            clamp01(timing.warp_efficiency + hit_shift * 0.5),
        );
        m.set(
            MetricKind::BranchEfficiency,
            clamp01(1.0 - 0.5 * mix.branch + hit_shift * 0.5),
        );
        m
    }

    /// Aggregates metrics over the full workload: counts summed, rates
    /// cycle-weighted-averaged — the "full" bars of Figure 14.
    pub fn metrics_full(&self, workload: &Workload) -> MetricVector {
        let mut acc = MetricVector::zero();
        let mut total_w = 0.0;
        for inv in workload.invocations() {
            let m = self.metrics(workload, inv);
            acc.accumulate(&m, 1.0);
            total_w += 1.0;
        }
        acc.finish_rates(total_w);
        acc
    }

    /// Aggregates metrics over a weighted sample — the "sampled" bars of
    /// Figure 14, using the same weighted-sum estimator as execution time
    /// (Sec. 5.5).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or any index is out of range.
    pub fn metrics_sampled(
        &self,
        workload: &Workload,
        samples: &[crate::sampled::WeightedSample],
    ) -> MetricVector {
        assert!(!samples.is_empty(), "metric estimation needs samples");
        let mut acc = MetricVector::zero();
        let mut total_w = 0.0;
        for s in samples {
            let inv = &workload.invocations()[s.index];
            let m = self.metrics(workload, inv);
            acc.accumulate(&m, s.weight);
            total_w += s.weight;
        }
        acc.finish_rates(total_w);
        acc
    }
}

/// Two weakly-correlated standard-normal-ish draws from the invocation's
/// jitter bits (splitmix64 + Box–Muller).
fn metric_noise(bits: u32) -> (f64, f64) {
    let mut z = (bits as u64).wrapping_mul(0x9e3779b97f4a7c15);
    let mut next = || {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    };
    let u1 = next().max(f64::MIN_POSITIVE);
    let u2 = next();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::sampled::WeightedSample;
    use gpu_workload::suites::rodinia_suite;
    use gpu_workload::METRIC_COUNT;

    #[test]
    fn metrics_are_finite_and_rates_bounded() {
        let w = &rodinia_suite(4)[0];
        let sim = Simulator::new(GpuConfig::rtx2080());
        let m = sim.metrics(w, &w.invocations()[0]);
        for kind in MetricKind::ALL {
            let v = m.get(kind);
            assert!(v.is_finite() && v >= 0.0, "{kind} = {v}");
            if kind.is_rate() {
                assert!(v <= 1.0, "{kind} = {v}");
            }
        }
        assert_eq!(m.0.len(), METRIC_COUNT);
    }

    #[test]
    fn full_sampling_reproduces_full_metrics() {
        let w = &rodinia_suite(4)[2];
        let sim = Simulator::new(GpuConfig::rtx2080());
        let full = sim.metrics_full(w);
        let samples: Vec<WeightedSample> = (0..w.num_invocations())
            .map(|i| WeightedSample::new(i, 1.0))
            .collect();
        let sampled = sim.metrics_sampled(w, &samples);
        for kind in MetricKind::ALL {
            let (f, s) = (full.get(kind), sampled.get(kind));
            let denom = f.abs().max(1e-12);
            assert!(
                (f - s).abs() / denom < 1e-9,
                "{kind}: full {f} vs sampled {s}"
            );
        }
    }

    #[test]
    fn compute_kernel_has_more_fp32_than_memory_kernel() {
        use gpu_workload::kernel::{InstructionMix, KernelClassBuilder};
        use gpu_workload::{RuntimeContext, SuiteKind, WorkloadBuilder};
        let mut b = WorkloadBuilder::new("t", SuiteKind::Custom, 1);
        let c = b.add_kernel(
            KernelClassBuilder::new("c")
                .mix(InstructionMix::compute_bound())
                .build(),
            vec![RuntimeContext::neutral()],
        );
        let m = b.add_kernel(
            KernelClassBuilder::new("m")
                .mix(InstructionMix::memory_bound())
                .build(),
            vec![RuntimeContext::neutral()],
        );
        b.invoke(c, 0, 1.0);
        b.invoke(m, 0, 1.0);
        let w = b.build();
        let sim = Simulator::new(GpuConfig::rtx2080());
        let mc = sim.metrics(&w, &w.invocations()[0]);
        let mm = sim.metrics(&w, &w.invocations()[1]);
        assert!(mc.get(MetricKind::Fp32Ops) > mm.get(MetricKind::Fp32Ops));
        assert!(
            mm.get(MetricKind::GlobalLoadTransactions) > mc.get(MetricKind::GlobalLoadTransactions)
        );
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn empty_samples_rejected() {
        let w = &rodinia_suite(4)[0];
        let sim = Simulator::new(GpuConfig::rtx2080());
        sim.metrics_sampled(w, &[]);
    }
}
