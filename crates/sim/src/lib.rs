//! Kernel-level GPU timing simulator — the cycle-count substrate standing in
//! for MacSim in this reproduction.
//!
//! STEM+ROOT and all baseline samplers consume nothing from a simulator but
//! *per-kernel cycle counts* and (for validation) per-kernel
//! microarchitectural metrics. This crate produces both from an analytic
//! timing model with the properties the paper's experiments rely on:
//!
//! * identical kernels produce context-dependent, multi-modal, jittery cycle
//!   distributions (Sec. 2.1's heterogeneity — the input to ROOT);
//! * cycle counts respond to microarchitectural changes (cache size, SM
//!   count, memory bandwidth) in a kernel-dependent way — memory-bound
//!   kernels move more than compute-bound ones (the premise of the DSE and
//!   H100→H200 experiments, Sec. 5.4);
//! * the model is a pure function of `(workload, invocation, config)` plus
//!   the invocation's pre-drawn jitter, so "running" the same invocation on
//!   two configurations yields correlated times, exactly like observing one
//!   physical execution on two machines.
//!
//! # Model sketch
//!
//! For each invocation the model computes SM occupancy from CTA resources
//! ([`occupancy`]), splits dynamic instructions into compute-rail cycles by
//! instruction-class throughput ([`exec`]), drives an L1/L2 capacity-based
//! hit-rate model and a DRAM bandwidth roofline ([`cache`], [`dram`]), and
//! takes the max of the compute and memory rails plus imperfect-overlap and
//! launch-overhead terms. Runtime jitter is lognormal with a CoV that grows
//! with the kernel's memory-boundedness under the *simulated* config.

// Workspace lint headers, enforced by `stem-tidy` (rule `lint-headers`).
#![deny(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod config;
pub mod dram;
pub mod energy;
pub mod exec;
pub mod hardware;
pub mod memo;
pub mod metrics;
pub mod multi_gpu;
pub mod occupancy;
pub mod sampled;
pub mod simulator;
pub mod streaming;
pub mod waves;

pub use config::{DseTransform, GpuConfig};
pub use energy::EnergyModel;
pub use exec::{DeterministicTiming, KernelTiming, SimOptions};
pub use hardware::HardwareRunner;
pub use memo::SimCache;
pub use multi_gpu::{simulate_trace, ClusterConfig, TraceRun};
pub use sampled::{SampledRun, WeightedSample};
pub use simulator::{FullRun, Simulator};
pub use streaming::{
    run_streaming_total, source_total, store_total, workload_total, StreamRunError,
    StreamingTotal, DEFAULT_CHANNEL_BLOCKS,
};
