//! Full-workload simulation: ground truth for every experiment.
//!
//! Since the hot-path overhaul, full runs are "group-precompute + stream
//! jitter": the deterministic timing core is computed once per distinct
//! `(kernel, context, work_scale)` group ([`Workload::num_invocation_groups`])
//! and each invocation then costs one `exp`. The pre-split per-invocation
//! code is kept in [`reference`] and pinned bit-identical by
//! `tests/hotpath_equivalence.rs`.

use crate::config::GpuConfig;
use crate::exec::{
    deterministic_of_invocation, time_invocation, DeterministicTiming, KernelTiming, SimOptions,
};
use gpu_workload::{Invocation, Workload};

/// A kernel-level GPU simulator bound to one configuration.
///
/// # Example
///
/// ```
/// use gpu_sim::{GpuConfig, Simulator};
/// use gpu_workload::suites::rodinia_suite;
///
/// let workload = &rodinia_suite(7)[0];
/// let sim = Simulator::new(GpuConfig::rtx2080());
/// let run = sim.run_full(workload);
/// assert!(run.total_cycles > 0.0);
/// assert_eq!(run.per_invocation.len(), workload.num_invocations());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Simulator {
    config: GpuConfig,
    options: SimOptions,
}

/// Result of simulating every invocation of a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct FullRun {
    /// Sum of all per-invocation cycle counts — the ground truth `t*` of
    /// Eq. (1).
    pub total_cycles: f64,
    /// Cycle count of each invocation in stream order.
    pub per_invocation: Vec<f64>,
}

impl FullRun {
    /// Mean cycles per invocation.
    ///
    /// # Panics
    ///
    /// Panics if the run is empty.
    pub fn mean_cycles(&self) -> f64 {
        assert!(!self.per_invocation.is_empty(), "empty run");
        self.total_cycles / self.per_invocation.len() as f64
    }
}

impl Simulator {
    /// Creates a simulator with default options.
    ///
    /// # Panics
    ///
    /// Panics if the config fails validation.
    pub fn new(config: GpuConfig) -> Self {
        config.validate();
        Simulator {
            config,
            options: SimOptions::default(),
        }
    }

    /// Creates a simulator with explicit options (e.g. the L2-flush
    /// warmup-sensitivity mode of Sec. 6.2).
    pub fn with_options(config: GpuConfig, options: SimOptions) -> Self {
        config.validate();
        Simulator { config, options }
    }

    /// The bound configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// The simulation options.
    pub fn options(&self) -> SimOptions {
        self.options
    }

    /// Full timing breakdown of one invocation.
    pub fn timing(&self, workload: &Workload, inv: &Invocation) -> KernelTiming {
        time_invocation(workload, inv, &self.config, self.options)
    }

    /// Cycle count of one invocation.
    pub fn cycles(&self, workload: &Workload, inv: &Invocation) -> f64 {
        self.timing(workload, inv).cycles
    }

    /// Deterministic timing core of every invocation group, in group order
    /// (one full model evaluation per distinct `(kernel, context,
    /// work_scale)` triple).
    pub fn group_timings(&self, workload: &Workload) -> Vec<DeterministicTiming> {
        self.group_timings_par(workload, stem_par::Parallelism::serial())
    }

    /// [`Simulator::group_timings`] spread across `par` threads; groups are
    /// independent, so the result is identical at any thread count.
    pub fn group_timings_par(
        &self,
        workload: &Workload,
        par: stem_par::Parallelism,
    ) -> Vec<DeterministicTiming> {
        stem_par::par_map_range(par, workload.num_invocation_groups(), |g| {
            let rep = &workload.invocations()[workload.group_representative(g as u32)];
            deterministic_of_invocation(workload, rep, &self.config, self.options)
        })
    }

    /// Simulates every invocation (the "full simulation" the paper treats
    /// as prohibitively expensive on real infrastructure — cheap here, which
    /// is what lets us measure true sampling error).
    ///
    /// Internally grouped: the deterministic core runs once per invocation
    /// group, then each invocation applies its own jitter draw — bit-identical
    /// to the per-invocation reference path because the floating-point
    /// expressions are unchanged, only de-duplicated.
    pub fn run_full(&self, workload: &Workload) -> FullRun {
        self.run_full_par(workload, stem_par::Parallelism::serial())
    }

    /// [`Simulator::run_full`] with the group precompute and the
    /// per-invocation jitter map spread across `par` threads.
    /// Per-invocation order and the left-to-right total-cycles sum are
    /// preserved, so the result is bit-identical to the serial run at every
    /// thread count.
    pub fn run_full_par(&self, workload: &Workload, par: stem_par::Parallelism) -> FullRun {
        let invocations = workload.invocations();
        let per_invocation = stem_par::par_map_grouped(
            par,
            workload.num_invocation_groups(),
            |g| {
                let rep = &invocations[workload.group_representative(g as u32)];
                deterministic_of_invocation(workload, rep, &self.config, self.options)
            },
            invocations.len(),
            |i, groups: &[DeterministicTiming]| {
                groups[workload.group_of(i) as usize].jittered_cycles(invocations[i].noise_z as f64)
            },
        );
        let total_cycles = per_invocation.iter().sum();
        FullRun {
            total_cycles,
            per_invocation,
        }
    }

    /// Ground-truth total cycles without materializing the per-invocation
    /// vector: group precompute (optionally parallel), then a serial
    /// left-to-right streaming fold over the jittered cycles — bit-identical
    /// to `run_full(..).total_cycles`, with O(groups) instead of
    /// O(invocations) memory. Campaign aggregation uses this.
    pub fn run_full_total(&self, workload: &Workload, par: stem_par::Parallelism) -> f64 {
        let groups = self.group_timings_par(workload, par);
        let mut total = 0.0;
        for (i, inv) in workload.invocations().iter().enumerate() {
            total += groups[workload.group_of(i) as usize].jittered_cycles(inv.noise_z as f64);
        }
        total
    }

    /// Simulates only the invocations at `indices`, returning their cycle
    /// counts in the same order. Deterministic cores are computed lazily,
    /// once per group touched.
    pub fn run_subset(&self, workload: &Workload, indices: &[usize]) -> Vec<f64> {
        let mut groups: Vec<Option<DeterministicTiming>> =
            vec![None; workload.num_invocation_groups()];
        indices
            .iter()
            .map(|&i| {
                let inv = &workload.invocations()[i];
                let g = workload.group_of(i) as usize;
                let det = groups[g].get_or_insert_with(|| {
                    deterministic_of_invocation(workload, inv, &self.config, self.options)
                });
                det.jittered_cycles(inv.noise_z as f64)
            })
            .collect()
    }
}

/// The pre-overhaul per-invocation slow paths, kept as the executable
/// specification the grouped fast paths are pinned against (the workspace
/// integration suite `tests/hotpath_equivalence.rs` asserts bitwise
/// equality; dependency-crate `#[cfg(test)]` items are invisible to
/// workspace-level tests, hence `#[doc(hidden)] pub`).
#[doc(hidden)]
pub mod reference {
    use super::*;

    /// Per-invocation [`Simulator::run_full`]: runs the full analytic model
    /// for every invocation.
    pub fn run_full(sim: &Simulator, workload: &Workload) -> FullRun {
        let per_invocation: Vec<f64> = workload
            .invocations()
            .iter()
            .map(|inv| sim.cycles(workload, inv))
            .collect();
        let total_cycles = per_invocation.iter().sum();
        FullRun {
            total_cycles,
            per_invocation,
        }
    }

    /// Per-invocation [`Simulator::run_full_par`].
    pub fn run_full_par(
        sim: &Simulator,
        workload: &Workload,
        par: stem_par::Parallelism,
    ) -> FullRun {
        let invocations = workload.invocations();
        let per_invocation =
            stem_par::par_map_indexed(par, invocations, |_, inv| sim.cycles(workload, inv));
        let total_cycles = per_invocation.iter().sum();
        FullRun {
            total_cycles,
            per_invocation,
        }
    }

    /// Per-invocation `Simulator::run_sampled`: full model per sample.
    pub fn run_sampled(
        sim: &Simulator,
        workload: &Workload,
        samples: &[crate::sampled::WeightedSample],
    ) -> crate::sampled::SampledRun {
        assert!(!samples.is_empty(), "sampled simulation needs samples");
        let n = workload.num_invocations();
        let mut estimated = 0.0;
        let mut simulated = 0.0;
        for s in samples {
            assert!(s.index < n, "sample index {} out of range", s.index);
            let timing = sim.timing(workload, &workload.invocations()[s.index]);
            estimated += s.weight * timing.cycles;
            simulated += timing.cycles + timing.warmup_cycles;
        }
        crate::sampled::SampledRun {
            estimated_total_cycles: estimated,
            simulated_cycles: simulated,
            num_samples: samples.len(),
        }
    }

    /// Per-invocation [`Simulator::run_subset`].
    pub fn run_subset(sim: &Simulator, workload: &Workload, indices: &[usize]) -> Vec<f64> {
        indices
            .iter()
            .map(|&i| {
                let inv = &workload.invocations()[i];
                sim.cycles(workload, inv)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_workload::suites::{casio_suite, rodinia_suite};

    #[test]
    fn full_run_is_sum_of_parts() {
        let w = &rodinia_suite(3)[0];
        let sim = Simulator::new(GpuConfig::rtx2080());
        let run = sim.run_full(w);
        let sum: f64 = run.per_invocation.iter().sum();
        assert!((run.total_cycles - sum).abs() < 1e-6 * run.total_cycles);
        assert!(run.per_invocation.iter().all(|&c| c > 0.0 && c.is_finite()));
    }

    #[test]
    fn run_subset_matches_full() {
        let w = &rodinia_suite(3)[1];
        let sim = Simulator::new(GpuConfig::rtx2080());
        let run = sim.run_full(w);
        let subset = sim.run_subset(w, &[0, 5, 10]);
        assert_eq!(subset[0], run.per_invocation[0]);
        assert_eq!(subset[1], run.per_invocation[5]);
        assert_eq!(subset[2], run.per_invocation[10]);
    }

    #[test]
    fn parallel_full_run_is_bit_identical() {
        let w = &rodinia_suite(3)[0];
        let sim = Simulator::new(GpuConfig::rtx2080());
        let serial = sim.run_full(w);
        for threads in [1usize, 2, 3, 8] {
            let par = sim.run_full_par(w, stem_par::Parallelism::with_threads(threads));
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let w = &rodinia_suite(3)[2];
        let sim = Simulator::new(GpuConfig::rtx2080());
        assert_eq!(sim.run_full(w), sim.run_full(w));
    }

    #[test]
    fn heartwall_first_call_is_tiny() {
        let suite = rodinia_suite(3);
        let h = suite.iter().find(|w| w.name() == "heartwall").expect("heartwall");
        let sim = Simulator::new(GpuConfig::rtx2080());
        let run = sim.run_full(h);
        // The paper: sampling only the first kernel underestimates total
        // time with ~99.9% error.
        let first_estimate = run.per_invocation[0] * run.per_invocation.len() as f64;
        let err = (first_estimate - run.total_cycles).abs() / run.total_cycles;
        assert!(err > 0.99, "first-chronological error = {err}");
    }

    #[test]
    fn same_kernel_same_context_times_cluster_tightly() {
        // A stable CASIO kernel's per-context times have small CoV.
        let suite = casio_suite(3);
        let w = suite.iter().find(|w| w.name() == "bert_infer").expect("bert");
        let sim = Simulator::new(GpuConfig::rtx2080());
        // gelu_fwd is a stable elementwise kernel with one context.
        let gelu = w
            .kernels()
            .iter()
            .position(|k| k.name == "gelu_fwd")
            .expect("gelu");
        let times: Vec<f64> = w
            .invocations()
            .iter()
            .filter(|inv| inv.kernel.index() == gelu)
            .take(2000)
            .map(|inv| sim.cycles(w, inv))
            .collect();
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let var = times.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / times.len() as f64;
        let cov = var.sqrt() / mean;
        assert!(cov < 0.1, "gelu CoV = {cov}");
    }

    #[test]
    fn multi_context_kernel_is_multimodal() {
        let suite = casio_suite(3);
        let w = suite.iter().find(|w| w.name() == "resnet50_infer").expect("resnet");
        let sim = Simulator::new(GpuConfig::rtx2080());
        let bn = w
            .kernels()
            .iter()
            .position(|k| k.name.starts_with("bn_fw_inf"))
            .expect("bn");
        let times: Vec<f64> = w
            .invocations()
            .iter()
            .filter(|inv| inv.kernel.index() == bn)
            .take(5000)
            .map(|inv| sim.cycles(w, inv))
            .collect();
        let h = stem_stats_histogram(&times);
        assert!(h >= 2, "expected multi-peak bn histogram, got {h} peaks");
    }

    /// Tiny local peak counter (avoids a cyclic dev-dependency on
    /// stem-stats): counts maxima above 20% of the tallest bin.
    fn stem_stats_histogram(times: &[f64]) -> usize {
        let lo = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let bins = 64usize;
        let mut counts = vec![0u64; bins];
        for &t in times {
            let idx = (((t - lo) / (hi - lo) * bins as f64) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        let max = *counts.iter().max().expect("nonempty") as f64;
        let mut peaks = 0;
        for i in 0..bins {
            let c = counts[i] as f64;
            if c < 0.2 * max {
                continue;
            }
            let left = if i == 0 { 0.0 } else { counts[i - 1] as f64 };
            let right = if i + 1 == bins { 0.0 } else { counts[i + 1] as f64 };
            if c >= left && c > right {
                peaks += 1;
            }
        }
        peaks
    }
}
