//! Per-kernel energy estimation.
//!
//! The paper's introduction lists power and energy estimation among the
//! uses of cycle-level simulation. The same weighted-sum extrapolation that
//! estimates total cycles estimates total energy, so a sampled simulation
//! can stand in for a full one there too. This module adds an
//! activity-based energy model on top of the timing model: per-operation
//! dynamic energy (by instruction class), per-byte memory-hierarchy energy,
//! and leakage/static power integrated over the kernel's runtime.

use crate::config::GpuConfig;
use crate::sampled::WeightedSample;
use crate::simulator::Simulator;
use gpu_workload::{Invocation, Workload};

/// Activity-based energy coefficients (picojoules per event, watts for
/// static power). Defaults are in the range published for recent NVIDIA
/// parts (integer ops cheapest, FP32 a few pJ, DRAM tens of pJ per byte).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per FP32 operation (pJ).
    pub pj_per_fp32: f64,
    /// Energy per FP16/tensor operation (pJ).
    pub pj_per_fp16: f64,
    /// Energy per integer/branch/special operation (pJ).
    pub pj_per_int: f64,
    /// Energy per load/store instruction issued (pJ, pipeline only).
    pub pj_per_ldst: f64,
    /// Energy per byte served from L2 (pJ/B).
    pub pj_per_l2_byte: f64,
    /// Energy per byte served from DRAM (pJ/B).
    pub pj_per_dram_byte: f64,
    /// Static (leakage + idle) power of the whole GPU (W).
    pub static_watts: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            pj_per_fp32: 1.5,
            pj_per_fp16: 0.8,
            pj_per_int: 0.8,
            pj_per_ldst: 2.0,
            pj_per_l2_byte: 8.0,
            pj_per_dram_byte: 25.0,
            static_watts: 60.0,
        }
    }
}

impl EnergyModel {
    /// Validates coefficient ranges.
    ///
    /// # Panics
    ///
    /// Panics on negative coefficients.
    pub fn validate(&self) {
        for (name, v) in [
            ("fp32", self.pj_per_fp32),
            ("fp16", self.pj_per_fp16),
            ("int", self.pj_per_int),
            ("ldst", self.pj_per_ldst),
            ("l2", self.pj_per_l2_byte),
            ("dram", self.pj_per_dram_byte),
            ("static", self.static_watts),
        ] {
            assert!(v >= 0.0, "energy coefficient {name} must be nonnegative");
        }
    }

    /// Energy of one invocation in joules, given its timing on `config`.
    pub fn invocation_energy(
        &self,
        workload: &Workload,
        inv: &Invocation,
        sim: &Simulator,
    ) -> f64 {
        let kernel = workload.kernel_of(inv);
        let ctx = workload.context_of(inv);
        let timing = sim.timing(workload, inv);
        let work = ctx.work_scale * inv.work_scale as f64;
        let instr = kernel.total_instructions() as f64 * work;
        let mix = &kernel.mix;

        let compute_pj = instr
            * (mix.fp32 * self.pj_per_fp32
                + mix.fp16 * self.pj_per_fp16
                + (mix.int_alu + mix.branch + mix.special) * self.pj_per_int
                + (mix.ldst_global + mix.ldst_shared) * self.pj_per_ldst);
        // L2 serves whatever missed L1 (including what then misses to DRAM).
        let l2_bytes = timing.access_bytes * (1.0 - timing.l1_hit);
        let memory_pj = l2_bytes * self.pj_per_l2_byte + timing.dram_bytes * self.pj_per_dram_byte;
        let seconds = seconds_of(sim.config(), timing.cycles);
        let static_j = self.static_watts * seconds;
        (compute_pj + memory_pj) * 1e-12 + static_j
    }

    /// Total energy of a full run, joules.
    pub fn full_energy(&self, workload: &Workload, sim: &Simulator) -> f64 {
        workload
            .invocations()
            .iter()
            .map(|inv| self.invocation_energy(workload, inv, sim))
            .sum()
    }

    /// Weighted-sum energy estimate from a sampling plan, joules.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or any index is out of range.
    pub fn sampled_energy(
        &self,
        workload: &Workload,
        samples: &[WeightedSample],
        sim: &Simulator,
    ) -> f64 {
        assert!(!samples.is_empty(), "energy estimation needs samples");
        samples
            .iter()
            .map(|s| {
                let inv = &workload.invocations()[s.index];
                s.weight * self.invocation_energy(workload, inv, sim)
            })
            .sum()
    }
}

fn seconds_of(config: &GpuConfig, cycles: f64) -> f64 {
    config.cycles_to_seconds(cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use gpu_workload::kernel::{InstructionMix, KernelClassBuilder};
    use gpu_workload::suites::rodinia_suite;
    use gpu_workload::{RuntimeContext, SuiteKind, WorkloadBuilder};

    #[test]
    fn energy_positive_and_finite() {
        let w = &rodinia_suite(91)[0];
        let sim = Simulator::new(GpuConfig::rtx2080());
        let e = EnergyModel::default().full_energy(w, &sim);
        assert!(e.is_finite() && e > 0.0);
    }

    #[test]
    fn full_sampling_is_exact() {
        let w = &rodinia_suite(91)[2];
        let sim = Simulator::new(GpuConfig::rtx2080());
        let m = EnergyModel::default();
        let full = m.full_energy(w, &sim);
        let samples: Vec<WeightedSample> = (0..w.num_invocations())
            .map(|i| WeightedSample::new(i, 1.0))
            .collect();
        let est = m.sampled_energy(w, &samples, &sim);
        assert!((full - est).abs() < 1e-9 * full);
    }

    #[test]
    fn memory_bound_kernel_spends_more_on_dram() {
        let mut b = WorkloadBuilder::new("t", SuiteKind::Custom, 1);
        let mem = b.add_kernel(
            KernelClassBuilder::new("mem")
                .geometry(512, 256)
                .instructions(2_000)
                .mix(InstructionMix::memory_bound())
                .memory(512 << 20, 1.0)
                .build(),
            vec![RuntimeContext::neutral().with_locality(0.3)],
        );
        let comp = b.add_kernel(
            KernelClassBuilder::new("comp")
                .geometry(512, 256)
                .instructions(2_000)
                .mix(InstructionMix::compute_bound())
                .memory(8 << 20, 24.0)
                .build(),
            vec![RuntimeContext::neutral()],
        );
        b.invoke(mem, 0, 1.0);
        b.invoke(comp, 0, 1.0);
        let w = b.build();
        let sim = Simulator::new(GpuConfig::rtx2080());
        let m = EnergyModel::default();
        let e_mem = m.invocation_energy(&w, &w.invocations()[0], &sim);
        let e_comp = m.invocation_energy(&w, &w.invocations()[1], &sim);
        // Same instruction count, but the memory-bound kernel pays DRAM
        // energy and longer static integration.
        assert!(e_mem > e_comp, "mem {e_mem} vs comp {e_comp}");
    }

    #[test]
    fn zeroed_model_only_counts_nothing() {
        let w = &rodinia_suite(91)[0];
        let sim = Simulator::new(GpuConfig::rtx2080());
        let zero = EnergyModel {
            pj_per_fp32: 0.0,
            pj_per_fp16: 0.0,
            pj_per_int: 0.0,
            pj_per_ldst: 0.0,
            pj_per_l2_byte: 0.0,
            pj_per_dram_byte: 0.0,
            static_watts: 0.0,
        };
        zero.validate();
        assert_eq!(zero.full_energy(w, &sim), 0.0);
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn empty_samples_rejected() {
        let w = &rodinia_suite(91)[0];
        let sim = Simulator::new(GpuConfig::rtx2080());
        EnergyModel::default().sampled_energy(w, &[], &sim);
    }
}
