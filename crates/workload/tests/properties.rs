//! Property-based tests for the workload substrate.

use gpu_workload::kernel::KernelClassBuilder;
use gpu_workload::suites::{casio_suite, huggingface_suite, rodinia_suite, HuggingfaceScale};
use gpu_workload::{ContextSchedule, RuntimeContext, SuiteKind, WorkloadBuilder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any suite seed yields structurally valid workloads (Workload::new
    /// validates on construction; this exercises generator edge seeds).
    #[test]
    fn suites_valid_for_any_seed(seed in 0u64..10_000) {
        let rodinia = rodinia_suite(seed);
        prop_assert_eq!(rodinia.len(), 13);
        for w in &rodinia {
            prop_assert!(w.num_invocations() > 0);
            prop_assert_eq!(w.suite(), SuiteKind::Rodinia);
        }
        // One CASIO workload per run keeps the test quick.
        let casio = casio_suite(seed);
        prop_assert_eq!(casio.len(), 11);
    }

    /// Builder schedules always produce the requested invocation counts
    /// with in-range context indices.
    #[test]
    fn schedules_produce_exact_counts(
        seed in 0u64..1000,
        contexts in 1usize..6,
        count in 1usize..400,
        variant in 0u8..3,
    ) {
        let mut b = WorkloadBuilder::new("p", SuiteKind::Custom, seed);
        let ctxs: Vec<RuntimeContext> = (0..contexts)
            .map(|i| RuntimeContext::neutral().with_work(1.0 + i as f64 * 0.5))
            .collect();
        let id = b.add_kernel(KernelClassBuilder::new("k").build(), ctxs);
        let schedule = match variant {
            0 => ContextSchedule::Cyclic,
            1 => ContextSchedule::Weighted(vec![1.0; contexts]),
            _ => ContextSchedule::Phased(
                (0..contexts).map(|c| (c, 2)).collect(),
            ),
        };
        b.schedule(id, &schedule, count);
        let w = b.build();
        prop_assert_eq!(w.num_invocations(), count);
        for inv in w.invocations() {
            prop_assert!((inv.context as usize) < contexts);
            prop_assert!(inv.work_scale > 0.0);
            prop_assert!(inv.noise_z.is_finite());
        }
    }

    /// invocations_by_kernel partitions the stream and preserves order.
    #[test]
    fn grouping_partitions_stream(seed in 0u64..1000, n in 1usize..200) {
        let mut b = WorkloadBuilder::new("p", SuiteKind::Custom, seed);
        let a = b.add_kernel(
            KernelClassBuilder::new("a").build(),
            vec![RuntimeContext::neutral()],
        );
        let c = b.add_kernel(
            KernelClassBuilder::new("c").build(),
            vec![RuntimeContext::neutral()],
        );
        for i in 0..n {
            b.invoke(if i % 3 == 0 { a } else { c }, 0, 1.0);
        }
        let w = b.build();
        let groups = w.invocations_by_kernel();
        let total: usize = groups.values().map(Vec::len).sum();
        prop_assert_eq!(total, n);
        for members in groups.values() {
            for pair in members.windows(2) {
                prop_assert!(pair[1] > pair[0], "stream order preserved");
            }
        }
    }

    /// HuggingFace scale controls the invocation count monotonically.
    #[test]
    fn hf_scale_monotone(seed in 0u64..100) {
        let small: usize = huggingface_suite(seed, HuggingfaceScale::custom(0.003))
            .iter()
            .map(|w| w.num_invocations())
            .sum();
        let large: usize = huggingface_suite(seed, HuggingfaceScale::custom(0.012))
            .iter()
            .map(|w| w.num_invocations())
            .sum();
        prop_assert!(large >= small);
    }
}
