//! Property-style tests for the workload substrate.
//!
//! Formerly `proptest`-based; rewritten as deterministic seeded-loop
//! property tests so the workspace builds hermetically.

use gpu_workload::kernel::KernelClassBuilder;
use gpu_workload::suites::{casio_suite, huggingface_suite, rodinia_suite, HuggingfaceScale};
use gpu_workload::{ContextSchedule, RuntimeContext, SuiteKind, WorkloadBuilder};
use stem_stats::rng::{RngExt, SeedableRng, StdRng};

fn rng_for(test_tag: u64, case: u64) -> StdRng {
    StdRng::seed_from_u64(0x3093_10AD ^ (test_tag << 32) ^ case)
}

/// Any suite seed yields structurally valid workloads (Workload::new
/// validates on construction; this exercises generator edge seeds).
#[test]
fn suites_valid_for_any_seed() {
    for case in 0..10 {
        let mut rng = rng_for(1, case);
        let seed = rng.random_range(0u64..10_000);
        let rodinia = rodinia_suite(seed);
        assert_eq!(rodinia.len(), 13, "case {case}");
        for w in &rodinia {
            assert!(w.num_invocations() > 0, "case {case}");
            assert_eq!(w.suite(), SuiteKind::Rodinia, "case {case}");
        }
        // One CASIO workload per run keeps the test quick.
        let casio = casio_suite(seed);
        assert_eq!(casio.len(), 11, "case {case}");
    }
}

/// Builder schedules always produce the requested invocation counts
/// with in-range context indices.
#[test]
fn schedules_produce_exact_counts() {
    for case in 0..48 {
        let mut rng = rng_for(2, case);
        let seed = rng.random_range(0u64..1000);
        let contexts = rng.random_range(1usize..6);
        let count = rng.random_range(1usize..400);
        let variant = case % 3;
        let mut b = WorkloadBuilder::new("p", SuiteKind::Custom, seed);
        let ctxs: Vec<RuntimeContext> = (0..contexts)
            .map(|i| RuntimeContext::neutral().with_work(1.0 + i as f64 * 0.5))
            .collect();
        let id = b.add_kernel(KernelClassBuilder::new("k").build(), ctxs);
        let schedule = match variant {
            0 => ContextSchedule::Cyclic,
            1 => ContextSchedule::Weighted(vec![1.0; contexts]),
            _ => ContextSchedule::Phased((0..contexts).map(|c| (c, 2)).collect()),
        };
        b.schedule(id, &schedule, count);
        let w = b.build();
        assert_eq!(w.num_invocations(), count, "case {case}");
        for inv in w.invocations() {
            assert!((inv.context as usize) < contexts, "case {case}");
            assert!(inv.work_scale > 0.0, "case {case}");
            assert!(inv.noise_z.is_finite(), "case {case}");
        }
    }
}

/// invocations_by_kernel partitions the stream and preserves order.
#[test]
fn grouping_partitions_stream() {
    for case in 0..48 {
        let mut rng = rng_for(3, case);
        let seed = rng.random_range(0u64..1000);
        let n = rng.random_range(1usize..200);
        let mut b = WorkloadBuilder::new("p", SuiteKind::Custom, seed);
        let a = b.add_kernel(
            KernelClassBuilder::new("a").build(),
            vec![RuntimeContext::neutral()],
        );
        let c = b.add_kernel(
            KernelClassBuilder::new("c").build(),
            vec![RuntimeContext::neutral()],
        );
        for i in 0..n {
            b.invoke(if i % 3 == 0 { a } else { c }, 0, 1.0);
        }
        let w = b.build();
        let groups = w.invocations_by_kernel();
        let total: usize = groups.values().map(Vec::len).sum();
        assert_eq!(total, n, "case {case}");
        for members in groups.values() {
            for pair in members.windows(2) {
                assert!(pair[1] > pair[0], "case {case}: stream order preserved");
            }
        }
    }
}

/// HuggingFace scale controls the invocation count monotonically.
#[test]
fn hf_scale_monotone() {
    for case in 0..6 {
        let mut rng = rng_for(4, case);
        let seed = rng.random_range(0u64..100);
        let small: usize = huggingface_suite(seed, HuggingfaceScale::custom(0.003))
            .iter()
            .map(|w| w.num_invocations())
            .sum();
        let large: usize = huggingface_suite(seed, HuggingfaceScale::custom(0.012))
            .iter()
            .map(|w| w.num_invocations())
            .sum();
        assert!(large >= small, "case {case}");
    }
}
