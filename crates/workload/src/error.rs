//! Typed errors for workload construction and validation.
//!
//! Workloads arrive from outside the process (profiler exports parsed by
//! [`crate::io`]), so an inconsistent one is an *input* problem, not a
//! bug. The `try_*` constructors and validators across the crate report
//! violations as a [`WorkloadError`]; the original panicking entry points
//! remain as thin wrappers for in-process construction, where a violation
//! really is a programming error.

/// Which layer of the workload structure a violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadErrorKind {
    /// A kernel's static signature is out of range.
    Kernel,
    /// An instruction mix does not form a distribution.
    Mix,
    /// A runtime context carries an illegal scale.
    Context,
    /// The workload's tables are inconsistent with each other.
    Structure,
    /// An invocation references a missing kernel or context.
    Invocation,
}

/// A workload that failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadError {
    /// Which layer the violation belongs to.
    pub kind: WorkloadErrorKind,
    /// Human-readable description; also the message of the corresponding
    /// panicking wrapper.
    pub message: String,
}

impl WorkloadError {
    pub(crate) fn new(kind: WorkloadErrorKind, message: impl Into<String>) -> Self {
        WorkloadError { kind, message: message.into() }
    }
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_the_message() {
        let e = WorkloadError::new(WorkloadErrorKind::Kernel, "kernel x has zero grid");
        assert_eq!(e.to_string(), "kernel x has zero grid");
        assert_eq!(e.kind, WorkloadErrorKind::Kernel);
    }
}
