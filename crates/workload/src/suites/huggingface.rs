//! Synthetic HuggingFace suite: 6 large LLM/ML serving workloads.
//!
//! The paper's HuggingFace workloads (Bert, Bloom, DeiT, Gemma, GPT-2,
//! ResNet-50) generate 1000+ sentences or classify 7000+ images, averaging
//! 11.6M kernel calls per workload (Table 2). We reproduce the serving
//! structure — a long stream of repeated transformer-layer kernels with a
//! prefill/decode bimodality and sequence-length jitter — behind a
//! [`HuggingfaceScale`] so the default test scale stays laptop friendly
//! while `scale = 1.0` approximates the paper's size.

use crate::builder::WorkloadSource;
use crate::context::{ContextSchedule, RuntimeContext};
use crate::trace::{SuiteKind, Workload};

use super::ml::{self, GemmSize};

/// Scale factor for the HuggingFace suite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HuggingfaceScale(f64);


impl HuggingfaceScale {
    /// Paper scale: ~11.6M calls per workload on average.
    pub fn paper() -> Self {
        HuggingfaceScale(1.0)
    }

    /// Default reproduction scale (~1/20 of paper, ~0.5M calls average):
    /// large enough that all statistical behaviour is identical, small
    /// enough for CI.
    pub fn default_repro() -> Self {
        HuggingfaceScale(0.05)
    }

    /// Tiny scale for unit tests.
    pub fn test() -> Self {
        HuggingfaceScale(0.002)
    }

    /// Custom scale.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < scale <= 4`.
    pub fn custom(scale: f64) -> Self {
        assert!(
            scale > 0.0 && scale <= 4.0,
            "scale must be in (0, 4], got {scale}"
        );
        HuggingfaceScale(scale)
    }

    /// The raw factor.
    pub fn factor(self) -> f64 {
        self.0
    }

    fn steps(self, base: usize) -> usize {
        ((base as f64 * self.0).round() as usize).max(8)
    }
}

impl Default for HuggingfaceScale {
    fn default() -> Self {
        HuggingfaceScale::default_repro()
    }
}

/// Generates all 6 HuggingFace workloads at the given scale.
pub fn huggingface_suite(seed: u64, scale: HuggingfaceScale) -> Vec<Workload> {
    huggingface_sources(seed, scale)
        .iter()
        .map(WorkloadSource::materialize)
        .collect()
}

/// The 6 HuggingFace workloads as deferred [`WorkloadSource`]s — the
/// block-streaming counterpart of [`huggingface_suite`], generating
/// identical content (same RNG stream, same fingerprints). At
/// `HuggingfaceScale::paper()` each source streams millions of calls
/// without ever materializing them.
pub fn huggingface_sources(seed: u64, scale: HuggingfaceScale) -> Vec<WorkloadSource> {
    vec![
        decoder_llm(seed ^ 0x21, "gpt2", 48, GemmSize::Medium, scale),
        decoder_llm(seed ^ 0x22, "bloom", 70, GemmSize::Large, scale),
        decoder_llm(seed ^ 0x23, "gemma", 42, GemmSize::Large, scale),
        encoder_model(seed ^ 0x24, "bert", 24, scale),
        encoder_model(seed ^ 0x25, "deit", 12, scale),
        resnet50_serving(seed ^ 0x26, scale),
    ]
}

/// Autoregressive decoder serving: a short prefill phase then a long decode
/// phase per request; thousands of requests.
fn decoder_llm(
    seed: u64,
    name: &str,
    layers: usize,
    size: GemmSize,
    scale: HuggingfaceScale,
) -> WorkloadSource {
    WorkloadSource::new(name, SuiteKind::Huggingface, seed, move |b| {
        // Context 0: prefill (whole prompt, large GEMMs, good locality).
        // Context 1: decode (single token, GEMV-shaped, KV-cache bound).
        let prefill_decode = vec![
            RuntimeContext::neutral().with_work(8.0).with_locality(2.0).with_jitter(0.05),
            RuntimeContext::neutral()
                .with_work(1.0)
                .with_locality(0.6)
                .with_jitter(0.14),
        ];
        let qkv = b.add_kernel(ml::gemm("qkv_proj_gemm", size), prefill_decode.clone());
        let attn = b.add_kernel(
            ml::softmax("flash_attn_fwd", 128),
            vec![
                RuntimeContext::neutral().with_work(6.0).with_jitter(0.06),
                // Decode attention cost grows with KV-cache length: wide.
                RuntimeContext::neutral()
                    .with_work(1.4)
                    .with_locality(0.5)
                    .with_jitter(0.30),
            ],
        );
        let out_proj = b.add_kernel(ml::gemm("out_proj_gemm", size), prefill_decode.clone());
        let ffn1 = b.add_kernel(ml::tensor_gemm("ffn_gemm_1", size), prefill_decode.clone());
        let ffn2 = b.add_kernel(ml::tensor_gemm("ffn_gemm_2", size), prefill_decode);
        let ln = b.add_kernel(ml::norm("rms_norm", 96), ml::stable_context(0.03));
        let act = b.add_kernel(ml::elementwise("silu_mul", 96), ml::stable_context(0.02));

        // Requests: 1 prefill pass + `decode_tokens` decode passes over all
        // layers. Base request count tuned so scale=1 approximates ~10M calls.
        let requests = scale.steps(1100);
        let decode_tokens = 24usize;
        for _ in 0..requests {
            // Prefill: context 0 everywhere.
            for _ in 0..layers {
                b.invoke(qkv, 0, 1.0);
                b.invoke(attn, 0, 1.0);
                b.invoke(out_proj, 0, 1.0);
                b.invoke(ln, 0, 1.0);
                b.invoke(ffn1, 0, 1.0);
                b.invoke(act, 0, 1.0);
                b.invoke(ffn2, 0, 1.0);
            }
            // Decode: context 1, attention work grows with generated length.
            for t in 0..decode_tokens {
                let kv_growth = 1.0 + t as f32 / decode_tokens as f32;
                for _ in 0..layers {
                    b.invoke(qkv, 1, 1.0);
                    b.invoke(attn, 1, kv_growth);
                    b.invoke(out_proj, 1, 1.0);
                    b.invoke(ln, 0, 1.0);
                    b.invoke(ffn1, 1, 1.0);
                    b.invoke(act, 0, 1.0);
                    b.invoke(ffn2, 1, 1.0);
                }
            }
        }
    })
}

/// Encoder-only serving (BERT classification / DeiT vision transformer):
/// fixed-length batches, no decode phase, sequence-length buckets create
/// peaks.
fn encoder_model(seed: u64, name: &str, layers: usize, scale: HuggingfaceScale) -> WorkloadSource {
    WorkloadSource::new(name, SuiteKind::Huggingface, seed, move |b| {
        let buckets = vec![
            RuntimeContext::neutral().with_work(1.0).with_jitter(0.04),
            RuntimeContext::neutral().with_work(2.0).with_jitter(0.04),
            RuntimeContext::neutral().with_work(4.0).with_jitter(0.05),
        ];
        let qkv = b.add_kernel(ml::gemm("qkv_proj_gemm", GemmSize::Medium), buckets.clone());
        let attn = b.add_kernel(ml::softmax("softmax_attn_fwd", 96), ml::wide_context(0.12));
        let ffn = b.add_kernel(ml::tensor_gemm("ffn_gemm", GemmSize::Medium), buckets);
        let ln = b.add_kernel(ml::norm("layer_norm_fwd", 96), ml::stable_context(0.03));
        let gelu = b.add_kernel(ml::elementwise("gelu_fwd", 96), ml::stable_context(0.02));

        let batches = scale.steps(7000);
        let bucket_schedule = ContextSchedule::Weighted(vec![5.0, 3.0, 1.0]);
        for _ in 0..batches {
            for _ in 0..layers {
                b.schedule(qkv, &bucket_schedule, 1);
                b.schedule(attn, &ContextSchedule::Cyclic, 1);
                b.schedule(ffn, &bucket_schedule, 2);
                b.schedule(ln, &ContextSchedule::Cyclic, 2);
                b.schedule(gelu, &ContextSchedule::Cyclic, 1);
            }
        }
    })
}

/// ResNet-50 image-classification serving: CNN kernels, 7000+ images.
fn resnet50_serving(seed: u64, scale: HuggingfaceScale) -> WorkloadSource {
    WorkloadSource::new("resnet50", SuiteKind::Huggingface, seed, move |b| {
        let wino = b.add_kernel(
            ml::tensor_gemm("winograd_fwd_4x4", GemmSize::Large),
            ml::two_peak_contexts(2.2, 0.05),
        );
        let sgemm = b.add_kernel(
            ml::gemm("sgemm_128x64_nn", GemmSize::Medium),
            ml::three_peak_contexts(0.03),
        );
        let bn = b.add_kernel(ml::norm("bn_fw_inf_CUDNN", 192), ml::three_peak_contexts(0.025));
        let pool = b.add_kernel(ml::pool("max_pool_fw_4d", 128), ml::wide_context(0.25));
        let relu = b.add_kernel(ml::elementwise("relu_fw", 192), ml::stable_context(0.02));

        let batches = scale.steps(9000);
        for _ in 0..batches {
            b.schedule(wino, &ContextSchedule::Weighted(vec![1.0, 1.0]), 8);
            b.schedule(sgemm, &ContextSchedule::Weighted(vec![2.0, 2.0, 1.0]), 9);
            b.schedule(bn, &ContextSchedule::Weighted(vec![3.0, 2.0, 1.0]), 12);
            b.schedule(pool, &ContextSchedule::Cyclic, 2);
            b.schedule(relu, &ContextSchedule::Cyclic, 12);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_workloads() {
        let suite = huggingface_suite(1, HuggingfaceScale::test());
        assert_eq!(suite.len(), 6);
        let names: Vec<&str> = suite.iter().map(|w| w.name()).collect();
        for expected in ["gpt2", "bloom", "gemma", "bert", "deit", "resnet50"] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn all_marked_huggingface() {
        for w in huggingface_suite(1, HuggingfaceScale::test()) {
            assert_eq!(w.suite(), SuiteKind::Huggingface);
        }
    }

    #[test]
    fn scale_controls_size() {
        let small = huggingface_suite(1, HuggingfaceScale::custom(0.005));
        let large = huggingface_suite(1, HuggingfaceScale::custom(0.05));
        let n_small: usize = small.iter().map(|w| w.num_invocations()).sum();
        let n_large: usize = large.iter().map(|w| w.num_invocations()).sum();
        assert!(n_large > 3 * n_small, "{n_large} vs {n_small}");
    }

    #[test]
    fn default_scale_is_substantial() {
        // At the default repro scale each decoder workload should exceed
        // 100k calls — enough for the CLT regime STEM exploits.
        let suite = huggingface_suite(1, HuggingfaceScale::default_repro());
        let gpt2 = suite.iter().find(|w| w.name() == "gpt2").expect("gpt2");
        assert!(
            gpt2.num_invocations() > 100_000,
            "gpt2 has {} calls",
            gpt2.num_invocations()
        );
    }

    #[test]
    fn decoder_has_prefill_and_decode_contexts() {
        let suite = huggingface_suite(1, HuggingfaceScale::test());
        let gpt2 = suite.iter().find(|w| w.name() == "gpt2").expect("gpt2");
        // qkv kernel (id 0) has two contexts and both appear in the stream.
        let mut seen = [false; 2];
        for inv in gpt2.invocations() {
            if inv.kernel.index() == 0 {
                seen[inv.context as usize] = true;
            }
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn decode_attention_work_grows() {
        let suite = huggingface_suite(1, HuggingfaceScale::test());
        let gpt2 = suite.iter().find(|w| w.name() == "gpt2").expect("gpt2");
        let attn_id = gpt2
            .kernels()
            .iter()
            .position(|k| k.name == "flash_attn_fwd")
            .expect("attn kernel");
        let works: Vec<f32> = gpt2
            .invocations()
            .iter()
            .filter(|i| i.kernel.index() == attn_id && i.context == 1)
            .map(|i| i.work_scale)
            .collect();
        let min = works.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = works.iter().cloned().fold(0.0f32, f32::max);
        assert!(max > 1.5 * min, "kv growth missing: {min}..{max}");
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn zero_scale_rejected() {
        HuggingfaceScale::custom(0.0);
    }

    #[test]
    fn paper_scale_factor() {
        assert_eq!(HuggingfaceScale::paper().factor(), 1.0);
    }
}
