//! Synthetic Rodinia 3.1: 13 small, irregular GPGPU workloads.
//!
//! Each workload reproduces the specific irregularity the paper uses it
//! for (Sec. 5.1):
//!
//! * `gaussian` — the same kernels are invoked repeatedly for Gaussian
//!   elimination but the executed work decreases steadily, approaching zero
//!   in later iterations.
//! * `heartwall` — the first invocation is much shorter; subsequent
//!   invocations execute roughly 1500x more instructions (first-
//!   chronological samplers underestimate total time by ~99.9%).
//! * `pf_float` / `pf_naive` — certain kernels are up to 100x longer than
//!   others.
//! * `bfs` — frontier sizes rise and fall across levels, so per-invocation
//!   work varies widely.

use crate::builder::WorkloadSource;
use crate::context::{ContextSchedule, RuntimeContext};
use crate::kernel::{InstructionMix, KernelClassBuilder};
use crate::trace::{SuiteKind, Workload};

use super::ml;

/// Generates all 13 Rodinia workloads. `seed` drives every random draw.
pub fn rodinia_suite(seed: u64) -> Vec<Workload> {
    rodinia_sources(seed)
        .iter()
        .map(WorkloadSource::materialize)
        .collect()
}

/// The 13 Rodinia workloads as deferred [`WorkloadSource`]s — the
/// block-streaming counterpart of [`rodinia_suite`], generating
/// identical content (same RNG stream, same fingerprints).
pub fn rodinia_sources(seed: u64) -> Vec<WorkloadSource> {
    vec![
        backprop(seed ^ 0x01),
        bfs(seed ^ 0x02),
        btree(seed ^ 0x03),
        cfd(seed ^ 0x04),
        gaussian(seed ^ 0x05),
        heartwall(seed ^ 0x06),
        hotspot(seed ^ 0x07),
        kmeans(seed ^ 0x08),
        lud(seed ^ 0x09),
        nw(seed ^ 0x0a),
        pf_float(seed ^ 0x0b),
        pf_naive(seed ^ 0x0c),
        srad(seed ^ 0x0d),
    ]
}

fn backprop(seed: u64) -> WorkloadSource {
    WorkloadSource::new("backprop", SuiteKind::Rodinia, seed, move |b| {
        let fwd = b.add_kernel(
            KernelClassBuilder::new("bpnn_layerforward")
                .geometry(256, 256)
                .instructions(24_000)
                .mix(InstructionMix::compute_bound())
                .memory(32 << 20, 4.0)
                .bbv(vec![1.0, 6.0, 4.0, 1.0])
                .build(),
            ml::stable_context(0.04),
        );
        let adj = b.add_kernel(
            KernelClassBuilder::new("bpnn_adjust_weights")
                .geometry(256, 256)
                .instructions(17_600)
                .mix(InstructionMix::streaming())
                .memory(32 << 20, 1.5)
                .bbv(vec![1.0, 5.0, 2.0])
                .build(),
            ml::stable_context(0.06),
        );
        for _ in 0..400 {
            b.invoke(fwd, 0, 1.0);
            b.invoke(adj, 0, 1.0);
        }
    })
}

fn bfs(seed: u64) -> WorkloadSource {
    WorkloadSource::new("bfs", SuiteKind::Rodinia, seed, move |b| {
        let k1 = b.add_kernel(
            KernelClassBuilder::new("bfs_kernel")
                .geometry(512, 256)
                .instructions(3_200)
                .mix(InstructionMix::irregular())
                .memory(256 << 20, 1.0)
                .bbv(vec![1.0, 4.0, 2.0, 2.0])
                .build(),
            ml::wide_context(0.25),
        );
        let k2 = b.add_kernel(
            KernelClassBuilder::new("bfs_kernel2")
                .geometry(512, 256)
                .instructions(1_200)
                .mix(InstructionMix::irregular())
                .memory(256 << 20, 1.0)
                .bbv(vec![1.0, 2.0])
                .build(),
            ml::wide_context(0.25),
        );
        // Frontier grows geometrically then collapses: classic BFS level sizes.
        let levels = 24usize;
        for level in 0..levels {
            let x = level as f64 / levels as f64;
            // Rise to a peak at ~40% depth, then decay.
            let frontier = (x / 0.4).min((1.0 - x) / 0.6).max(1e-3);
            // Each launch still scans the whole vertex array; only part of the
            // work is frontier-proportional, so per-launch work floors at ~5%.
            let w = frontier.powi(2).max(0.05) as f32;
            for _ in 0..20 {
                b.invoke(k1, 0, w);
                b.invoke(k2, 0, w);
            }
        }
    })
}

fn btree(seed: u64) -> WorkloadSource {
    WorkloadSource::new("b+tree", SuiteKind::Rodinia, seed, move |b| {
        let find_k = b.add_kernel(
            KernelClassBuilder::new("findK")
                .geometry(1024, 256)
                .instructions(2_800)
                .mix(InstructionMix::irregular())
                .memory(128 << 20, 1.0)
                .bbv(vec![1.0, 3.0, 3.0])
                .build(),
            ml::wide_context(0.15),
        );
        let find_range = b.add_kernel(
            KernelClassBuilder::new("findRangeK")
                .geometry(1024, 256)
                .instructions(4_160)
                .mix(InstructionMix::irregular())
                .memory(128 << 20, 1.0)
                .bbv(vec![1.0, 3.0, 4.0, 1.0])
                .build(),
            ml::wide_context(0.15),
        );
        b.schedule(find_k, &ContextSchedule::Cyclic, 400);
        b.schedule(find_range, &ContextSchedule::Cyclic, 400);
    })
}

fn cfd(seed: u64) -> WorkloadSource {
    WorkloadSource::new("cfd", SuiteKind::Rodinia, seed, move |b| {
        let step = b.add_kernel(
            KernelClassBuilder::new("cuda_compute_step_factor")
                .geometry(759, 192)
                .instructions(4_800)
                .mix(InstructionMix::streaming())
                .memory(96 << 20, 1.2)
                .bbv(vec![1.0, 4.0])
                .build(),
            ml::stable_context(0.05),
        );
        let flux = b.add_kernel(
            KernelClassBuilder::new("cuda_compute_flux")
                .geometry(759, 192)
                .instructions(38_400)
                .mix(InstructionMix::new(0.45, 0.0, 0.20, 0.25, 0.02, 0.05, 0.03))
                .memory(96 << 20, 2.0)
                .bbv(vec![1.0, 9.0, 6.0, 3.0, 1.0])
                .build(),
            ml::stable_context(0.08),
        );
        let ts = b.add_kernel(
            KernelClassBuilder::new("cuda_time_step")
                .geometry(759, 192)
                .instructions(2_400)
                .mix(InstructionMix::streaming())
                .memory(96 << 20, 1.0)
                .bbv(vec![1.0, 2.0])
                .build(),
            ml::stable_context(0.05),
        );
        for _ in 0..1000 {
            b.invoke(step, 0, 1.0);
            b.invoke(flux, 0, 1.0);
            b.invoke(ts, 0, 1.0);
        }
    })
}

fn gaussian(seed: u64) -> WorkloadSource {
    WorkloadSource::new("gaussian", SuiteKind::Rodinia, seed, move |b| {
        let fan1 = b.add_kernel(
            KernelClassBuilder::new("Fan1")
                .geometry(4, 512)
                .instructions(7_200)
                .mix(InstructionMix::streaming())
                .memory(16 << 20, 1.0)
                // Prologue block + work-proportional loop body.
                .bbv(vec![1.0, 6.0])
                .build(),
            ml::stable_context(0.05),
        );
        let fan2 = b.add_kernel(
            KernelClassBuilder::new("Fan2")
                .geometry(256, 256)
                .instructions(12_800)
                .mix(InstructionMix::new(0.40, 0.0, 0.25, 0.25, 0.0, 0.07, 0.03))
                .memory(16 << 20, 1.5)
                .bbv(vec![1.0, 8.0, 2.0])
                .build(),
            ml::stable_context(0.05),
        );
        // Executed work shrinks quadratically toward zero across iterations.
        let n = 510usize;
        for i in 0..n {
            let remaining = (n - i) as f64 / n as f64;
            let w = (remaining * remaining).max(1e-4) as f32;
            b.invoke(fan1, 0, remaining.max(1e-4) as f32);
            b.invoke(fan2, 0, w);
        }
    })
}

fn heartwall(seed: u64) -> WorkloadSource {
    WorkloadSource::new("heartwall", SuiteKind::Rodinia, seed, move |b| {
        let k = b.add_kernel(
            KernelClassBuilder::new("heartwall_kernel")
                .geometry(51, 512)
                .instructions(9_600_000)
                .mix(InstructionMix::compute_bound())
                .memory(64 << 20, 8.0)
                .bbv(vec![1.0, 12.0, 8.0, 5.0, 1.0])
                .build(),
            ml::stable_context(0.04),
        );
        // First invocation executes ~1500x fewer instructions than the rest.
        b.invoke(k, 0, 1.0 / 1500.0);
        for _ in 0..103 {
            b.invoke(k, 0, 1.0);
        }
    })
}

fn hotspot(seed: u64) -> WorkloadSource {
    WorkloadSource::new("hotspot", SuiteKind::Rodinia, seed, move |b| {
        let k = b.add_kernel(
            KernelClassBuilder::new("calculate_temp")
                .geometry(1849, 256)
                .instructions(8_800)
                .mix(InstructionMix::new(0.40, 0.0, 0.20, 0.20, 0.12, 0.05, 0.03))
                .memory(48 << 20, 3.0)
                .bbv(vec![1.0, 7.0, 3.0])
                .build(),
            ml::stable_context(0.05),
        );
        b.schedule(k, &ContextSchedule::Cyclic, 2000);
    })
}

fn kmeans(seed: u64) -> WorkloadSource {
    WorkloadSource::new("kmeans", SuiteKind::Rodinia, seed, move |b| {
        let invert = b.add_kernel(
            KernelClassBuilder::new("invert_mapping")
                .geometry(1936, 256)
                .instructions(2_000)
                .mix(InstructionMix::streaming())
                .memory(128 << 20, 1.0)
                .bbv(vec![1.0, 2.0])
                .build(),
            ml::stable_context(0.06),
        );
        let point = b.add_kernel(
            KernelClassBuilder::new("kmeansPoint")
                .geometry(1936, 256)
                .instructions(22_400)
                .mix(InstructionMix::new(0.35, 0.0, 0.25, 0.30, 0.02, 0.05, 0.03))
                .memory(128 << 20, 2.0)
                .bbv(vec![1.0, 8.0, 3.0, 1.0])
                .build(),
            ml::wide_context(0.12),
        );
        b.invoke(invert, 0, 1.0);
        b.schedule(point, &ContextSchedule::Cyclic, 48);
    })
}

fn lud(seed: u64) -> WorkloadSource {
    WorkloadSource::new("lud", SuiteKind::Rodinia, seed, move |b| {
        let diag = b.add_kernel(
            KernelClassBuilder::new("lud_diagonal")
                .geometry(1, 256)
                .instructions(48_000)
                .mix(InstructionMix::compute_bound())
                .memory(1 << 20, 8.0)
                .bbv(vec![1.0, 10.0, 4.0])
                .build(),
            ml::stable_context(0.04),
        );
        let peri = b.add_kernel(
            KernelClassBuilder::new("lud_perimeter")
                .geometry(64, 256)
                .instructions(28_000)
                .mix(InstructionMix::compute_bound())
                .memory(8 << 20, 6.0)
                .bbv(vec![1.0, 8.0, 5.0])
                .build(),
            ml::stable_context(0.04),
        );
        let internal = b.add_kernel(
            KernelClassBuilder::new("lud_internal")
                .geometry(4096, 256)
                .instructions(16_000)
                .mix(InstructionMix::compute_bound())
                .memory(64 << 20, 10.0)
                .bbv(vec![1.0, 9.0, 6.0, 1.0])
                .build(),
            ml::stable_context(0.05),
        );
        // Like gaussian, the internal block count shrinks quadratically.
        let n = 128usize;
        for i in 0..n {
            let remaining = (n - i) as f64 / n as f64;
            b.invoke(diag, 0, 1.0);
            b.invoke(peri, 0, remaining.max(1e-3) as f32);
            b.invoke(internal, 0, (remaining * remaining).max(1e-4) as f32);
        }
    })
}

fn nw(seed: u64) -> WorkloadSource {
    WorkloadSource::new("nw", SuiteKind::Rodinia, seed, move |b| {
        let k1 = b.add_kernel(
            KernelClassBuilder::new("needle_cuda_shared_1")
                .geometry(256, 64)
                .instructions(19_200)
                .mix(InstructionMix::new(0.20, 0.0, 0.35, 0.20, 0.15, 0.07, 0.03))
                .memory(32 << 20, 2.0)
                .bbv(vec![1.0, 6.0, 4.0])
                .build(),
            ml::stable_context(0.06),
        );
        let k2 = b.add_kernel(
            KernelClassBuilder::new("needle_cuda_shared_2")
                .geometry(256, 64)
                .instructions(19_200)
                .mix(InstructionMix::new(0.20, 0.0, 0.35, 0.20, 0.15, 0.07, 0.03))
                .memory(32 << 20, 2.0)
                .bbv(vec![1.0, 4.0, 6.0])
                .build(),
            ml::stable_context(0.06),
        );
        // Anti-diagonal wavefront: work ramps up then down.
        let n = 256usize;
        for i in 0..n {
            let w = ((i + 1).min(n - i) as f64 / (n / 2) as f64).max(1e-3) as f32;
            b.invoke(k1, 0, w);
        }
        for i in 0..n {
            let w = ((i + 1).min(n - i) as f64 / (n / 2) as f64).max(1e-3) as f32;
            b.invoke(k2, 0, w);
        }
    })
}

fn pathfinder(name: &str, seed: u64, long_instr: u64) -> WorkloadSource {
    WorkloadSource::new(name, SuiteKind::Rodinia, seed, move |b| {
        let short = b.add_kernel(
            KernelClassBuilder::new("dynproc_kernel_short")
                .geometry(463, 256)
                .instructions(6_400)
                .mix(InstructionMix::new(0.20, 0.0, 0.35, 0.25, 0.10, 0.07, 0.03))
                .memory(24 << 20, 1.5)
                .bbv(vec![1.0, 4.0, 2.0])
                .build(),
            ml::stable_context(0.07),
        );
        // The long variant executes up to ~100x more instructions.
        let long = b.add_kernel(
            KernelClassBuilder::new("dynproc_kernel_long")
                .geometry(463, 256)
                .instructions(long_instr)
                .mix(InstructionMix::new(0.20, 0.0, 0.35, 0.25, 0.10, 0.07, 0.03))
                .memory(24 << 20, 1.5)
                .bbv(vec![1.0, 4.0, 2.0, 2.0])
                .build(),
            ml::stable_context(0.07),
        );
        for i in 0..1500 {
            if i % 25 == 24 {
                b.invoke(long, 0, 1.0);
            } else {
                b.invoke(short, 0, 1.0);
            }
        }
    })
}

fn pf_float(seed: u64) -> WorkloadSource {
    pathfinder("pf_float", seed, 640_000)
}

fn pf_naive(seed: u64) -> WorkloadSource {
    pathfinder("pf_naive", seed, 512_000)
}

fn srad(seed: u64) -> WorkloadSource {
    WorkloadSource::new("srad", SuiteKind::Rodinia, seed, move |b| {
        let srad1 = b.add_kernel(
            KernelClassBuilder::new("srad_cuda_1")
                .geometry(1024, 256)
                .instructions(12_000)
                .mix(InstructionMix::new(0.40, 0.0, 0.20, 0.25, 0.05, 0.07, 0.03))
                .memory(64 << 20, 2.0)
                .bbv(vec![1.0, 6.0, 3.0])
                .build(),
            ml::stable_context(0.06),
        );
        let srad2 = b.add_kernel(
            KernelClassBuilder::new("srad_cuda_2")
                .geometry(1024, 256)
                .instructions(10_400)
                .mix(InstructionMix::new(0.40, 0.0, 0.20, 0.25, 0.05, 0.07, 0.03))
                .memory(64 << 20, 2.0)
                .bbv(vec![1.0, 5.0, 4.0])
                .build(),
            ml::stable_context(0.06),
        );
        for _ in 0..1000 {
            b.invoke(srad1, 0, 1.0);
            b.invoke(srad2, 0, 1.0);
        }
    })
}

/// One small reusable context: kernels with two locality usages (used by a
/// couple of workloads' tests).
#[allow(dead_code)]
fn two_locality_contexts() -> Vec<RuntimeContext> {
    vec![
        RuntimeContext::neutral().with_locality(2.0).with_jitter(0.05),
        RuntimeContext::neutral().with_locality(0.5).with_jitter(0.15),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_workloads() {
        let suite = rodinia_suite(7);
        assert_eq!(suite.len(), 13);
        let names: Vec<&str> = suite.iter().map(|w| w.name()).collect();
        assert!(names.contains(&"gaussian"));
        assert!(names.contains(&"heartwall"));
        assert!(names.contains(&"pf_float"));
        assert!(names.contains(&"pf_naive"));
    }

    #[test]
    fn all_marked_rodinia() {
        for w in rodinia_suite(7) {
            assert_eq!(w.suite(), SuiteKind::Rodinia);
            assert!(w.num_invocations() > 0, "{} is empty", w.name());
        }
    }

    #[test]
    fn average_call_count_is_paper_scale() {
        let suite = rodinia_suite(7);
        let avg: f64 = suite.iter().map(|w| w.num_invocations() as f64).sum::<f64>()
            / suite.len() as f64;
        // Paper Table 2: avg 1403 kernel calls. Accept the right magnitude.
        assert!(avg > 500.0 && avg < 3000.0, "avg = {avg}");
    }

    #[test]
    fn gaussian_work_shrinks() {
        let suite = rodinia_suite(7);
        let g = suite.iter().find(|w| w.name() == "gaussian").expect("gaussian");
        let first = g.invocations().first().expect("nonempty").work_scale;
        let last = g.invocations().last().expect("nonempty").work_scale;
        assert!(first > 100.0 * last, "first {first} last {last}");
    }

    #[test]
    fn heartwall_first_call_tiny() {
        let suite = rodinia_suite(7);
        let h = suite.iter().find(|w| w.name() == "heartwall").expect("heartwall");
        let first = h.invocations()[0].work_scale as f64;
        let second = h.invocations()[1].work_scale as f64;
        assert!((second / first - 1500.0).abs() < 1.0);
    }

    #[test]
    fn pathfinder_has_long_outliers() {
        let suite = rodinia_suite(7);
        let p = suite.iter().find(|w| w.name() == "pf_float").expect("pf_float");
        let instr: Vec<u64> = p
            .invocations()
            .iter()
            .map(|inv| p.kernel_of(inv).instr_per_thread)
            .collect();
        let max = *instr.iter().max().expect("nonempty");
        let min = *instr.iter().min().expect("nonempty");
        assert!(max / min >= 100);
    }

    #[test]
    fn bfs_work_rises_and_falls() {
        let suite = rodinia_suite(7);
        let b = suite.iter().find(|w| w.name() == "bfs").expect("bfs");
        let works: Vec<f32> = b.invocations().iter().map(|i| i.work_scale).collect();
        let peak = works.iter().cloned().fold(0.0f32, f32::max);
        assert!(works[0] < peak / 10.0);
        assert!(*works.last().expect("nonempty") < peak / 10.0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(rodinia_suite(9), rodinia_suite(9));
    }

    #[test]
    fn different_seeds_differ() {
        let a = rodinia_suite(1);
        let b = rodinia_suite(2);
        // Same structure, different jitter draws.
        assert_eq!(a.len(), b.len());
        assert_ne!(
            a[0].invocations()[0].noise_z,
            b[0].invocations()[0].noise_z
        );
    }
}
