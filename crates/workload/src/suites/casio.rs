//! Synthetic CASIO: 11 state-of-the-art ML workloads.
//!
//! The CASIO suite averages ~64k kernel calls per workload (paper Table 2),
//! with the runtime heterogeneity of Figure 1: `sgemm_128x64_nn` with
//! multiple narrow peaks, `bn_fw_inf` with three clearly separated peaks,
//! `max_pool` with a wide memory-bound spread, and DLRM's embedding
//! gathers with very wide random-access jitter.

use crate::builder::{WorkloadBuilder, WorkloadSource};
use crate::context::{ContextSchedule, RuntimeContext};
use crate::invocation::KernelId;
use crate::trace::{SuiteKind, Workload};

use super::ml::{self, GemmSize};

/// Generates all 11 CASIO workloads.
pub fn casio_suite(seed: u64) -> Vec<Workload> {
    casio_sources(seed)
        .iter()
        .map(WorkloadSource::materialize)
        .collect()
}

/// The 11 CASIO workloads as deferred [`WorkloadSource`]s — the
/// block-streaming counterpart of [`casio_suite`], generating identical
/// content (same RNG stream, same fingerprints).
pub fn casio_sources(seed: u64) -> Vec<WorkloadSource> {
    vec![
        bert(seed ^ 0x11, "bert_infer", false),
        bert(seed ^ 0x12, "bert_train", true),
        dlrm(seed ^ 0x13, "dlrm_infer", false),
        dlrm(seed ^ 0x14, "dlrm_train", true),
        muzero(seed ^ 0x15),
        resnet50(seed ^ 0x16, "resnet50_infer", false),
        resnet50(seed ^ 0x17, "resnet50_train", true),
        ssdrn34(seed ^ 0x18, "ssdrn34_infer", false),
        ssdrn34(seed ^ 0x19, "ssdrn34_train", true),
        unet(seed ^ 0x1a, "unet_infer", false),
        unet(seed ^ 0x1b, "unet_train", true),
    ]
}

/// Common CNN backbone kernels: conv via winograd/implicit GEMM, batchnorm
/// with three usage peaks, pooling with wide jitter, elementwise glue.
struct CnnKernels {
    winograd: KernelId,
    sgemm: KernelId,
    bn: KernelId,
    pool: KernelId,
    relu: KernelId,
}

fn add_cnn_kernels(b: &mut WorkloadBuilder, train: bool) -> CnnKernels {
    let jitter = if train { 0.06 } else { 0.04 };
    let winograd = b.add_kernel(
        ml::tensor_gemm("winograd_fwd_4x4", GemmSize::Large),
        // Early layers (large activations, poor cache) vs late layers.
        ml::two_peak_contexts(2.4, jitter),
    );
    let sgemm = b.add_kernel(
        ml::gemm("sgemm_128x64_nn", GemmSize::Medium),
        // Multiple narrow peaks: three distinct layer shapes use the same
        // GEMM tile (Figure 1).
        ml::three_peak_contexts(0.03),
    );
    let bn = b.add_kernel(
        ml::norm("bn_fw_inf_CUDNN", 256),
        // Three clearly separated peaks (Figure 1's bn_fw_inf).
        ml::three_peak_contexts(0.025),
    );
    let pool = b.add_kernel(
        ml::pool("max_pool_fw_4d", 192),
        // Wide memory-bound spread (Figure 1's max_pool).
        vec![RuntimeContext::neutral()
            .with_locality(0.45)
            .with_jitter(0.28)],
    );
    let relu = b.add_kernel(ml::elementwise("relu_fw", 256), ml::stable_context(0.02));
    CnnKernels {
        winograd,
        sgemm,
        bn,
        pool,
        relu,
    }
}

fn drive_cnn(b: &mut WorkloadBuilder, k: &CnnKernels, iterations: usize, train: bool) {
    let bn_schedule = ContextSchedule::Weighted(vec![3.0, 2.0, 1.0]);
    let gemm_schedule = ContextSchedule::Weighted(vec![2.0, 2.0, 1.0]);
    let wino_schedule = ContextSchedule::Weighted(vec![1.0, 1.0]);
    for _ in 0..iterations {
        b.schedule(k.winograd, &wino_schedule, 8);
        b.schedule(k.sgemm, &gemm_schedule, 12);
        b.schedule(k.bn, &bn_schedule, 16);
        b.schedule(k.pool, &ContextSchedule::Cyclic, 4);
        b.schedule(k.relu, &ContextSchedule::Cyclic, 16);
        if train {
            // Backward passes revisit the same kernels with heavier work.
            b.schedule(k.winograd, &wino_schedule, 8);
            b.schedule(k.sgemm, &gemm_schedule, 12);
            b.schedule(k.bn, &bn_schedule, 8);
        }
    }
}

fn resnet50(seed: u64, name: &str, train: bool) -> WorkloadSource {
    WorkloadSource::new(name, SuiteKind::Casio, seed, move |b| {
        let k = add_cnn_kernels(b, train);
        let iterations = if train { 700 } else { 1000 };
        drive_cnn(b, &k, iterations, train);
    })
}

fn ssdrn34(seed: u64, name: &str, train: bool) -> WorkloadSource {
    WorkloadSource::new(name, SuiteKind::Casio, seed, move |b| {
        let k = add_cnn_kernels(b, train);
        // Detection head adds NMS-style irregular kernels.
        let nms = b.add_kernel(
            crate::kernel::KernelClassBuilder::new("nms_kernel")
                .geometry(64, 256)
                .instructions(1_800)
                .mix(crate::kernel::InstructionMix::irregular())
                .memory(16 << 20, 1.0)
                .bbv(vec![1.0, 5.0, 3.0, 2.0])
                .build(),
            ml::wide_context(0.30),
        );
        let iterations = if train { 500 } else { 700 };
        for i in 0..iterations {
            drive_cnn(b, &k, 1, train);
            if i % 2 == 0 {
                b.schedule(nms, &ContextSchedule::Cyclic, 6);
            }
        }
    })
}

fn unet(seed: u64, name: &str, train: bool) -> WorkloadSource {
    WorkloadSource::new(name, SuiteKind::Casio, seed, move |b| {
        let k = add_cnn_kernels(b, train);
        let upconv = b.add_kernel(
            ml::conv("upconv_2d_fw", 512, 14_000),
            ml::two_peak_contexts(1.8, 0.05),
        );
        let iterations = if train { 550 } else { 800 };
        for _ in 0..iterations {
            drive_cnn(b, &k, 1, train);
            b.schedule(upconv, &ContextSchedule::Weighted(vec![1.0, 1.0]), 6);
        }
    })
}

fn bert(seed: u64, name: &str, train: bool) -> WorkloadSource {
    WorkloadSource::new(name, SuiteKind::Casio, seed, move |b| {
        let qkv = b.add_kernel(
            ml::gemm("sgemm_qkv_128x128", GemmSize::Large),
            // Sequence-length buckets create distinct peaks.
            ml::three_peak_contexts(0.03),
        );
        let attn = b.add_kernel(
            ml::softmax("softmax_fwd_attn", 128),
            vec![RuntimeContext::neutral()
                .with_locality(0.8)
                .with_jitter(0.12)],
        );
        let ffn = b.add_kernel(
            ml::gemm("sgemm_ffn_256x128", GemmSize::Large),
            ml::two_peak_contexts(2.0, 0.03),
        );
        let ln = b.add_kernel(ml::norm("layer_norm_fwd", 128), ml::stable_context(0.03));
        let gelu = b.add_kernel(ml::elementwise("gelu_fwd", 128), ml::stable_context(0.02));
        let layers = 24usize;
        let steps = if train { 180 } else { 260 };
        for _ in 0..steps {
            for _ in 0..layers {
                b.schedule(qkv, &ContextSchedule::Weighted(vec![3.0, 2.0, 1.0]), 4);
                b.schedule(attn, &ContextSchedule::Cyclic, 2);
                b.schedule(ffn, &ContextSchedule::Weighted(vec![2.0, 1.0]), 2);
                b.schedule(ln, &ContextSchedule::Cyclic, 2);
                b.schedule(gelu, &ContextSchedule::Cyclic, 1);
                if train {
                    b.schedule(qkv, &ContextSchedule::Weighted(vec![3.0, 2.0, 1.0]), 2);
                    b.schedule(ffn, &ContextSchedule::Weighted(vec![2.0, 1.0]), 2);
                }
            }
        }
    })
}

fn dlrm(seed: u64, name: &str, train: bool) -> WorkloadSource {
    WorkloadSource::new(name, SuiteKind::Casio, seed, move |b| {
        // Embedding gathers dominate: random access over multi-GiB tables,
        // extremely wide jitter, poor locality (Fig. 13's dlrm discussion).
        let embed = b.add_kernel(
            ml::embedding("embedding_bag_fwd", 256),
            vec![
                RuntimeContext::neutral()
                    .with_locality(0.15)
                    .with_jitter(0.45),
                RuntimeContext::neutral()
                    .with_locality(0.35)
                    .with_footprint(0.5)
                    .with_jitter(0.30),
            ],
        );
        let bottom_mlp = b.add_kernel(
            ml::gemm("sgemm_bottom_mlp", GemmSize::Small),
            ml::stable_context(0.03),
        );
        let top_mlp = b.add_kernel(
            ml::gemm("sgemm_top_mlp", GemmSize::Medium),
            ml::two_peak_contexts(1.6, 0.04),
        );
        let interact = b.add_kernel(
            ml::softmax("feature_interaction", 96),
            ml::stable_context(0.05),
        );
        let steps = if train { 5200 } else { 7000 };
        for _ in 0..steps {
            b.schedule(embed, &ContextSchedule::Weighted(vec![3.0, 1.0]), 4);
            b.schedule(bottom_mlp, &ContextSchedule::Cyclic, 2);
            b.schedule(interact, &ContextSchedule::Cyclic, 1);
            b.schedule(top_mlp, &ContextSchedule::Weighted(vec![2.0, 1.0]), 2);
            if train {
                b.schedule(embed, &ContextSchedule::Weighted(vec![3.0, 1.0]), 2);
                b.schedule(top_mlp, &ContextSchedule::Weighted(vec![2.0, 1.0]), 1);
            }
        }
    })
}

fn muzero(seed: u64) -> WorkloadSource {
    WorkloadSource::new("muzero", SuiteKind::Casio, seed, move |b| {
        let repr = b.add_kernel(
            ml::conv("conv_representation", 256, 8_000),
            ml::two_peak_contexts(1.5, 0.05),
        );
        let dynamics = b.add_kernel(
            ml::gemm("sgemm_dynamics", GemmSize::Small),
            ml::stable_context(0.04),
        );
        let policy = b.add_kernel(
            ml::gemm("sgemm_policy_head", GemmSize::Small),
            ml::stable_context(0.04),
        );
        let bn = b.add_kernel(ml::norm("bn_fw_inf_CUDNN", 128), ml::three_peak_contexts(0.03));
        // MCTS rollouts: many tiny inference steps.
        for _ in 0..4200 {
            b.schedule(repr, &ContextSchedule::Weighted(vec![1.0, 1.0]), 1);
            b.schedule(dynamics, &ContextSchedule::Cyclic, 5);
            b.schedule(policy, &ContextSchedule::Cyclic, 2);
            b.schedule(bn, &ContextSchedule::Weighted(vec![2.0, 2.0, 1.0]), 4);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_workloads() {
        let suite = casio_suite(3);
        assert_eq!(suite.len(), 11);
        for w in &suite {
            assert_eq!(w.suite(), SuiteKind::Casio);
        }
    }

    #[test]
    fn call_counts_are_paper_scale() {
        let suite = casio_suite(3);
        let avg: f64 = suite.iter().map(|w| w.num_invocations() as f64).sum::<f64>()
            / suite.len() as f64;
        // Paper Table 2: avg 64279 calls. Accept the right magnitude.
        assert!(avg > 20_000.0 && avg < 150_000.0, "avg = {avg}");
        for w in &suite {
            assert!(
                w.num_invocations() > 10_000,
                "{} has only {} calls",
                w.name(),
                w.num_invocations()
            );
        }
    }

    #[test]
    fn bn_kernel_has_three_contexts() {
        let suite = casio_suite(3);
        let r = suite.iter().find(|w| w.name() == "resnet50_infer").expect("resnet");
        let bn_id = r
            .kernels()
            .iter()
            .position(|k| k.name.starts_with("bn_fw_inf"))
            .expect("bn kernel");
        assert_eq!(r.contexts_of(crate::invocation::KernelId(bn_id as u32)).len(), 3);
    }

    #[test]
    fn dlrm_embedding_has_wide_jitter() {
        let suite = casio_suite(3);
        let d = suite.iter().find(|w| w.name() == "dlrm_infer").expect("dlrm");
        let embed_id = d
            .kernels()
            .iter()
            .position(|k| k.name.starts_with("embedding"))
            .expect("embedding kernel");
        let ctxs = d.contexts_of(crate::invocation::KernelId(embed_id as u32));
        assert!(ctxs.iter().any(|c| c.jitter_cov >= 0.4));
    }

    #[test]
    fn train_variants_have_more_calls_per_step() {
        let suite = casio_suite(3);
        let find = |n: &str| suite.iter().find(|w| w.name() == n).expect("workload");
        // bert train uses fewer steps but more calls per step; just sanity-
        // check both are populated and distinct.
        assert_ne!(
            find("bert_infer").num_invocations(),
            find("bert_train").num_invocations()
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(casio_suite(5).len(), casio_suite(5).len());
        let a = casio_suite(5);
        let b = casio_suite(5);
        assert_eq!(a[0], b[0]);
    }
}
