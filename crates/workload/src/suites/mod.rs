//! Synthetic equivalents of the paper's three benchmark suites.
//!
//! Each generator programs the runtime-heterogeneity structure the paper
//! reports for its suite (Sec. 2.1, Sec. 5.1) — the structure every
//! sampling result depends on — while staying fully synthetic and seeded:
//!
//! * [`rodinia_suite`] — 13 small irregular GPGPU workloads. `gaussian`'s work
//!   shrinks toward zero across invocations, `heartwall`'s first call is
//!   ~1500x shorter than the rest, `pf_*` contain kernels 100x longer than
//!   their siblings, `bfs` has rising-and-falling frontier sizes.
//! * [`casio_suite`] — 11 ML workloads with ~64k kernel calls each; `sgemm` and
//!   `bn_fw_inf` kernels show multiple distinct peaks, `max_pool` and
//!   `embedding` kernels show wide memory-bound jitter.
//! * [`huggingface_suite`] — 6 LLM/ML serving workloads with up to millions of
//!   calls (scaled), dominated by repeated transformer-layer kernels with
//!   prefill/decode bimodality.

mod casio;
mod huggingface;
mod rodinia;

pub use casio::{casio_sources, casio_suite};
pub use huggingface::{huggingface_sources, huggingface_suite, HuggingfaceScale};
pub use rodinia::{rodinia_sources, rodinia_suite};

use crate::context::RuntimeContext;
use crate::kernel::{InstructionMix, KernelClass, KernelClassBuilder};

/// Shared library of ML kernel shapes used by the CASIO and HuggingFace
/// generators.
pub(crate) mod ml {
    use super::*;

    /// Size class of a GEMM-like kernel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum GemmSize {
        /// Small projection (decode-step GEMV-ish).
        Small,
        /// Mid-size layer GEMM.
        Medium,
        /// Large batched GEMM.
        Large,
    }

    /// A dense GEMM kernel (`sgemm`-style, compute bound, narrow peaks).
    pub fn gemm(name: &str, size: GemmSize) -> KernelClass {
        let (grid, instr, footprint) = match size {
            GemmSize::Small => (64, 1_500, 4 << 20),
            GemmSize::Medium => (192, 4_000, 24 << 20),
            GemmSize::Large => (512, 8_000, 96 << 20),
        };
        KernelClassBuilder::new(name)
            .geometry(grid, 256)
            .resources(96, 48 * 1024)
            .instructions(instr)
            .mix(InstructionMix::compute_bound())
            .memory(footprint, 24.0)
            .bbv(vec![1.0, 8.0, 8.0, 4.0, 2.0, 1.0])
            .build()
    }

    /// A tensor-core GEMM (`hgemm`/winograd-style).
    pub fn tensor_gemm(name: &str, size: GemmSize) -> KernelClass {
        let mut k = gemm(name, size);
        k.mix = InstructionMix::tensor_core();
        k
    }

    /// Batch-norm / layer-norm style kernel: streaming with modest reuse.
    pub fn norm(name: &str, grid: u32) -> KernelClass {
        KernelClassBuilder::new(name)
            .geometry(grid, 256)
            .resources(32, 4 * 1024)
            .instructions(900)
            .mix(InstructionMix::streaming())
            .memory(16 << 20, 2.0)
            .bbv(vec![1.0, 4.0, 2.0, 1.0])
            .build()
    }

    /// Pooling kernel: memory bound, wide jitter (Figure 1's `max_pool`).
    pub fn pool(name: &str, grid: u32) -> KernelClass {
        KernelClassBuilder::new(name)
            .geometry(grid, 128)
            .resources(24, 0)
            .instructions(600)
            .mix(InstructionMix::memory_bound())
            .memory(48 << 20, 1.2)
            .bbv(vec![1.0, 6.0, 3.0])
            .build()
    }

    /// Elementwise kernel (bias add, residual add, activation): streaming,
    /// very stable.
    pub fn elementwise(name: &str, grid: u32) -> KernelClass {
        KernelClassBuilder::new(name)
            .geometry(grid, 256)
            .resources(16, 0)
            .instructions(220)
            .mix(InstructionMix::streaming())
            .memory(8 << 20, 1.0)
            .bbv(vec![1.0, 3.0])
            .build()
    }

    /// Softmax/attention-score kernel: mixed, moderately memory bound.
    pub fn softmax(name: &str, grid: u32) -> KernelClass {
        KernelClassBuilder::new(name)
            .geometry(grid, 128)
            .resources(40, 16 * 1024)
            .instructions(1_400)
            .mix(InstructionMix::new(0.30, 0.05, 0.20, 0.30, 0.05, 0.05, 0.05))
            .memory(12 << 20, 2.5)
            .bbv(vec![1.0, 5.0, 5.0, 2.0])
            .build()
    }

    /// Embedding-table gather: random access, strongly memory bound, very
    /// wide jitter (the DLRM signature the paper calls out in Fig. 13).
    pub fn embedding(name: &str, grid: u32) -> KernelClass {
        KernelClassBuilder::new(name)
            .geometry(grid, 128)
            .resources(24, 0)
            .instructions(500)
            .mix(InstructionMix::memory_bound())
            .memory(2 << 30, 1.0)
            .bbv(vec![1.0, 7.0])
            .build()
    }

    /// Convolution kernel (implicit-GEMM style).
    pub fn conv(name: &str, grid: u32, instr: u64) -> KernelClass {
        KernelClassBuilder::new(name)
            .geometry(grid, 256)
            .resources(128, 64 * 1024)
            .instructions(instr)
            .mix(InstructionMix::compute_bound())
            .memory(64 << 20, 12.0)
            .bbv(vec![1.0, 10.0, 10.0, 6.0, 2.0, 1.0, 0.5])
            .build()
    }

    /// Three-peak context set: the same kernel used in three places with
    /// different data residency (Figure 1's `bn_fw_inf`).
    pub fn three_peak_contexts(jitter: f64) -> Vec<RuntimeContext> {
        vec![
            RuntimeContext::neutral()
                .with_work(1.0)
                .with_locality(4.0)
                .with_jitter(jitter),
            RuntimeContext::neutral()
                .with_work(1.9)
                .with_locality(1.0)
                .with_jitter(jitter),
            RuntimeContext::neutral()
                .with_work(3.2)
                .with_locality(0.4)
                .with_jitter(jitter),
        ]
    }

    /// Two-peak context set (prefill/decode, train fwd/bwd).
    pub fn two_peak_contexts(ratio: f64, jitter: f64) -> Vec<RuntimeContext> {
        vec![
            RuntimeContext::neutral().with_work(1.0).with_jitter(jitter),
            RuntimeContext::neutral()
                .with_work(ratio)
                .with_locality(0.6)
                .with_jitter(jitter),
        ]
    }

    /// Single stable context.
    pub fn stable_context(jitter: f64) -> Vec<RuntimeContext> {
        vec![RuntimeContext::neutral().with_jitter(jitter)]
    }

    /// Single wide memory-bound context (max_pool-style).
    pub fn wide_context(jitter: f64) -> Vec<RuntimeContext> {
        vec![RuntimeContext::neutral()
            .with_locality(0.5)
            .with_jitter(jitter)]
    }
}

/// Kernel shapes for Chakra-style execution traces (multi-GPU training).
pub(crate) mod trace_kernels {
    use super::*;

    /// Forward layer compute (GEMM-dominated).
    pub fn layer_fwd() -> KernelClass {
        KernelClassBuilder::new("layer_fwd")
            .geometry(384, 256)
            .resources(96, 48 * 1024)
            .instructions(6_000)
            .mix(InstructionMix::tensor_core())
            .memory(64 << 20, 16.0)
            .bbv(vec![1.0, 8.0, 6.0, 2.0])
            .build()
    }

    /// Backward layer compute (heavier, worse locality).
    pub fn layer_bwd() -> KernelClass {
        KernelClassBuilder::new("layer_bwd")
            .geometry(384, 256)
            .resources(128, 48 * 1024)
            .instructions(7_500)
            .mix(InstructionMix::compute_bound())
            .memory(96 << 20, 10.0)
            .bbv(vec![1.0, 9.0, 7.0, 3.0])
            .build()
    }

    /// Optimizer step (streaming over parameters).
    pub fn optimizer_step() -> KernelClass {
        KernelClassBuilder::new("adam_step")
            .geometry(256, 256)
            .resources(32, 0)
            .instructions(700)
            .mix(InstructionMix::streaming())
            .memory(128 << 20, 1.0)
            .bbv(vec![1.0, 4.0])
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::ml::*;
    

    #[test]
    fn ml_kernels_validate() {
        for k in [
            gemm("g", GemmSize::Small),
            gemm("g", GemmSize::Medium),
            gemm("g", GemmSize::Large),
            tensor_gemm("t", GemmSize::Large),
            norm("n", 64),
            pool("p", 64),
            elementwise("e", 64),
            softmax("s", 64),
            embedding("em", 64),
            conv("c", 128, 9000),
        ] {
            k.validate();
        }
    }

    #[test]
    fn gemm_sizes_ordered() {
        let s = gemm("g", GemmSize::Small);
        let l = gemm("g", GemmSize::Large);
        assert!(l.total_instructions() > 10 * s.total_instructions());
    }

    #[test]
    fn context_sets_validate() {
        for ctxs in [
            three_peak_contexts(0.05),
            two_peak_contexts(2.5, 0.1),
            stable_context(0.02),
            wide_context(0.3),
        ] {
            assert!(!ctxs.is_empty());
            for c in ctxs {
                c.validate();
            }
        }
    }

    #[test]
    fn three_peaks_are_distinct() {
        let ctxs = three_peak_contexts(0.03);
        assert!(ctxs[1].work_scale / ctxs[0].work_scale > 1.5);
        assert!(ctxs[2].work_scale / ctxs[1].work_scale > 1.5);
    }
}
