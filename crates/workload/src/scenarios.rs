//! Adversarial scenario generators: workload regimes the paper never
//! tested, chosen to stress ROOT's static clustering hardest.
//!
//! The paper evaluates STEM+ROOT on three well-behaved suites whose
//! kernels keep stationary time distributions. These generators break that
//! stationarity in three distinct ways:
//!
//! * [`phase_drift`] — each kernel's runtime context *drifts* mid-stream
//!   (work grows, locality decays), so the execution-time distribution a
//!   profile sees early is systematically wrong about the late stream.
//! * [`bursty_interference`] — a noisy co-tenant periodically thrashes the
//!   cache: long calm stretches are punctuated by short bursts of
//!   cache-hostile, high-jitter execution, producing heavy-tailed
//!   per-kernel histograms.
//! * [`longtail_skew`] — two head kernels carry thousands of calls while
//!   dozens of tail kernels appear only 1–9 times each, forcing samplers
//!   to cope with many degenerate (single-member) strata.
//!
//! All three are seeded and deterministic like the [`crate::suites`]
//! generators, sized at a few thousand invocations so the tier-1 coverage
//! calibration can afford dozens of full-simulation repetitions, and
//! tagged [`SuiteKind::Custom`].

use crate::builder::WorkloadSource;
use crate::context::{ContextSchedule, RuntimeContext};
use crate::suites::ml;
use crate::trace::{SuiteKind, Workload};

/// Names of the adversarial scenarios, in [`adversarial_suite`] order.
pub const SCENARIO_NAMES: [&str; 3] = ["phase_drift", "bursty_interference", "longtail_skew"];

/// All three adversarial workloads, in [`SCENARIO_NAMES`] order.
pub fn adversarial_suite(seed: u64) -> Vec<Workload> {
    adversarial_sources(seed)
        .iter()
        .map(WorkloadSource::materialize)
        .collect()
}

/// The three adversarial workloads as deferred [`WorkloadSource`]s — the
/// block-streaming counterpart of [`adversarial_suite`], generating
/// identical content (same RNG stream, same fingerprints).
pub fn adversarial_sources(seed: u64) -> Vec<WorkloadSource> {
    vec![
        phase_drift(seed),
        bursty_interference(seed),
        longtail_skew(seed),
    ]
}

/// Looks a scenario up by its [`SCENARIO_NAMES`] entry.
pub fn scenario_by_name(name: &str, seed: u64) -> Option<Workload> {
    scenario_source_by_name(name, seed).map(|s| s.materialize())
}

/// [`scenario_by_name`], deferred: the source can stream or materialize.
pub fn scenario_source_by_name(name: &str, seed: u64) -> Option<WorkloadSource> {
    match name {
        "phase_drift" => Some(phase_drift(seed)),
        "bursty_interference" => Some(bursty_interference(seed)),
        "longtail_skew" => Some(longtail_skew(seed)),
        _ => None,
    }
}

/// Kernel time distributions shift mid-stream: every kernel walks through
/// a sequence of contexts with growing work and decaying locality, one
/// phase at a time ([`ContextSchedule::Phased`]). A sampler that trusts an
/// early prefix — or a clustering that assumes one stationary distribution
/// per kernel — sees its estimate dragged by the drift.
pub fn phase_drift(seed: u64) -> WorkloadSource {
    WorkloadSource::new("phase_drift", SuiteKind::Custom, seed ^ 0xd81f_7000, |b| {
        // A mid-size GEMM drifting through four regimes: warm cache and unit
        // work at the start, 2.1x work on a cold cache by the end.
        let gemm = b.add_kernel(
            ml::gemm("drift_gemm", ml::GemmSize::Medium),
            vec![
                RuntimeContext::neutral().with_work(1.0).with_locality(3.0).with_jitter(0.05),
                RuntimeContext::neutral().with_work(1.25).with_locality(1.8).with_jitter(0.07),
                RuntimeContext::neutral().with_work(1.6).with_locality(1.0).with_jitter(0.09),
                RuntimeContext::neutral().with_work(2.1).with_locality(0.5).with_jitter(0.12),
            ],
        );
        // Attention-score kernel whose working set falls out of cache.
        let attn = b.add_kernel(
            ml::softmax("drift_attn", 96),
            vec![
                RuntimeContext::neutral().with_work(1.0).with_locality(2.5).with_jitter(0.10),
                RuntimeContext::neutral().with_work(1.3).with_locality(1.0).with_jitter(0.10),
                RuntimeContext::neutral().with_work(1.7).with_locality(0.4).with_jitter(0.10),
            ],
        );
        // Memory-bound pooling kernel that both slows down and gets noisier.
        let pool = b.add_kernel(
            ml::pool("drift_pool", 64),
            vec![
                RuntimeContext::neutral().with_locality(1.0).with_jitter(0.15),
                RuntimeContext::neutral().with_locality(0.4).with_jitter(0.30),
            ],
        );

        b.schedule(
            gemm,
            &ContextSchedule::Phased(vec![(0, 900), (1, 900), (2, 900), (3, 900)]),
            3600,
        );
        b.schedule(
            attn,
            &ContextSchedule::Phased(vec![(0, 800), (1, 800), (2, 800)]),
            2400,
        );
        b.schedule(pool, &ContextSchedule::Phased(vec![(0, 700), (1, 700)]), 1400);
    })
}

/// A noisy co-tenant periodically evicts the cache: each kernel alternates
/// long calm phases with short bursts where locality collapses and jitter
/// explodes. Per-kernel histograms become heavy-tailed mixtures whose
/// minority mode is easy for a small sample to miss entirely.
pub fn bursty_interference(seed: u64) -> WorkloadSource {
    WorkloadSource::new(
        "bursty_interference",
        SuiteKind::Custom,
        seed ^ 0xb0b5_7000,
        |b| {
            // calm/burst context pairs: the burst context models the co-tenant
            // flushing L2 (locality collapses, footprint pressure doubles) and
            // injecting DRAM-contention jitter.
            let gemm = b.add_kernel(
                ml::gemm("tenant_gemm", ml::GemmSize::Medium),
                vec![
                    RuntimeContext::neutral().with_locality(2.5).with_jitter(0.04),
                    RuntimeContext::neutral()
                        .with_locality(0.3)
                        .with_footprint(2.0)
                        .with_jitter(0.60),
                ],
            );
            let embed = b.add_kernel(
                ml::embedding("tenant_embed", 96),
                vec![
                    RuntimeContext::neutral().with_locality(1.0).with_jitter(0.20),
                    RuntimeContext::neutral().with_locality(0.25).with_jitter(0.80),
                ],
            );
            let norm = b.add_kernel(
                ml::norm("tenant_norm", 96),
                vec![
                    RuntimeContext::neutral().with_jitter(0.03),
                    RuntimeContext::neutral().with_locality(0.5).with_jitter(0.40),
                ],
            );

            b.schedule(gemm, &ContextSchedule::Phased(vec![(0, 280), (1, 70)]), 3500);
            b.schedule(embed, &ContextSchedule::Phased(vec![(0, 160), (1, 40)]), 2000);
            b.schedule(norm, &ContextSchedule::Phased(vec![(0, 120), (1, 60)]), 1440);
        },
    )
}

/// Extreme kernel-count skew: two head kernels carry nearly all calls
/// while 28 tail kernels are launched only 1–9 times each. Name-keyed
/// stratifiers get dozens of strata whose variance is undefined or zero
/// (single member, or identical members) — the degenerate-stratum regime
/// the Neyman-allocation guard exists for.
pub fn longtail_skew(seed: u64) -> WorkloadSource {
    WorkloadSource::new("longtail_skew", SuiteKind::Custom, seed ^ 0x10f7_a110, |b| {
        let head_gemm = b.add_kernel(
            ml::gemm("head_gemm", ml::GemmSize::Large),
            ml::two_peak_contexts(2.2, 0.08),
        );
        let head_soft = b.add_kernel(ml::softmax("head_soft", 128), ml::stable_context(0.12));
        // Tail kernels registered up front (registration draws no RNG, so
        // hoisting it out of the invoke loop leaves content unchanged and
        // lets the same body run against a streaming builder, which
        // freezes the tables at the first invocation).
        let mut tails = Vec::with_capacity(28);
        for i in 0..28u64 {
            let name = format!("tail_{i:02}");
            let kernel = match i % 4 {
                0 => ml::elementwise(&name, 48),
                1 => ml::norm(&name, 48),
                2 => ml::pool(&name, 48),
                _ => ml::embedding(&name, 48),
            };
            let context = RuntimeContext::neutral()
                .with_work(1.0 + i as f64 * 0.07)
                .with_locality(if i % 2 == 0 { 0.8 } else { 1.5 })
                .with_jitter(0.05 + 0.01 * (i % 5) as f64);
            tails.push(b.add_kernel(kernel, vec![context]));
        }

        b.schedule(head_gemm, &ContextSchedule::Weighted(vec![3.0, 1.0]), 3600);
        b.schedule(head_soft, &ContextSchedule::Cyclic, 2200);
        for (i, &id) in tails.iter().enumerate() {
            // 1 + (5i mod 9) calls: several kernels appear exactly once.
            let count = 1 + (i as u64 * 5) % 9;
            for _ in 0..count {
                b.invoke(id, 0, 1.0);
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic_per_seed() {
        for name in SCENARIO_NAMES {
            let a = scenario_by_name(name, 21).expect("known scenario");
            let b = scenario_by_name(name, 21).expect("known scenario");
            assert_eq!(a, b, "{name} must be reproducible");
            let c = scenario_by_name(name, 22).expect("known scenario");
            assert_ne!(a.fingerprint(), c.fingerprint(), "{name} must vary with seed");
        }
        assert!(scenario_by_name("mystery", 1).is_none());
    }

    #[test]
    fn suite_matches_names_and_sizes_stay_test_affordable() {
        let suite = adversarial_suite(7);
        assert_eq!(suite.len(), SCENARIO_NAMES.len());
        for (w, name) in suite.iter().zip(SCENARIO_NAMES) {
            assert_eq!(w.name(), name);
            assert_eq!(w.suite(), SuiteKind::Custom);
            assert!(
                (1_000..20_000).contains(&w.num_invocations()),
                "{name}: {} invocations",
                w.num_invocations()
            );
        }
    }

    #[test]
    fn phase_drift_shifts_context_mix_between_halves() {
        let w = phase_drift(3).materialize();
        let gemm: Vec<u16> = w
            .invocations()
            .iter()
            .filter(|inv| w.kernel_of(inv).name == "drift_gemm")
            .map(|inv| inv.context)
            .collect();
        let half = gemm.len() / 2;
        let early: f64 = gemm[..half].iter().map(|&c| c as f64).sum::<f64>() / half as f64;
        let late: f64 =
            gemm[half..].iter().map(|&c| c as f64).sum::<f64>() / (gemm.len() - half) as f64;
        assert!(
            late > early + 1.0,
            "contexts must drift upward: early {early:.2}, late {late:.2}"
        );
    }

    #[test]
    fn bursts_are_a_minority_of_the_stream() {
        let w = bursty_interference(3).materialize();
        let burst = w.invocations().iter().filter(|inv| inv.context == 1).count();
        let frac = burst as f64 / w.num_invocations() as f64;
        assert!(
            (0.1..0.4).contains(&frac),
            "bursts should be a visible minority, got {frac:.2}"
        );
    }

    #[test]
    fn longtail_has_singleton_kernels_and_a_dominant_head() {
        let w = longtail_skew(3).materialize();
        let groups = w.invocations_by_kernel_name();
        let singletons = groups.values().filter(|g| g.len() == 1).count();
        assert!(singletons >= 2, "need singleton strata, got {singletons}");
        let head = groups.get("head_gemm").map(|g| g.len()).unwrap_or(0);
        assert!(
            head as f64 > 0.5 * w.num_invocations() as f64,
            "head kernel must dominate"
        );
        assert!(groups.len() >= 30, "got {} name groups", groups.len());
    }
}
