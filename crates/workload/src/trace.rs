//! The workload container: a kernel table, per-kernel context tables, and
//! the invocation stream.

use crate::context::RuntimeContext;
use crate::error::{WorkloadError, WorkloadErrorKind};
use crate::invocation::{Invocation, KernelId};
use crate::kernel::KernelClass;
use std::collections::BTreeMap;

/// Which benchmark suite a workload belongs to (drives evaluation
/// aggregation and default sampling rates for the Random baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuiteKind {
    /// Small irregular GPGPU/HPC workloads (Rodinia 3.1).
    Rodinia,
    /// State-of-the-art ML training/inference (CASIO).
    Casio,
    /// Large-scale LLM/ML serving (HuggingFace models).
    Huggingface,
    /// Hand-built workloads.
    Custom,
}

impl std::fmt::Display for SuiteKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SuiteKind::Rodinia => "rodinia",
            SuiteKind::Casio => "casio",
            SuiteKind::Huggingface => "huggingface",
            SuiteKind::Custom => "custom",
        };
        f.write_str(s)
    }
}

/// A complete GPU workload as seen by a kernel-level sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    name: String,
    suite: SuiteKind,
    kernels: Vec<KernelClass>,
    /// `contexts[k]` are the runtime contexts of kernel `k`.
    contexts: Vec<Vec<RuntimeContext>>,
    invocations: Vec<Invocation>,
    /// `group_of[i]` is the timing group of invocation `i`: invocations
    /// sharing `(kernel, context, work_scale)` are timing-identical up to
    /// their noise draw, so simulators precompute per group and stream the
    /// per-invocation jitter. Derived deterministically from `invocations`
    /// (first occurrence assigns the next id, so ids follow stream order).
    group_of: Vec<u32>,
    /// `group_representatives[g]` is the lowest invocation index in group `g`.
    group_representatives: Vec<usize>,
    /// FNV-1a 64 over the full workload content (name, suite, kernel and
    /// context tables, invocation stream), computed once at construction.
    /// Lets downstream caches key derived artifacts (profiles, clusterings)
    /// by workload identity without rehashing the stream per lookup.
    fingerprint: u64,
}

/// Incremental FNV-1a 64 fold over a workload's content, in the exact
/// byte order [`Workload::fingerprint`] uses: first the header (name,
/// suite, kernel and context tables), then each invocation's raw fields
/// in stream order. Because FNV-1a is a plain left-to-right byte fold,
/// a block-streamed workload can compute its fingerprint one invocation
/// at a time without ever materializing the stream — feeding the same
/// header and the same invocations in the same order yields the same
/// hash as the materialized constructor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FingerprintFold {
    h: u64,
}

impl FingerprintFold {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh fold at the FNV-1a offset basis.
    pub fn new() -> Self {
        FingerprintFold { h: Self::OFFSET }
    }

    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h = (self.h ^ u64::from(b)).wrapping_mul(Self::PRIME);
        }
    }

    /// Folds the workload header: name, then the `Debug` form of the
    /// suite and the kernel/context tables (f64 `Debug` is the shortest
    /// round-trip representation, so distinct values hash distinctly).
    /// Must be called exactly once, before any invocation.
    pub fn eat_header(
        &mut self,
        name: &str,
        suite: SuiteKind,
        kernels: &[KernelClass],
        contexts: &[Vec<RuntimeContext>],
    ) {
        self.eat(name.as_bytes());
        self.eat(format!("{suite:?}{kernels:?}{contexts:?}").as_bytes());
    }

    /// Folds one invocation's raw fields (`work_scale`/`noise_z` by bit
    /// pattern), in stream order.
    pub fn eat_invocation(&mut self, inv: &Invocation) {
        self.eat(&inv.kernel.0.to_le_bytes());
        self.eat(&inv.context.to_le_bytes());
        self.eat(&inv.work_scale.to_bits().to_le_bytes());
        self.eat(&inv.noise_z.to_bits().to_le_bytes());
    }

    /// The fingerprint of everything folded so far.
    pub fn finish(&self) -> u64 {
        self.h
    }
}

impl Default for FingerprintFold {
    fn default() -> Self {
        FingerprintFold::new()
    }
}

/// FNV-1a 64 content hash of a workload's defining tables — the
/// materialized entry point over [`FingerprintFold`], so the streamed
/// and in-memory fingerprints are the same fold by construction.
fn content_fingerprint(
    name: &str,
    suite: SuiteKind,
    kernels: &[KernelClass],
    contexts: &[Vec<RuntimeContext>],
    invocations: &[Invocation],
) -> u64 {
    let mut fold = FingerprintFold::new();
    fold.eat_header(name, suite, kernels, contexts);
    for inv in invocations {
        fold.eat_invocation(inv);
    }
    fold.finish()
}

/// Assigns every invocation its timing group: first occurrence of a
/// `(kernel, context, work_scale-bits)` triple mints the next group id.
fn timing_groups(invocations: &[Invocation]) -> (Vec<u32>, Vec<usize>) {
    use std::collections::HashMap;
    let mut ids: HashMap<(u32, u16, u32), u32> = HashMap::new();
    let mut group_of = Vec::with_capacity(invocations.len());
    let mut representatives = Vec::new();
    for (i, inv) in invocations.iter().enumerate() {
        let key = (inv.kernel.0, inv.context, inv.work_scale.to_bits());
        let next = representatives.len() as u32;
        let g = *ids.entry(key).or_insert(next);
        if g == next && representatives.len() == g as usize {
            representatives.push(i);
        }
        group_of.push(g);
    }
    (group_of, representatives)
}

impl Workload {
    /// Assembles and validates a workload.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] if tables are inconsistent: no kernels,
    /// context table length mismatch, kernels without contexts, invocations
    /// referencing out-of-range kernels/contexts, or invalid component
    /// values.
    pub fn try_new(
        name: impl Into<String>,
        suite: SuiteKind,
        kernels: Vec<KernelClass>,
        contexts: Vec<Vec<RuntimeContext>>,
        invocations: Vec<Invocation>,
    ) -> Result<Self, WorkloadError> {
        let name = name.into();
        let structure =
            |message: String| Err(WorkloadError::new(WorkloadErrorKind::Structure, message));
        if kernels.is_empty() {
            return structure(format!("workload {name} has no kernels"));
        }
        if kernels.len() != contexts.len() {
            return structure(format!(
                "workload {name}: one context table per kernel required \
                 ({} kernels, {} context tables)",
                kernels.len(),
                contexts.len()
            ));
        }
        for k in &kernels {
            k.try_validate()?;
        }
        for (k, ctxs) in contexts.iter().enumerate() {
            if ctxs.is_empty() {
                return structure(format!(
                    "workload {name}: kernel {} has no contexts",
                    kernels[k].name
                ));
            }
            for c in ctxs {
                c.try_validate()?;
            }
        }
        for (i, inv) in invocations.iter().enumerate() {
            let k = inv.kernel.index();
            if k >= kernels.len() {
                return Err(WorkloadError::new(
                    WorkloadErrorKind::Invocation,
                    format!(
                        "workload {name}: invocation {i} references kernel {k} out of range"
                    ),
                ));
            }
            if (inv.context as usize) >= contexts[k].len() {
                return Err(WorkloadError::new(
                    WorkloadErrorKind::Invocation,
                    format!(
                        "workload {name}: invocation {i} references context {} of kernel {} \
                         out of range",
                        inv.context, kernels[k].name
                    ),
                ));
            }
        }
        let (group_of, group_representatives) = timing_groups(&invocations);
        let fingerprint = content_fingerprint(&name, suite, &kernels, &contexts, &invocations);
        Ok(Workload {
            name,
            suite,
            kernels,
            contexts,
            invocations,
            group_of,
            group_representatives,
            fingerprint,
        })
    }

    /// Panicking convenience wrapper over [`Workload::try_new`].
    ///
    /// # Panics
    ///
    /// Panics on any input [`Workload::try_new`] rejects.
    pub fn new(
        name: impl Into<String>,
        suite: SuiteKind,
        kernels: Vec<KernelClass>,
        contexts: Vec<Vec<RuntimeContext>>,
        invocations: Vec<Invocation>,
    ) -> Self {
        match Workload::try_new(name, suite, kernels, contexts, invocations) {
            Ok(w) => w,
            Err(e) => panic!("{e}"),
        }
    }

    /// Workload name (e.g. `heartwall`, `bert_infer`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Which suite this workload belongs to.
    pub fn suite(&self) -> SuiteKind {
        self.suite
    }

    /// The kernel table.
    pub fn kernels(&self) -> &[KernelClass] {
        &self.kernels
    }

    /// Context table of kernel `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn contexts_of(&self, k: KernelId) -> &[RuntimeContext] {
        &self.contexts[k.index()]
    }

    /// The invocation stream.
    pub fn invocations(&self) -> &[Invocation] {
        &self.invocations
    }

    /// Number of kernel launches.
    pub fn num_invocations(&self) -> usize {
        self.invocations.len()
    }

    /// FNV-1a 64 content fingerprint (name, suite, kernel/context tables,
    /// invocation stream), computed once at construction. Two workloads
    /// with equal fingerprints are — up to hash collision — the same
    /// workload; caches of derived artifacts key on this.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The kernel class of an invocation.
    pub fn kernel_of(&self, inv: &Invocation) -> &KernelClass {
        &self.kernels[inv.kernel.index()]
    }

    /// The runtime context of an invocation.
    pub fn context_of(&self, inv: &Invocation) -> &RuntimeContext {
        &self.contexts[inv.kernel.index()][inv.context as usize]
    }

    /// Number of timing groups: distinct `(kernel, context, work_scale)`
    /// triples in the invocation stream. All invocations in a group share
    /// the same deterministic timing; only their jitter draws differ.
    pub fn num_invocation_groups(&self) -> usize {
        self.group_representatives.len()
    }

    /// Timing group of invocation `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn group_of(&self, i: usize) -> u32 {
        self.group_of[i]
    }

    /// Lowest invocation index belonging to group `g` (its representative:
    /// timing-deterministic fields of any group member match it).
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn group_representative(&self, g: u32) -> usize {
        self.group_representatives[g as usize]
    }

    /// Invocation indices grouped by kernel id, in stream order — the
    /// "group kernel calls by name" first step of the STEM+ROOT pipeline
    /// (Fig. 3).
    pub fn invocations_by_kernel(&self) -> BTreeMap<KernelId, Vec<usize>> {
        let mut map: BTreeMap<KernelId, Vec<usize>> = BTreeMap::new();
        for (i, inv) in self.invocations.iter().enumerate() {
            map.entry(inv.kernel).or_default().push(i);
        }
        map
    }

    /// Invocation indices grouped by kernel *name*, in stream order. Two
    /// kernel classes can share a name (the same source kernel compiled or
    /// launched with different configurations); methods that key on names
    /// (Sieve's stratification) must see them as one group.
    pub fn invocations_by_kernel_name(&self) -> BTreeMap<&str, Vec<usize>> {
        let mut map: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, inv) in self.invocations.iter().enumerate() {
            map.entry(self.kernel_of(inv).name.as_str())
                .or_default()
                .push(i);
        }
        map
    }

    /// Total dynamic instructions across the workload (at per-invocation
    /// work scales), used by profiling-overhead models.
    pub fn total_instructions(&self) -> f64 {
        self.invocations
            .iter()
            .map(|inv| {
                let k = self.kernel_of(inv);
                let c = self.context_of(inv);
                k.total_instructions() as f64 * c.work_scale * inv.work_scale as f64
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelClassBuilder;

    fn tiny() -> Workload {
        let k0 = KernelClassBuilder::new("a").build();
        let k1 = KernelClassBuilder::new("b").build();
        Workload::new(
            "w",
            SuiteKind::Custom,
            vec![k0, k1],
            vec![
                vec![RuntimeContext::neutral()],
                vec![RuntimeContext::neutral(), RuntimeContext::neutral().with_work(2.0)],
            ],
            vec![
                Invocation::new(KernelId(0), 0, 0.1),
                Invocation::new(KernelId(1), 1, -0.3),
                Invocation::new(KernelId(0), 0, 0.7),
            ],
        )
    }

    #[test]
    fn accessors() {
        let w = tiny();
        assert_eq!(w.name(), "w");
        assert_eq!(w.suite(), SuiteKind::Custom);
        assert_eq!(w.num_invocations(), 3);
        assert_eq!(w.kernels().len(), 2);
        assert_eq!(w.contexts_of(KernelId(1)).len(), 2);
        let inv = &w.invocations()[1];
        assert_eq!(w.kernel_of(inv).name, "b");
        assert_eq!(w.context_of(inv).work_scale, 2.0);
    }

    #[test]
    fn timing_groups_follow_stream_order() {
        let w = tiny();
        // Invocations 0 and 2 share (kernel 0, ctx 0, work 1.0); 1 differs.
        assert_eq!(w.num_invocation_groups(), 2);
        assert_eq!(w.group_of(0), 0);
        assert_eq!(w.group_of(1), 1);
        assert_eq!(w.group_of(2), 0);
        assert_eq!(w.group_representative(0), 0);
        assert_eq!(w.group_representative(1), 1);
    }

    #[test]
    fn distinct_work_scales_split_groups() {
        let k0 = KernelClassBuilder::new("a").build();
        let w = Workload::new(
            "w",
            SuiteKind::Custom,
            vec![k0],
            vec![vec![RuntimeContext::neutral()]],
            vec![
                Invocation::with_work(KernelId(0), 0, 1.0, 0.1),
                Invocation::with_work(KernelId(0), 0, 2.0, 0.2),
                Invocation::with_work(KernelId(0), 0, 1.0, 0.3),
            ],
        );
        assert_eq!(w.num_invocation_groups(), 2);
        assert_eq!(w.group_of(0), 0);
        assert_eq!(w.group_of(1), 1);
        assert_eq!(w.group_of(2), 0);
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.fingerprint(), b.fingerprint(), "same content, same hash");
        // Any defining field flips the hash: name, stream, noise draw.
        let renamed = Workload::new(
            "w2",
            a.suite(),
            a.kernels().to_vec(),
            vec![
                a.contexts_of(KernelId(0)).to_vec(),
                a.contexts_of(KernelId(1)).to_vec(),
            ],
            a.invocations().to_vec(),
        );
        assert_ne!(a.fingerprint(), renamed.fingerprint());
        let mut invs = a.invocations().to_vec();
        invs[0].noise_z = 0.5;
        let jittered = Workload::new(
            a.name().to_string(),
            a.suite(),
            a.kernels().to_vec(),
            vec![
                a.contexts_of(KernelId(0)).to_vec(),
                a.contexts_of(KernelId(1)).to_vec(),
            ],
            invs,
        );
        assert_ne!(a.fingerprint(), jittered.fingerprint());
    }

    #[test]
    fn grouping_by_kernel() {
        let w = tiny();
        let groups = w.invocations_by_kernel();
        assert_eq!(groups[&KernelId(0)], vec![0, 2]);
        assert_eq!(groups[&KernelId(1)], vec![1]);
    }

    #[test]
    fn total_instructions_accounts_for_scales() {
        let w = tiny();
        let k = &w.kernels()[0];
        let base = k.total_instructions() as f64;
        // Two invocations of kernel 0 at scale 1 plus one of kernel 1 at
        // context work 2.0.
        let k1_base = w.kernels()[1].total_instructions() as f64;
        assert!((w.total_instructions() - (2.0 * base + 2.0 * k1_base)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_kernel_ref_rejected() {
        let k0 = KernelClassBuilder::new("a").build();
        Workload::new(
            "w",
            SuiteKind::Custom,
            vec![k0],
            vec![vec![RuntimeContext::neutral()]],
            vec![Invocation::new(KernelId(5), 0, 0.0)],
        );
    }

    #[test]
    #[should_panic(expected = "has no contexts")]
    fn empty_context_table_rejected() {
        let k0 = KernelClassBuilder::new("a").build();
        Workload::new("w", SuiteKind::Custom, vec![k0], vec![vec![]], vec![]);
    }

    #[test]
    #[should_panic(expected = "one context table per kernel")]
    fn mismatched_tables_rejected() {
        let k0 = KernelClassBuilder::new("a").build();
        Workload::new("w", SuiteKind::Custom, vec![k0], vec![], vec![]);
    }

    #[test]
    fn suite_display() {
        assert_eq!(SuiteKind::Rodinia.to_string(), "rodinia");
        assert_eq!(SuiteKind::Huggingface.to_string(), "huggingface");
    }
}
