//! The workload container: a kernel table, per-kernel context tables, and
//! the invocation stream.

use crate::context::RuntimeContext;
use crate::error::{WorkloadError, WorkloadErrorKind};
use crate::invocation::{Invocation, KernelId};
use crate::kernel::KernelClass;
use std::collections::BTreeMap;

/// Which benchmark suite a workload belongs to (drives evaluation
/// aggregation and default sampling rates for the Random baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuiteKind {
    /// Small irregular GPGPU/HPC workloads (Rodinia 3.1).
    Rodinia,
    /// State-of-the-art ML training/inference (CASIO).
    Casio,
    /// Large-scale LLM/ML serving (HuggingFace models).
    Huggingface,
    /// Hand-built workloads.
    Custom,
}

impl std::fmt::Display for SuiteKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SuiteKind::Rodinia => "rodinia",
            SuiteKind::Casio => "casio",
            SuiteKind::Huggingface => "huggingface",
            SuiteKind::Custom => "custom",
        };
        f.write_str(s)
    }
}

/// A complete GPU workload as seen by a kernel-level sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    name: String,
    suite: SuiteKind,
    kernels: Vec<KernelClass>,
    /// `contexts[k]` are the runtime contexts of kernel `k`.
    contexts: Vec<Vec<RuntimeContext>>,
    invocations: Vec<Invocation>,
}

impl Workload {
    /// Assembles and validates a workload.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] if tables are inconsistent: no kernels,
    /// context table length mismatch, kernels without contexts, invocations
    /// referencing out-of-range kernels/contexts, or invalid component
    /// values.
    pub fn try_new(
        name: impl Into<String>,
        suite: SuiteKind,
        kernels: Vec<KernelClass>,
        contexts: Vec<Vec<RuntimeContext>>,
        invocations: Vec<Invocation>,
    ) -> Result<Self, WorkloadError> {
        let name = name.into();
        let structure =
            |message: String| Err(WorkloadError::new(WorkloadErrorKind::Structure, message));
        if kernels.is_empty() {
            return structure(format!("workload {name} has no kernels"));
        }
        if kernels.len() != contexts.len() {
            return structure(format!(
                "workload {name}: one context table per kernel required \
                 ({} kernels, {} context tables)",
                kernels.len(),
                contexts.len()
            ));
        }
        for k in &kernels {
            k.try_validate()?;
        }
        for (k, ctxs) in contexts.iter().enumerate() {
            if ctxs.is_empty() {
                return structure(format!(
                    "workload {name}: kernel {} has no contexts",
                    kernels[k].name
                ));
            }
            for c in ctxs {
                c.try_validate()?;
            }
        }
        for (i, inv) in invocations.iter().enumerate() {
            let k = inv.kernel.index();
            if k >= kernels.len() {
                return Err(WorkloadError::new(
                    WorkloadErrorKind::Invocation,
                    format!(
                        "workload {name}: invocation {i} references kernel {k} out of range"
                    ),
                ));
            }
            if (inv.context as usize) >= contexts[k].len() {
                return Err(WorkloadError::new(
                    WorkloadErrorKind::Invocation,
                    format!(
                        "workload {name}: invocation {i} references context {} of kernel {} \
                         out of range",
                        inv.context, kernels[k].name
                    ),
                ));
            }
        }
        Ok(Workload {
            name,
            suite,
            kernels,
            contexts,
            invocations,
        })
    }

    /// Panicking convenience wrapper over [`Workload::try_new`].
    ///
    /// # Panics
    ///
    /// Panics on any input [`Workload::try_new`] rejects.
    pub fn new(
        name: impl Into<String>,
        suite: SuiteKind,
        kernels: Vec<KernelClass>,
        contexts: Vec<Vec<RuntimeContext>>,
        invocations: Vec<Invocation>,
    ) -> Self {
        match Workload::try_new(name, suite, kernels, contexts, invocations) {
            Ok(w) => w,
            Err(e) => panic!("{e}"),
        }
    }

    /// Workload name (e.g. `heartwall`, `bert_infer`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Which suite this workload belongs to.
    pub fn suite(&self) -> SuiteKind {
        self.suite
    }

    /// The kernel table.
    pub fn kernels(&self) -> &[KernelClass] {
        &self.kernels
    }

    /// Context table of kernel `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn contexts_of(&self, k: KernelId) -> &[RuntimeContext] {
        &self.contexts[k.index()]
    }

    /// The invocation stream.
    pub fn invocations(&self) -> &[Invocation] {
        &self.invocations
    }

    /// Number of kernel launches.
    pub fn num_invocations(&self) -> usize {
        self.invocations.len()
    }

    /// The kernel class of an invocation.
    pub fn kernel_of(&self, inv: &Invocation) -> &KernelClass {
        &self.kernels[inv.kernel.index()]
    }

    /// The runtime context of an invocation.
    pub fn context_of(&self, inv: &Invocation) -> &RuntimeContext {
        &self.contexts[inv.kernel.index()][inv.context as usize]
    }

    /// Invocation indices grouped by kernel id, in stream order — the
    /// "group kernel calls by name" first step of the STEM+ROOT pipeline
    /// (Fig. 3).
    pub fn invocations_by_kernel(&self) -> BTreeMap<KernelId, Vec<usize>> {
        let mut map: BTreeMap<KernelId, Vec<usize>> = BTreeMap::new();
        for (i, inv) in self.invocations.iter().enumerate() {
            map.entry(inv.kernel).or_default().push(i);
        }
        map
    }

    /// Invocation indices grouped by kernel *name*, in stream order. Two
    /// kernel classes can share a name (the same source kernel compiled or
    /// launched with different configurations); methods that key on names
    /// (Sieve's stratification) must see them as one group.
    pub fn invocations_by_kernel_name(&self) -> BTreeMap<&str, Vec<usize>> {
        let mut map: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, inv) in self.invocations.iter().enumerate() {
            map.entry(self.kernel_of(inv).name.as_str())
                .or_default()
                .push(i);
        }
        map
    }

    /// Total dynamic instructions across the workload (at per-invocation
    /// work scales), used by profiling-overhead models.
    pub fn total_instructions(&self) -> f64 {
        self.invocations
            .iter()
            .map(|inv| {
                let k = self.kernel_of(inv);
                let c = self.context_of(inv);
                k.total_instructions() as f64 * c.work_scale * inv.work_scale as f64
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelClassBuilder;

    fn tiny() -> Workload {
        let k0 = KernelClassBuilder::new("a").build();
        let k1 = KernelClassBuilder::new("b").build();
        Workload::new(
            "w",
            SuiteKind::Custom,
            vec![k0, k1],
            vec![
                vec![RuntimeContext::neutral()],
                vec![RuntimeContext::neutral(), RuntimeContext::neutral().with_work(2.0)],
            ],
            vec![
                Invocation::new(KernelId(0), 0, 0.1),
                Invocation::new(KernelId(1), 1, -0.3),
                Invocation::new(KernelId(0), 0, 0.7),
            ],
        )
    }

    #[test]
    fn accessors() {
        let w = tiny();
        assert_eq!(w.name(), "w");
        assert_eq!(w.suite(), SuiteKind::Custom);
        assert_eq!(w.num_invocations(), 3);
        assert_eq!(w.kernels().len(), 2);
        assert_eq!(w.contexts_of(KernelId(1)).len(), 2);
        let inv = &w.invocations()[1];
        assert_eq!(w.kernel_of(inv).name, "b");
        assert_eq!(w.context_of(inv).work_scale, 2.0);
    }

    #[test]
    fn grouping_by_kernel() {
        let w = tiny();
        let groups = w.invocations_by_kernel();
        assert_eq!(groups[&KernelId(0)], vec![0, 2]);
        assert_eq!(groups[&KernelId(1)], vec![1]);
    }

    #[test]
    fn total_instructions_accounts_for_scales() {
        let w = tiny();
        let k = &w.kernels()[0];
        let base = k.total_instructions() as f64;
        // Two invocations of kernel 0 at scale 1 plus one of kernel 1 at
        // context work 2.0.
        let k1_base = w.kernels()[1].total_instructions() as f64;
        assert!((w.total_instructions() - (2.0 * base + 2.0 * k1_base)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_kernel_ref_rejected() {
        let k0 = KernelClassBuilder::new("a").build();
        Workload::new(
            "w",
            SuiteKind::Custom,
            vec![k0],
            vec![vec![RuntimeContext::neutral()]],
            vec![Invocation::new(KernelId(5), 0, 0.0)],
        );
    }

    #[test]
    #[should_panic(expected = "has no contexts")]
    fn empty_context_table_rejected() {
        let k0 = KernelClassBuilder::new("a").build();
        Workload::new("w", SuiteKind::Custom, vec![k0], vec![vec![]], vec![]);
    }

    #[test]
    #[should_panic(expected = "one context table per kernel")]
    fn mismatched_tables_rejected() {
        let k0 = KernelClassBuilder::new("a").build();
        Workload::new("w", SuiteKind::Custom, vec![k0], vec![], vec![]);
    }

    #[test]
    fn suite_display() {
        assert_eq!(SuiteKind::Rodinia.to_string(), "rodinia");
        assert_eq!(SuiteKind::Huggingface.to_string(), "huggingface");
    }
}
