//! Runtime contexts: why identical kernels behave differently.
//!
//! The paper observes (Sec. 2.1) that a kernel like `sgemm` launched with
//! identical code and geometry still shows multiple distinct performance
//! peaks and wide jitter, because each invocation operates on different
//! data (activations vs weights), from different levels of the memory
//! hierarchy, with different sparsity and alignment. We model each such
//! *usage* as a [`RuntimeContext`]: a set of multipliers on the kernel's
//! work, footprint and locality plus a jitter level. One context produces
//! one histogram peak; several contexts produce the multi-modal histograms
//! of Figure 1.

use crate::error::{WorkloadError, WorkloadErrorKind};

/// One runtime usage pattern of a kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeContext {
    /// Multiplies the kernel's per-thread instruction count.
    pub work_scale: f64,
    /// Multiplies the kernel's memory footprint.
    pub footprint_scale: f64,
    /// Multiplies the *effective* cache capacity seen by this usage —
    /// values above 1 model cache-friendly access (data resident in L2 from
    /// a producer kernel), below 1 model cache-hostile access (random
    /// embedding lookups).
    pub locality_boost: f64,
    /// Base coefficient of variation of multiplicative runtime jitter. The
    /// simulator scales this up for memory-bound kernels (their latency is
    /// at the mercy of DRAM contention) and down for compute-bound ones.
    pub jitter_cov: f64,
}

impl RuntimeContext {
    /// A neutral context: no scaling, mild jitter.
    pub fn neutral() -> Self {
        RuntimeContext {
            work_scale: 1.0,
            footprint_scale: 1.0,
            locality_boost: 1.0,
            jitter_cov: 0.02,
        }
    }

    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] if any scale is nonpositive or non-finite,
    /// or `jitter_cov` is outside `[0, 3]` (implausibly large jitter).
    pub fn try_validate(&self) -> Result<(), WorkloadError> {
        let fail = |message: String| Err(WorkloadError::new(WorkloadErrorKind::Context, message));
        if !(self.work_scale > 0.0 && self.work_scale.is_finite()) {
            return fail("work_scale must be positive".to_string());
        }
        if !(self.footprint_scale > 0.0 && self.footprint_scale.is_finite()) {
            return fail("footprint_scale must be positive".to_string());
        }
        if !(self.locality_boost > 0.0 && self.locality_boost.is_finite()) {
            return fail("locality_boost must be positive".to_string());
        }
        if !(0.0..=3.0).contains(&self.jitter_cov) {
            return fail(format!("jitter_cov must be in [0, 3], got {}", self.jitter_cov));
        }
        Ok(())
    }

    /// Panicking convenience wrapper over [`RuntimeContext::try_validate`].
    ///
    /// # Panics
    ///
    /// Panics on any violation [`RuntimeContext::try_validate`] reports.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// Returns a copy with a different work scale.
    pub fn with_work(mut self, scale: f64) -> Self {
        self.work_scale = scale;
        self
    }

    /// Returns a copy with a different locality boost.
    pub fn with_locality(mut self, boost: f64) -> Self {
        self.locality_boost = boost;
        self
    }

    /// Returns a copy with a different footprint scale.
    pub fn with_footprint(mut self, scale: f64) -> Self {
        self.footprint_scale = scale;
        self
    }

    /// Returns a copy with a different jitter CoV.
    pub fn with_jitter(mut self, cov: f64) -> Self {
        self.jitter_cov = cov;
        self
    }
}

impl Default for RuntimeContext {
    fn default() -> Self {
        RuntimeContext::neutral()
    }
}

/// How invocations cycle through a kernel's contexts over the workload.
#[derive(Debug, Clone, PartialEq)]
pub enum ContextSchedule {
    /// Each invocation draws a context at random with the given weights
    /// (the common case for batched ML workloads).
    Weighted(Vec<f64>),
    /// Contexts are visited round-robin (layer-by-layer iteration).
    Cyclic,
    /// Explicit phases: `(context, count)` runs in order (prefill phase
    /// followed by decode phase, warmup followed by steady state, ...).
    Phased(Vec<(usize, usize)>),
}

impl ContextSchedule {
    /// Validates the schedule against the number of contexts it indexes.
    ///
    /// # Panics
    ///
    /// Panics if weights are not positive-summed and matching in length, or
    /// phase indices are out of range.
    pub fn validate(&self, num_contexts: usize) {
        match self {
            ContextSchedule::Weighted(weights) => {
                assert_eq!(
                    weights.len(),
                    num_contexts,
                    "one weight per context required"
                );
                assert!(
                    weights.iter().all(|&w| w >= 0.0),
                    "weights must be nonnegative"
                );
                assert!(
                    weights.iter().sum::<f64>() > 0.0,
                    "weights must not all be zero"
                );
            }
            ContextSchedule::Cyclic => {
                assert!(num_contexts > 0, "cyclic schedule needs contexts");
            }
            ContextSchedule::Phased(phases) => {
                assert!(!phases.is_empty(), "phased schedule needs phases");
                for &(ctx, count) in phases {
                    assert!(ctx < num_contexts, "phase context {ctx} out of range");
                    assert!(count > 0, "phase count must be positive");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neutral_is_valid() {
        RuntimeContext::neutral().validate();
    }

    #[test]
    fn with_methods_chain() {
        let c = RuntimeContext::neutral()
            .with_work(2.0)
            .with_locality(0.5)
            .with_footprint(3.0)
            .with_jitter(0.4);
        c.validate();
        assert_eq!(c.work_scale, 2.0);
        assert_eq!(c.locality_boost, 0.5);
        assert_eq!(c.footprint_scale, 3.0);
        assert_eq!(c.jitter_cov, 0.4);
    }

    #[test]
    #[should_panic(expected = "work_scale must be positive")]
    fn zero_work_rejected() {
        RuntimeContext::neutral().with_work(0.0).validate();
    }

    #[test]
    #[should_panic(expected = "jitter_cov must be in")]
    fn huge_jitter_rejected() {
        RuntimeContext::neutral().with_jitter(5.0).validate();
    }

    #[test]
    fn weighted_schedule_validation() {
        ContextSchedule::Weighted(vec![1.0, 2.0]).validate(2);
    }

    #[test]
    #[should_panic(expected = "one weight per context")]
    fn weighted_length_mismatch() {
        ContextSchedule::Weighted(vec![1.0]).validate(2);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn all_zero_weights_rejected() {
        ContextSchedule::Weighted(vec![0.0, 0.0]).validate(2);
    }

    #[test]
    fn phased_schedule_validation() {
        ContextSchedule::Phased(vec![(0, 10), (1, 5)]).validate(2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn phased_out_of_range() {
        ContextSchedule::Phased(vec![(3, 10)]).validate(2);
    }
}
