//! `stem-colstore`: an out-of-core columnar store for invocation streams.
//!
//! A store is a directory holding fixed-width binary column blocks plus a
//! plain-text manifest, committed through the `stem-storage` durability
//! contract (`write_atomic` for every file, manifest last — the manifest
//! rename is the commit point, so a crash mid-write leaves either no
//! store or a complete one, never a torn one).
//!
//! # Block format (`block-NNNNN.col`)
//!
//! Column-major, little-endian, no header (the manifest carries all
//! metadata): for `rows` invocations,
//!
//! ```text
//! kernel id     u32 × rows
//! context id    u16 × rows
//! work bits     u32 × rows   (f32 work_scale, by bit pattern)
//! noise bits    u32 × rows   (f32 noise_z,   by bit pattern)
//! ```
//!
//! 14 bytes per row. Blocks are ~64K rows ([`DEFAULT_BLOCK_LEN`]), so one
//! block is ~900 KiB — the unit of streaming I/O and of pipelined
//! simulation.
//!
//! # Manifest grammar (`manifest.txt`)
//!
//! ```text
//! STEM-COLSTORE v1
//! block_len 65536
//! invocations 11600000
//! fingerprint 6b1c3f09a2...      ; Workload::fingerprint of the stream
//! tables 42
//! <42 lines: the skeleton workload in the io.rs v1 text format>
//! end_tables
//! block 0 65536 917504 9d41a2...  ; index, rows, bytes, FNV-1a of file
//! block 1 65536 917504 77120c...
//! checksum 55aa90...              ; FNV-1a 64 over every line above
//! ```
//!
//! The whole-stream `fingerprint` is the same FNV-1a fold as
//! [`Workload::fingerprint`](crate::Workload::fingerprint), so samplers
//! keyed by fingerprint (the clustering memo) hit whether the workload
//! arrived materialized or streamed from this store.
//!
//! # Quarantine, never trust
//!
//! Readers verify the manifest's header, version, grammar, and trailing
//! checksum *before trusting any line*, then verify each block's byte
//! length and checksum and each row's table ranges before yielding it. A
//! file failing any check is renamed to `<file>.quarantined[.N]`
//! (evidence is never deleted, never overwritten) and the read returns a
//! typed [`ColStoreError`] — corrupt bytes can cost the cached stream,
//! never produce wrong cycles.

use crate::invocation::{Invocation, KernelId};
use crate::io::{from_text, to_text, ParseWorkloadError};
use crate::stream::{BlockSink, SinkError, StreamSummary};
use crate::trace::{FingerprintFold, Workload};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use stem_storage::{quarantine, write_atomic, write_atomic_bytes, Storage, StorageError};

/// First token of the manifest header; the version tag follows it.
const HEADER_PREFIX: &str = "STEM-COLSTORE";
/// The exact header this version writes and accepts.
const HEADER: &str = "STEM-COLSTORE v1";
/// Manifest file name inside a store directory.
pub const MANIFEST_NAME: &str = "manifest.txt";
/// Rows per block the streaming builder emits by default (~900 KiB of
/// column data per block at 14 bytes/row).
pub const DEFAULT_BLOCK_LEN: usize = 65_536;
/// Bytes per row across the four columns (u32 + u16 + u32 + u32).
const ROW_BYTES: usize = 14;

/// Why a store could not be written or was rejected (and quarantined).
#[derive(Debug, Clone, PartialEq)]
pub enum ColStoreError {
    /// Storage failure, with the operation and path that failed.
    Io(StorageError),
    /// The manifest does not start with the store header.
    MissingHeader,
    /// The header names a version this build does not understand.
    VersionMismatch {
        /// The header line as found.
        found: String,
    },
    /// The manifest body does not hash to its recorded checksum.
    ManifestChecksumMismatch,
    /// A manifest line violates the grammar.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The embedded tables section failed workload parsing/validation.
    Tables(ParseWorkloadError),
    /// A block file's byte length does not match its manifest entry.
    BlockSize {
        /// Block index.
        index: usize,
        /// Bytes the manifest promised.
        expected: usize,
        /// Bytes found on disk.
        found: usize,
    },
    /// A block file does not hash to its manifest checksum.
    BlockChecksumMismatch {
        /// Block index.
        index: usize,
    },
    /// A decoded row references a kernel or context outside the tables.
    InvalidRow {
        /// Block index.
        block: usize,
        /// Row within the block.
        row: usize,
        /// What was out of range.
        message: String,
    },
    /// The re-folded stream fingerprint does not match the manifest's
    /// (or a caller-expected) fingerprint.
    FingerprintMismatch {
        /// The fingerprint expected.
        expected: u64,
        /// The fingerprint computed from the stream.
        found: u64,
    },
}

impl std::fmt::Display for ColStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColStoreError::Io(e) => write!(f, "colstore io error: {e}"),
            ColStoreError::MissingHeader => f.write_str("missing colstore manifest header"),
            ColStoreError::VersionMismatch { found } => {
                write!(f, "unsupported colstore version: {found:?} (expected {HEADER:?})")
            }
            ColStoreError::ManifestChecksumMismatch => {
                f.write_str("colstore manifest checksum mismatch")
            }
            ColStoreError::Malformed { line, message } => {
                write!(f, "malformed colstore manifest at line {line}: {message}")
            }
            ColStoreError::Tables(e) => write!(f, "colstore tables section: {e}"),
            ColStoreError::BlockSize { index, expected, found } => write!(
                f,
                "colstore block {index} is {found} bytes (manifest promises {expected})"
            ),
            ColStoreError::BlockChecksumMismatch { index } => {
                write!(f, "colstore block {index} checksum mismatch")
            }
            ColStoreError::InvalidRow { block, row, message } => {
                write!(f, "colstore block {block} row {row}: {message}")
            }
            ColStoreError::FingerprintMismatch { expected, found } => write!(
                f,
                "colstore fingerprint mismatch: expected {expected:016x}, found {found:016x}"
            ),
        }
    }
}

impl std::error::Error for ColStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ColStoreError::Io(e) => Some(e),
            ColStoreError::Tables(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for ColStoreError {
    fn from(e: StorageError) -> Self {
        ColStoreError::Io(e)
    }
}

/// FNV-1a 64 over raw bytes (manifest body and block files use the same
/// fold as every other durable format in the workspace).
fn fnv64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    h
}

/// Path of block `index` inside `dir`.
pub fn block_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("block-{index:05}.col"))
}

/// Encodes one block of invocations into the column-major layout.
fn encode_block(invocations: &[Invocation]) -> Vec<u8> {
    let mut out = Vec::with_capacity(invocations.len() * ROW_BYTES);
    for inv in invocations {
        out.extend_from_slice(&inv.kernel.0.to_le_bytes());
    }
    for inv in invocations {
        out.extend_from_slice(&inv.context.to_le_bytes());
    }
    for inv in invocations {
        out.extend_from_slice(&inv.work_scale.to_bits().to_le_bytes());
    }
    for inv in invocations {
        out.extend_from_slice(&inv.noise_z.to_bits().to_le_bytes());
    }
    out
}

/// Decodes a column-major block into `out` (cleared first), validating
/// every row against the skeleton's tables. Allocation-free beyond the
/// caller-owned buffer: the hot loop only indexes and pushes.
fn decode_block(
    bytes: &[u8],
    rows: usize,
    block: usize,
    skeleton: &Workload,
    out: &mut Vec<Invocation>,
) -> Result<(), ColStoreError> {
    out.clear();
    out.reserve(rows);
    let kernels = skeleton.kernels().len();
    let (k_base, c_base) = (0usize, rows * 4);
    let (w_base, n_base) = (rows * 6, rows * 10);
    for row in 0..rows {
        let k = u32::from_le_bytes([
            bytes[k_base + row * 4],
            bytes[k_base + row * 4 + 1],
            bytes[k_base + row * 4 + 2],
            bytes[k_base + row * 4 + 3],
        ]);
        let c = u16::from_le_bytes([bytes[c_base + row * 2], bytes[c_base + row * 2 + 1]]);
        let w = f32::from_bits(u32::from_le_bytes([
            bytes[w_base + row * 4],
            bytes[w_base + row * 4 + 1],
            bytes[w_base + row * 4 + 2],
            bytes[w_base + row * 4 + 3],
        ]));
        let z = f32::from_bits(u32::from_le_bytes([
            bytes[n_base + row * 4],
            bytes[n_base + row * 4 + 1],
            bytes[n_base + row * 4 + 2],
            bytes[n_base + row * 4 + 3],
        ]));
        if (k as usize) >= kernels {
            return Err(ColStoreError::InvalidRow {
                block,
                row,
                message: format!("kernel {k} out of range ({kernels} kernels)"),
            });
        }
        let contexts = skeleton.contexts_of(KernelId(k)).len();
        if (c as usize) >= contexts {
            return Err(ColStoreError::InvalidRow {
                block,
                row,
                message: format!("context {c} out of range ({contexts} contexts of kernel {k})"),
            });
        }
        if !(w.is_finite() && w > 0.0) {
            return Err(ColStoreError::InvalidRow {
                block,
                row,
                message: format!("work scale {w} not positive and finite"),
            });
        }
        out.push(Invocation::with_work(KernelId(k), c, w, z));
    }
    Ok(())
}

/// One manifest block entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockEntry {
    rows: usize,
    bytes: usize,
    checksum: u64,
}

/// A [`BlockSink`] committing the stream to a store directory. Every
/// block file lands via `write_atomic_bytes`; [`StoreWriter::finish`]
/// writes the manifest last, which is the store's commit point.
#[derive(Debug)]
pub struct StoreWriter<'a> {
    storage: &'a dyn Storage,
    dir: PathBuf,
    block_len: usize,
    tables_text: Option<String>,
    blocks: Vec<BlockEntry>,
}

impl<'a> StoreWriter<'a> {
    /// Starts a store at `dir` (created if missing) with the given
    /// nominal block length.
    ///
    /// # Errors
    ///
    /// [`ColStoreError::Io`] if the directory cannot be created.
    pub fn create(
        storage: &'a dyn Storage,
        dir: &Path,
        block_len: usize,
    ) -> Result<Self, ColStoreError> {
        storage.create_dir_all(dir)?;
        Ok(StoreWriter {
            storage,
            dir: dir.to_path_buf(),
            block_len,
            tables_text: None,
            blocks: Vec::new(),
        })
    }

    /// Commits the manifest, completing the store. Call after the
    /// producer finished streaming; `summary` carries the stream's
    /// fingerprint and row count as computed by the producer's fold.
    ///
    /// # Errors
    ///
    /// [`ColStoreError::Io`] on a failed manifest write, or
    /// [`ColStoreError::Malformed`] if no tables were ever received.
    pub fn finish(self, summary: &StreamSummary) -> Result<(), ColStoreError> {
        let tables = self.tables_text.ok_or(ColStoreError::Malformed {
            line: 0,
            message: "stream ended before tables were emitted".to_string(),
        })?;
        let mut body = String::new();
        body.push_str(HEADER);
        body.push('\n');
        writeln!(body, "block_len {}", self.block_len).expect("write to string");
        writeln!(body, "invocations {}", summary.invocations).expect("write to string");
        writeln!(body, "fingerprint {:016x}", summary.fingerprint).expect("write to string");
        writeln!(body, "tables {}", tables.lines().count()).expect("write to string");
        body.push_str(&tables);
        if !tables.ends_with('\n') {
            body.push('\n');
        }
        body.push_str("end_tables\n");
        for (i, b) in self.blocks.iter().enumerate() {
            writeln!(body, "block {i} {} {} {:016x}", b.rows, b.bytes, b.checksum)
                .expect("write to string");
        }
        let checksum = fnv64(body.as_bytes());
        writeln!(body, "checksum {checksum:016x}").expect("write to string");
        write_atomic(self.storage, &self.dir.join(MANIFEST_NAME), &body)?;
        Ok(())
    }
}

impl BlockSink for StoreWriter<'_> {
    fn tables(&mut self, skeleton: &Workload) -> Result<(), SinkError> {
        self.tables_text = Some(to_text(skeleton));
        Ok(())
    }

    fn block(&mut self, invocations: &[Invocation]) -> Result<(), SinkError> {
        let index = self.blocks.len();
        let bytes = encode_block(invocations);
        let entry = BlockEntry {
            rows: invocations.len(),
            bytes: bytes.len(),
            checksum: fnv64(&bytes),
        };
        write_atomic_bytes(self.storage, &block_path(&self.dir, index), &bytes)
            .map_err(|e| SinkError::from(ColStoreError::Io(e)))?;
        self.blocks.push(entry);
        Ok(())
    }
}

/// A parsed, checksum-verified manifest: the skeleton tables and the
/// block directory of a store.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreManifest {
    skeleton: Workload,
    block_len: usize,
    invocations: u64,
    fingerprint: u64,
    blocks: Vec<BlockEntry>,
}

impl StoreManifest {
    /// The skeleton workload (tables only, zero invocations).
    pub fn skeleton(&self) -> &Workload {
        &self.skeleton
    }

    /// The nominal rows-per-block the writer used.
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// Total invocations across all blocks.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// The whole-stream content fingerprint
    /// (`Workload::fingerprint`-compatible).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }
}

/// Parses and verifies a manifest body. Pure (no storage): callers
/// decide what to quarantine.
fn parse_manifest(text: &str) -> Result<StoreManifest, ColStoreError> {
    let mut lines = text.lines();
    let header = lines.next().unwrap_or("");
    if !header.starts_with(HEADER_PREFIX) {
        return Err(ColStoreError::MissingHeader);
    }
    if header != HEADER {
        return Err(ColStoreError::VersionMismatch { found: header.to_string() });
    }
    // Checksum before trust: the last line must be `checksum <hex>` and
    // the body above it must hash to it.
    let body_end = text
        .trim_end_matches('\n')
        .rfind('\n')
        .map(|i| i + 1)
        .unwrap_or(0);
    let last = text[body_end..].trim_end();
    let recorded = match last.strip_prefix("checksum ") {
        Some(hex) => u64::from_str_radix(hex.trim(), 16)
            .map_err(|_| ColStoreError::ManifestChecksumMismatch)?,
        None => return Err(ColStoreError::ManifestChecksumMismatch),
    };
    if fnv64(text[..body_end].as_bytes()) != recorded {
        return Err(ColStoreError::ManifestChecksumMismatch);
    }

    let malformed = |line: usize, message: &str| ColStoreError::Malformed {
        line,
        message: message.to_string(),
    };
    let all: Vec<&str> = text.lines().collect();
    let mut i = 1usize; // past the header
    let mut block_len = None;
    let mut invocations = None;
    let mut fingerprint = None;
    let mut skeleton = None;
    let mut blocks: Vec<BlockEntry> = Vec::new();
    while i < all.len() {
        let line_no = i + 1;
        let line = all[i];
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("block_len") => {
                let v: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed(line_no, "block_len takes a positive integer"))?;
                if v == 0 {
                    return Err(malformed(line_no, "block_len must be positive"));
                }
                block_len = Some(v);
                i += 1;
            }
            Some("invocations") => {
                let v: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed(line_no, "invocations takes an integer"))?;
                invocations = Some(v);
                i += 1;
            }
            Some("fingerprint") => {
                let v = parts
                    .next()
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                    .ok_or_else(|| malformed(line_no, "fingerprint takes 16 hex digits"))?;
                fingerprint = Some(v);
                i += 1;
            }
            Some("tables") => {
                let n: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| malformed(line_no, "tables takes a line count"))?;
                if i + n + 1 >= all.len() || all[i + n + 1] != "end_tables" {
                    return Err(malformed(line_no, "tables section not closed by end_tables"));
                }
                let section = all[i + 1..i + n + 1].join("\n");
                skeleton = Some(from_text(&section).map_err(ColStoreError::Tables)?);
                i += n + 2;
            }
            Some("block") => {
                let mut take = |what: &str| -> Result<&str, ColStoreError> {
                    parts.next().ok_or_else(|| malformed(line_no, what))
                };
                let idx: usize = take("block entry needs an index")?
                    .parse()
                    .map_err(|_| malformed(line_no, "bad block index"))?;
                if idx != blocks.len() {
                    return Err(malformed(line_no, "block entries out of order"));
                }
                let rows: usize = take("block entry needs a row count")?
                    .parse()
                    .map_err(|_| malformed(line_no, "bad block row count"))?;
                let bytes: usize = take("block entry needs a byte count")?
                    .parse()
                    .map_err(|_| malformed(line_no, "bad block byte count"))?;
                let checksum = take("block entry needs a checksum")?;
                let checksum = u64::from_str_radix(checksum, 16)
                    .map_err(|_| malformed(line_no, "bad block checksum"))?;
                if bytes != rows * ROW_BYTES {
                    return Err(malformed(line_no, "block bytes disagree with rows"));
                }
                blocks.push(BlockEntry { rows, bytes, checksum });
                i += 1;
            }
            Some("checksum") => {
                i += 1; // verified above, must be last
                if i != all.len() {
                    return Err(malformed(line_no, "content after checksum"));
                }
            }
            Some(other) => {
                return Err(malformed(line_no, &format!("unknown record tag {other}")));
            }
            None => {
                i += 1;
            }
        }
    }
    let skeleton = skeleton
        .ok_or_else(|| malformed(all.len(), "manifest has no tables section"))?;
    let block_len =
        block_len.ok_or_else(|| malformed(all.len(), "manifest has no block_len"))?;
    let invocations =
        invocations.ok_or_else(|| malformed(all.len(), "manifest has no invocations"))?;
    let fingerprint =
        fingerprint.ok_or_else(|| malformed(all.len(), "manifest has no fingerprint"))?;
    let total: u64 = blocks.iter().map(|b| b.rows as u64).sum();
    if total != invocations {
        return Err(malformed(all.len(), "block rows do not sum to invocations"));
    }
    Ok(StoreManifest { skeleton, block_len, invocations, fingerprint, blocks })
}

/// Reads and verifies a store's manifest. A manifest failing any check
/// is quarantined (never trusted, never deleted) and the typed error
/// returned.
///
/// # Errors
///
/// [`ColStoreError::Io`] if the manifest cannot be read; any validation
/// variant after quarantining it.
pub fn open_store(storage: &dyn Storage, dir: &Path) -> Result<StoreManifest, ColStoreError> {
    let path = dir.join(MANIFEST_NAME);
    let text = storage.read_to_string(&path)?;
    match parse_manifest(&text) {
        Ok(manifest) => Ok(manifest),
        Err(e) => {
            let _ = quarantine(storage, &path);
            Err(e)
        }
    }
}

/// Streams a store into `sink`: tables first, then every block in order,
/// verifying block sizes, block checksums, row ranges, and finally the
/// whole-stream fingerprint against the manifest. A block failing any
/// check is quarantined and the typed error returned — a corrupt store
/// can never stream wrong invocations.
///
/// # Errors
///
/// Any [`ColStoreError`]; sink failures surface as the sink's own
/// [`SinkError::Store`] payload or [`ColStoreError::Io`].
pub fn stream_store(
    storage: &dyn Storage,
    dir: &Path,
    sink: &mut dyn BlockSink,
) -> Result<StreamSummary, ColStoreError> {
    let manifest = open_store(storage, dir)?;
    let skeleton = manifest.skeleton();
    let mut fold = FingerprintFold::new();
    fold.eat_header(
        skeleton.name(),
        skeleton.suite(),
        skeleton.kernels(),
        &(0..skeleton.kernels().len())
            .map(|k| skeleton.contexts_of(KernelId(k as u32)).to_vec())
            .collect::<Vec<_>>(),
    );
    relay(sink.tables(skeleton))?;
    let mut decoded: Vec<Invocation> = Vec::new();
    let mut emitted = 0u64;
    for (index, entry) in manifest.blocks.iter().enumerate() {
        let path = block_path(dir, index);
        let bytes = storage.read_bytes(&path)?;
        let checked = (|| -> Result<(), ColStoreError> {
            if bytes.len() != entry.bytes {
                return Err(ColStoreError::BlockSize {
                    index,
                    expected: entry.bytes,
                    found: bytes.len(),
                });
            }
            if fnv64(&bytes) != entry.checksum {
                return Err(ColStoreError::BlockChecksumMismatch { index });
            }
            decode_block(&bytes, entry.rows, index, skeleton, &mut decoded)
        })();
        if let Err(e) = checked {
            let _ = quarantine(storage, &path);
            return Err(e);
        }
        for inv in &decoded {
            fold.eat_invocation(inv);
        }
        emitted += decoded.len() as u64;
        relay(sink.block(&decoded))?;
    }
    let found = fold.finish();
    if found != manifest.fingerprint {
        let _ = quarantine(storage, &dir.join(MANIFEST_NAME));
        return Err(ColStoreError::FingerprintMismatch {
            expected: manifest.fingerprint,
            found,
        });
    }
    Ok(StreamSummary { fingerprint: found, invocations: emitted })
}

/// Maps a sink failure back into the reader's error space.
fn relay(result: Result<(), SinkError>) -> Result<(), ColStoreError> {
    match result {
        Ok(()) => Ok(()),
        Err(SinkError::Store(e)) => Err(*e),
        Err(SinkError::Closed) => Err(ColStoreError::Io(StorageError::new(
            stem_storage::StorageOp::Write,
            "<block-sink>",
            std::io::ErrorKind::BrokenPipe,
            "block stream consumer hung up",
        ))),
    }
}

/// Materializes a store back into a validated [`Workload`] — the
/// round-trip counterpart of writing one, used by the equivalence gate
/// and by consumers (profiling, clustering) that need random access.
///
/// # Errors
///
/// Any [`ColStoreError`] from [`stream_store`].
pub fn load_store(storage: &dyn Storage, dir: &Path) -> Result<Workload, ColStoreError> {
    let mut sink = crate::stream::CollectSink::new();
    stream_store(storage, dir, &mut sink)?;
    Ok(sink.into_workload())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WorkloadBuilder;
    use crate::context::{ContextSchedule, RuntimeContext};
    use crate::kernel::KernelClassBuilder;
    use crate::trace::SuiteKind;
    use stem_storage::RealFs;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("stem-colstore-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_workload() -> Workload {
        let mut b = WorkloadBuilder::new("colstore_sample", SuiteKind::Custom, 99);
        let k = b.add_kernel(
            KernelClassBuilder::new("k").build(),
            vec![RuntimeContext::neutral(), RuntimeContext::neutral().with_work(2.0)],
        );
        b.schedule(k, &ContextSchedule::Weighted(vec![2.0, 1.0]), 1000);
        b.build()
    }

    /// Writes a materialized workload as a store with the given block
    /// length (test helper mirroring the streaming path).
    fn write_store(w: &Workload, dir: &Path, block_len: usize) {
        let mut writer = StoreWriter::create(&RealFs, dir, block_len).expect("create");
        writer.tables(&skeleton_of(w)).expect("tables");
        for chunk in w.invocations().chunks(block_len) {
            writer.block(chunk).expect("block");
        }
        writer
            .finish(&StreamSummary {
                fingerprint: w.fingerprint(),
                invocations: w.num_invocations() as u64,
            })
            .expect("finish");
    }

    fn skeleton_of(w: &Workload) -> Workload {
        Workload::new(
            w.name().to_string(),
            w.suite(),
            w.kernels().to_vec(),
            (0..w.kernels().len())
                .map(|k| w.contexts_of(KernelId(k as u32)).to_vec())
                .collect(),
            Vec::new(),
        )
    }

    #[test]
    fn roundtrip_bit_identical() {
        let dir = scratch("roundtrip");
        let w = sample_workload();
        write_store(&w, &dir, 256);
        let back = load_store(&RealFs, &dir).expect("load");
        assert_eq!(back, w);
        assert_eq!(back.fingerprint(), w.fingerprint());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_is_the_commit_point() {
        let dir = scratch("commit");
        let w = sample_workload();
        let mut writer = StoreWriter::create(&RealFs, &dir, 256).expect("create");
        writer.tables(&skeleton_of(&w)).expect("tables");
        writer.block(&w.invocations()[..256]).expect("block");
        // No finish: the store is not committed, opening it is NotFound.
        let e = open_store(&RealFs, &dir).expect_err("no manifest yet");
        match e {
            ColStoreError::Io(io) => assert!(io.is_not_found()),
            other => panic!("unexpected error {other}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_manifest_checksum_quarantines() {
        let dir = scratch("badsum");
        let w = sample_workload();
        write_store(&w, &dir, 256);
        let path = dir.join(MANIFEST_NAME);
        let mut text = RealFs.read_to_string(&path).expect("read");
        text = text.replacen("block_len 256", "block_len 512", 1);
        RealFs.write(&path, text.as_bytes()).expect("tamper");
        let e = open_store(&RealFs, &dir).expect_err("tampered manifest");
        assert_eq!(e, ColStoreError::ManifestChecksumMismatch);
        assert!(RealFs.exists(&stem_storage::sibling(&path, ".quarantined")));
        assert!(!RealFs.exists(&path));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_block_quarantines_with_typed_error() {
        let dir = scratch("tornblock");
        let w = sample_workload();
        write_store(&w, &dir, 256);
        let path = block_path(&dir, 1);
        let bytes = RealFs.read_bytes(&path).expect("read");
        RealFs.write(&path, &bytes[..bytes.len() / 2]).expect("tear");
        let e = load_store(&RealFs, &dir).expect_err("torn block");
        assert!(matches!(e, ColStoreError::BlockSize { index: 1, .. }), "{e}");
        assert!(RealFs.exists(&stem_storage::sibling(&path, ".quarantined")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_bit_fails_block_checksum() {
        let dir = scratch("bitflip");
        let w = sample_workload();
        write_store(&w, &dir, 256);
        let path = block_path(&dir, 0);
        let mut bytes = RealFs.read_bytes(&path).expect("read");
        bytes[7] ^= 0x40;
        RealFs.write(&path, &bytes).expect("flip");
        let e = load_store(&RealFs, &dir).expect_err("corrupt block");
        assert!(matches!(e, ColStoreError::BlockChecksumMismatch { index: 0 }), "{e}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_and_header_are_checked() {
        let dir = scratch("header");
        std::fs::create_dir_all(&dir).expect("dir");
        let path = dir.join(MANIFEST_NAME);
        RealFs.write(&path, b"garbage\n").expect("write");
        assert_eq!(
            open_store(&RealFs, &dir).expect_err("garbage"),
            ColStoreError::MissingHeader
        );
        // Quarantined; write a future version next.
        RealFs.write(&path, b"STEM-COLSTORE v9\nchecksum 0\n").expect("write");
        assert!(matches!(
            open_store(&RealFs, &dir).expect_err("future version"),
            ColStoreError::VersionMismatch { .. }
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
