//! Static kernel signatures: what the compiled code looks like.
//!
//! Everything here is constant across invocations of the same kernel —
//! launch geometry, per-thread dynamic instruction count, instruction mix,
//! memory footprint and the basic-block vector template. Runtime variation
//! lives in [`crate::context`].

use crate::error::{WorkloadError, WorkloadErrorKind};

/// Fractions of the dynamic instruction stream by class. Must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstructionMix {
    /// 32-bit floating point (FMA counted once).
    pub fp32: f64,
    /// 16-bit floating point / tensor-core issued ops.
    pub fp16: f64,
    /// Integer/address arithmetic.
    pub int_alu: f64,
    /// Global memory loads/stores.
    pub ldst_global: f64,
    /// Shared memory loads/stores.
    pub ldst_shared: f64,
    /// Branches and predicate manipulation.
    pub branch: f64,
    /// Transcendentals, shuffles, votes, barriers.
    pub special: f64,
}

impl InstructionMix {
    /// Validates and constructs a mix.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] if any fraction is negative or non-finite,
    /// or the sum differs from 1 by more than 1e-6.
    pub fn try_new(
        fp32: f64,
        fp16: f64,
        int_alu: f64,
        ldst_global: f64,
        ldst_shared: f64,
        branch: f64,
        special: f64,
    ) -> Result<Self, WorkloadError> {
        let mix = InstructionMix {
            fp32,
            fp16,
            int_alu,
            ldst_global,
            ldst_shared,
            branch,
            special,
        };
        for (name, v) in mix.named() {
            if !v.is_finite() {
                return Err(WorkloadError::new(
                    WorkloadErrorKind::Mix,
                    format!("instruction-mix fraction {name} is not finite"),
                ));
            }
            if v < 0.0 {
                return Err(WorkloadError::new(
                    WorkloadErrorKind::Mix,
                    format!("instruction-mix fraction {name} is negative"),
                ));
            }
        }
        let sum = mix.sum();
        if (sum - 1.0).abs() >= 1e-6 {
            return Err(WorkloadError::new(
                WorkloadErrorKind::Mix,
                format!("instruction-mix fractions must sum to 1, got {sum}"),
            ));
        }
        Ok(mix)
    }

    /// Panicking convenience wrapper over [`InstructionMix::try_new`].
    ///
    /// # Panics
    ///
    /// Panics on any input [`InstructionMix::try_new`] rejects.
    pub fn new(
        fp32: f64,
        fp16: f64,
        int_alu: f64,
        ldst_global: f64,
        ldst_shared: f64,
        branch: f64,
        special: f64,
    ) -> Self {
        match InstructionMix::try_new(fp32, fp16, int_alu, ldst_global, ldst_shared, branch, special)
        {
            Ok(mix) => mix,
            Err(e) => panic!("{e}"),
        }
    }

    /// A GEMM-like compute-bound mix.
    pub fn compute_bound() -> Self {
        InstructionMix::new(0.55, 0.10, 0.15, 0.08, 0.07, 0.03, 0.02)
    }

    /// A tensor-core-heavy mixed-precision mix.
    pub fn tensor_core() -> Self {
        InstructionMix::new(0.15, 0.55, 0.10, 0.08, 0.07, 0.03, 0.02)
    }

    /// A pooling/embedding-like memory-bound mix.
    pub fn memory_bound() -> Self {
        InstructionMix::new(0.10, 0.0, 0.25, 0.45, 0.05, 0.10, 0.05)
    }

    /// An elementwise/streaming mix (memory heavy, trivially parallel).
    pub fn streaming() -> Self {
        InstructionMix::new(0.25, 0.05, 0.20, 0.40, 0.0, 0.05, 0.05)
    }

    /// A branchy, irregular graph-traversal mix.
    pub fn irregular() -> Self {
        InstructionMix::new(0.05, 0.0, 0.30, 0.35, 0.05, 0.20, 0.05)
    }

    fn named(&self) -> [(&'static str, f64); 7] {
        [
            ("fp32", self.fp32),
            ("fp16", self.fp16),
            ("int_alu", self.int_alu),
            ("ldst_global", self.ldst_global),
            ("ldst_shared", self.ldst_shared),
            ("branch", self.branch),
            ("special", self.special),
        ]
    }

    fn sum(&self) -> f64 {
        self.fp32
            + self.fp16
            + self.int_alu
            + self.ldst_global
            + self.ldst_shared
            + self.branch
            + self.special
    }

    /// Fraction of instructions touching memory (global + shared).
    pub fn memory_fraction(&self) -> f64 {
        self.ldst_global + self.ldst_shared
    }
}

/// Static description of a GPU kernel: the information a binary-analysis
/// profiler (NVBit, NCU) could extract without running it.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelClass {
    /// Mangled-ish kernel name, e.g. `sgemm_128x64_nn`.
    pub name: String,
    /// Number of thread blocks (CTAs) launched.
    pub grid_dim: u32,
    /// Threads per CTA.
    pub block_dim: u32,
    /// Registers per thread (occupancy limiter).
    pub regs_per_thread: u32,
    /// Shared memory per CTA in bytes (occupancy limiter).
    pub shared_mem_per_cta: u32,
    /// Dynamic instructions per thread at `work_scale = 1`.
    pub instr_per_thread: u64,
    /// Instruction class fractions.
    pub mix: InstructionMix,
    /// Memory working set in bytes at `footprint_scale = 1`.
    pub footprint_bytes: u64,
    /// Average temporal reuse per byte of footprint (>= 1).
    pub reuse_factor: f64,
    /// Basic-block execution propensities; the BBV profiler perturbs this
    /// template per invocation. Length is the number of static basic blocks.
    pub bbv_template: Vec<f64>,
}

impl KernelClass {
    /// Validates invariant ranges.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] if geometry or counts are zero,
    /// `reuse_factor < 1` (or non-finite), or the BBV template is empty.
    pub fn try_validate(&self) -> Result<(), WorkloadError> {
        let fail = |message: String| Err(WorkloadError::new(WorkloadErrorKind::Kernel, message));
        if self.name.is_empty() {
            return fail("kernel name must be nonempty".to_string());
        }
        if self.grid_dim == 0 {
            return fail(format!("kernel {} has zero grid", self.name));
        }
        if self.block_dim == 0 {
            return fail(format!("kernel {} has zero block", self.name));
        }
        if self.instr_per_thread == 0 {
            return fail(format!("kernel {} has zero instructions", self.name));
        }
        if self.footprint_bytes == 0 {
            return fail(format!("kernel {} has zero footprint", self.name));
        }
        if !(self.reuse_factor >= 1.0 && self.reuse_factor.is_finite()) {
            return fail(format!("kernel {} has reuse factor < 1", self.name));
        }
        if self.bbv_template.is_empty() {
            return fail(format!("kernel {} has an empty BBV template", self.name));
        }
        Ok(())
    }

    /// Panicking convenience wrapper over [`KernelClass::try_validate`].
    ///
    /// # Panics
    ///
    /// Panics on any violation [`KernelClass::try_validate`] reports.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.grid_dim as u64 * self.block_dim as u64
    }

    /// Total dynamic instructions at `work_scale = 1`.
    pub fn total_instructions(&self) -> u64 {
        self.total_threads() * self.instr_per_thread
    }

    /// Warps per CTA (warp size 32, rounded up).
    pub fn warps_per_cta(&self) -> u32 {
        self.block_dim.div_ceil(32)
    }

    /// Total warps in the launch.
    pub fn total_warps(&self) -> u64 {
        self.grid_dim as u64 * self.warps_per_cta() as u64
    }
}

/// A builder-style convenience constructor for common kernel shapes.
#[derive(Debug, Clone)]
pub struct KernelClassBuilder {
    inner: KernelClass,
}

impl KernelClassBuilder {
    /// Starts from a named kernel with defaults typical of a mid-size ML
    /// kernel; override fields with the builder methods.
    pub fn new(name: impl Into<String>) -> Self {
        KernelClassBuilder {
            inner: KernelClass {
                name: name.into(),
                grid_dim: 128,
                block_dim: 256,
                regs_per_thread: 32,
                shared_mem_per_cta: 8 * 1024,
                instr_per_thread: 2_000,
                mix: InstructionMix::compute_bound(),
                footprint_bytes: 8 * 1024 * 1024,
                reuse_factor: 4.0,
                bbv_template: vec![1.0; 8],
            },
        }
    }

    /// Sets the launch geometry.
    pub fn geometry(mut self, grid: u32, block: u32) -> Self {
        self.inner.grid_dim = grid;
        self.inner.block_dim = block;
        self
    }

    /// Sets per-thread registers and per-CTA shared memory.
    pub fn resources(mut self, regs: u32, shared: u32) -> Self {
        self.inner.regs_per_thread = regs;
        self.inner.shared_mem_per_cta = shared;
        self
    }

    /// Sets dynamic instructions per thread.
    pub fn instructions(mut self, per_thread: u64) -> Self {
        self.inner.instr_per_thread = per_thread;
        self
    }

    /// Sets the instruction mix.
    pub fn mix(mut self, mix: InstructionMix) -> Self {
        self.inner.mix = mix;
        self
    }

    /// Sets the memory footprint and reuse factor.
    pub fn memory(mut self, footprint: u64, reuse: f64) -> Self {
        self.inner.footprint_bytes = footprint;
        self.inner.reuse_factor = reuse;
        self
    }

    /// Sets the basic-block vector template.
    pub fn bbv(mut self, template: Vec<f64>) -> Self {
        self.inner.bbv_template = template;
        self
    }

    /// Finishes, validating invariants.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] if the resulting kernel fails
    /// [`KernelClass::try_validate`].
    pub fn try_build(self) -> Result<KernelClass, WorkloadError> {
        self.inner.try_validate()?;
        Ok(self.inner)
    }

    /// Finishes, validating invariants.
    ///
    /// # Panics
    ///
    /// Panics if the resulting kernel fails [`KernelClass::validate`].
    pub fn build(self) -> KernelClass {
        self.inner.validate();
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_mixes_are_valid() {
        // Constructors run the validating `new`, so this just exercises them.
        for mix in [
            InstructionMix::compute_bound(),
            InstructionMix::tensor_core(),
            InstructionMix::memory_bound(),
            InstructionMix::streaming(),
            InstructionMix::irregular(),
        ] {
            assert!((mix.sum() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn memory_fraction_ordering() {
        assert!(
            InstructionMix::memory_bound().memory_fraction()
                > InstructionMix::compute_bound().memory_fraction()
        );
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_mix_rejected() {
        InstructionMix::new(0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "is negative")]
    fn negative_mix_rejected() {
        InstructionMix::new(1.2, -0.2, 0.0, 0.0, 0.0, 0.0, 0.0);
    }

    #[test]
    fn builder_roundtrip() {
        let k = KernelClassBuilder::new("sgemm_128x64_nn")
            .geometry(512, 128)
            .resources(64, 48 * 1024)
            .instructions(10_000)
            .mix(InstructionMix::compute_bound())
            .memory(64 * 1024 * 1024, 16.0)
            .bbv(vec![4.0, 2.0, 1.0])
            .build();
        assert_eq!(k.name, "sgemm_128x64_nn");
        assert_eq!(k.total_threads(), 512 * 128);
        assert_eq!(k.warps_per_cta(), 4);
        assert_eq!(k.total_warps(), 512 * 4);
        assert_eq!(k.total_instructions(), 512 * 128 * 10_000);
    }

    #[test]
    fn warps_round_up() {
        let k = KernelClassBuilder::new("odd").geometry(1, 33).build();
        assert_eq!(k.warps_per_cta(), 2);
    }

    #[test]
    #[should_panic(expected = "zero grid")]
    fn zero_grid_rejected() {
        KernelClassBuilder::new("bad").geometry(0, 32).build();
    }
}
