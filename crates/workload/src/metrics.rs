//! The 13 microarchitectural metrics of the paper's Sec. 5.5 validation.
//!
//! Four categories: (1) shared/global memory access patterns, (2) L1/L2
//! cache accesses, (3) 16/32-bit floating-point operation counts, and
//! (4) warp execution/branch efficiencies. The *types* live here (pure
//! data); the values are computed per invocation by `gpu-sim`'s metric
//! model, and Figure 14 compares full-workload sums against weighted
//! sampled estimates.


/// Number of metrics collected (the paper's 13).
pub const METRIC_COUNT: usize = 13;

/// The four metric categories of Sec. 5.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetricCategory {
    /// Shared/global memory access patterns.
    MemoryAccess,
    /// L1/L2 cache accesses.
    Cache,
    /// 16/32-bit floating point operation counts.
    FloatingPoint,
    /// Warp execution / branch efficiencies.
    Efficiency,
}

/// The 13 collected metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum MetricKind {
    /// Global load transactions.
    GlobalLoadTransactions = 0,
    /// Global store transactions.
    GlobalStoreTransactions = 1,
    /// Shared load transactions.
    SharedLoadTransactions = 2,
    /// Shared store transactions.
    SharedStoreTransactions = 3,
    /// L1 accesses.
    L1Accesses = 4,
    /// L1 hit rate (reads).
    L1HitRate = 5,
    /// L2 accesses.
    L2Accesses = 6,
    /// L2 read hit rate (writes always hit per GPU cache policy; Sec. 5.5).
    L2ReadHitRate = 7,
    /// DRAM bytes read.
    DramReadBytes = 8,
    /// FP16 operations executed.
    Fp16Ops = 9,
    /// FP32 operations executed.
    Fp32Ops = 10,
    /// Warp execution efficiency (active-lane fraction).
    WarpExecutionEfficiency = 11,
    /// Branch efficiency (non-divergent branch fraction).
    BranchEfficiency = 12,
}

impl MetricKind {
    /// All metrics, in index order.
    pub const ALL: [MetricKind; METRIC_COUNT] = [
        MetricKind::GlobalLoadTransactions,
        MetricKind::GlobalStoreTransactions,
        MetricKind::SharedLoadTransactions,
        MetricKind::SharedStoreTransactions,
        MetricKind::L1Accesses,
        MetricKind::L1HitRate,
        MetricKind::L2Accesses,
        MetricKind::L2ReadHitRate,
        MetricKind::DramReadBytes,
        MetricKind::Fp16Ops,
        MetricKind::Fp32Ops,
        MetricKind::WarpExecutionEfficiency,
        MetricKind::BranchEfficiency,
    ];

    /// The metric's vector index.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Category grouping (Sec. 5.5's four categories).
    pub fn category(self) -> MetricCategory {
        use MetricKind::*;
        match self {
            GlobalLoadTransactions | GlobalStoreTransactions | SharedLoadTransactions
            | SharedStoreTransactions => MetricCategory::MemoryAccess,
            L1Accesses | L1HitRate | L2Accesses | L2ReadHitRate | DramReadBytes => {
                MetricCategory::Cache
            }
            Fp16Ops | Fp32Ops => MetricCategory::FloatingPoint,
            WarpExecutionEfficiency | BranchEfficiency => MetricCategory::Efficiency,
        }
    }

    /// Whether the metric is a *rate* in `[0, 1]` (aggregated by weighted
    /// average) rather than a count (aggregated by weighted sum).
    pub fn is_rate(self) -> bool {
        matches!(
            self,
            MetricKind::L1HitRate
                | MetricKind::L2ReadHitRate
                | MetricKind::WarpExecutionEfficiency
                | MetricKind::BranchEfficiency
        )
    }

    /// Short display name matching profiler output conventions.
    pub fn short_name(self) -> &'static str {
        use MetricKind::*;
        match self {
            GlobalLoadTransactions => "gld_transactions",
            GlobalStoreTransactions => "gst_transactions",
            SharedLoadTransactions => "shared_ld_transactions",
            SharedStoreTransactions => "shared_st_transactions",
            L1Accesses => "l1_accesses",
            L1HitRate => "l1_hit_rate",
            L2Accesses => "l2_accesses",
            L2ReadHitRate => "l2_read_hit_rate",
            DramReadBytes => "dram_read_bytes",
            Fp16Ops => "fp16_ops",
            Fp32Ops => "fp32_ops",
            WarpExecutionEfficiency => "warp_exec_efficiency",
            BranchEfficiency => "branch_efficiency",
        }
    }
}

impl std::fmt::Display for MetricKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// A per-invocation metric vector, indexed by [`MetricKind`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricVector(pub [f64; METRIC_COUNT]);

impl MetricVector {
    /// All-zero vector.
    pub fn zero() -> Self {
        MetricVector([0.0; METRIC_COUNT])
    }

    /// Value of one metric.
    pub fn get(&self, kind: MetricKind) -> f64 {
        self.0[kind.index()]
    }

    /// Sets one metric.
    pub fn set(&mut self, kind: MetricKind, value: f64) {
        self.0[kind.index()] = value;
    }

    /// Accumulates counts by sum and rates by `weight`-weighted mean
    /// bookkeeping: the caller accumulates `rate * weight` here and divides
    /// by total weight at the end via [`MetricVector::finish_rates`].
    pub fn accumulate(&mut self, other: &MetricVector, weight: f64) {
        for kind in MetricKind::ALL {
            let i = kind.index();
            self.0[i] += other.0[i] * weight;
        }
    }

    /// Divides rate metrics by `total_weight`, turning accumulated
    /// `rate * weight` sums into weighted means. Count metrics are left as
    /// weighted sums.
    ///
    /// # Panics
    ///
    /// Panics if `total_weight <= 0`.
    pub fn finish_rates(&mut self, total_weight: f64) {
        assert!(total_weight > 0.0, "total weight must be positive");
        for kind in MetricKind::ALL {
            if kind.is_rate() {
                self.0[kind.index()] /= total_weight;
            }
        }
    }
}

impl Default for MetricVector {
    fn default() -> Self {
        MetricVector::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_covers_every_index_once() {
        let mut seen = [false; METRIC_COUNT];
        for kind in MetricKind::ALL {
            assert!(!seen[kind.index()], "duplicate index {}", kind.index());
            seen[kind.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn four_categories_all_present() {
        use std::collections::HashSet;
        let cats: HashSet<_> = MetricKind::ALL.iter().map(|k| k.category()).collect();
        assert_eq!(cats.len(), 4);
    }

    #[test]
    fn rates_are_exactly_four() {
        let rates = MetricKind::ALL.iter().filter(|k| k.is_rate()).count();
        assert_eq!(rates, 4);
    }

    #[test]
    fn accumulate_and_finish() {
        let mut acc = MetricVector::zero();
        let mut a = MetricVector::zero();
        a.set(MetricKind::Fp32Ops, 100.0);
        a.set(MetricKind::L1HitRate, 0.8);
        let mut b = MetricVector::zero();
        b.set(MetricKind::Fp32Ops, 50.0);
        b.set(MetricKind::L1HitRate, 0.4);
        acc.accumulate(&a, 2.0);
        acc.accumulate(&b, 2.0);
        acc.finish_rates(4.0);
        assert_eq!(acc.get(MetricKind::Fp32Ops), 300.0); // weighted sum
        assert!((acc.get(MetricKind::L1HitRate) - 0.6).abs() < 1e-12); // weighted mean
    }

    #[test]
    fn display_short_names() {
        assert_eq!(MetricKind::L2ReadHitRate.to_string(), "l2_read_hit_rate");
    }

    #[test]
    #[should_panic(expected = "total weight must be positive")]
    fn finish_rejects_zero_weight() {
        MetricVector::zero().finish_rates(0.0);
    }
}
