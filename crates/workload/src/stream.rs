//! Block-streaming workload emission: the out-of-core counterpart of
//! materialized [`Workload`](crate::Workload) construction.
//!
//! A *block stream* is the sequence a streaming producer emits: first the
//! workload's frozen tables (a *skeleton* — name, suite, kernel and
//! context tables, zero invocations), then the invocation stream cut into
//! fixed-size blocks. Consumers that only need a left-to-right pass
//! (ground-truth simulation, fingerprinting, the columnar store writer)
//! never hold more than one block in memory.
//!
//! Two sinks live here:
//!
//! * [`ChannelSink`] forwards items into a bounded channel — the producer
//!   half of `stem-par`'s pipelined generate→simulate→fold executor.
//! * `colstore::StoreWriter` (in [`crate::colstore`]) commits blocks to
//!   disk through the `stem-storage` durability contract.

use crate::colstore::ColStoreError;
use crate::invocation::Invocation;
use crate::trace::Workload;
use std::sync::mpsc::SyncSender;

/// Why a block stream stopped.
#[derive(Debug, Clone, PartialEq)]
pub enum SinkError {
    /// The consumer hung up (a pipelined executor that stopped early);
    /// the producer should stop generating.
    Closed,
    /// The sink's storage commit failed.
    Store(Box<ColStoreError>),
}

impl std::fmt::Display for SinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SinkError::Closed => f.write_str("block stream consumer hung up"),
            SinkError::Store(e) => write!(f, "block stream store error: {e}"),
        }
    }
}

impl std::error::Error for SinkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SinkError::Closed => None,
            SinkError::Store(e) => Some(e.as_ref()),
        }
    }
}

impl From<ColStoreError> for SinkError {
    fn from(e: ColStoreError) -> Self {
        SinkError::Store(Box::new(e))
    }
}

/// What a completed stream produced: enough to key caches and
/// cross-check a consumer without materializing anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSummary {
    /// FNV-1a 64 content fingerprint — identical to
    /// [`Workload::fingerprint`](crate::Workload::fingerprint) of the
    /// materialized equivalent (same fold, same byte order).
    pub fingerprint: u64,
    /// Total invocations emitted.
    pub invocations: u64,
}

/// Receives a block stream: the frozen tables once, then each block of
/// invocations in stream order.
pub trait BlockSink {
    /// Receives the frozen tables as a skeleton workload (validated
    /// kernel/context tables, zero invocations). Called exactly once,
    /// before any block.
    ///
    /// # Errors
    ///
    /// [`SinkError`] if the sink cannot accept the stream.
    fn tables(&mut self, skeleton: &Workload) -> Result<(), SinkError>;

    /// Receives one block of invocations (every block but the last has
    /// exactly the producer's block length).
    ///
    /// # Errors
    ///
    /// [`SinkError`] if the sink cannot accept the block.
    fn block(&mut self, invocations: &[Invocation]) -> Result<(), SinkError>;
}

/// One item of a channel-borne block stream.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamItem {
    /// The frozen tables (always the first item).
    Tables(Workload),
    /// One block of invocations, in stream order.
    Block(Vec<Invocation>),
}

/// A [`BlockSink`] forwarding items into a bounded channel: the producer
/// half of the pipelined generate→simulate→fold executor. A send blocks
/// the producer once the channel holds its capacity in undelivered
/// items — that bound is the pipeline's peak-memory knob.
#[derive(Debug)]
pub struct ChannelSink {
    tx: SyncSender<StreamItem>,
}

impl ChannelSink {
    /// Wraps the sending half of a bounded channel.
    pub fn new(tx: SyncSender<StreamItem>) -> Self {
        ChannelSink { tx }
    }
}

impl BlockSink for ChannelSink {
    fn tables(&mut self, skeleton: &Workload) -> Result<(), SinkError> {
        self.tx
            .send(StreamItem::Tables(skeleton.clone()))
            .map_err(|_| SinkError::Closed)
    }

    fn block(&mut self, invocations: &[Invocation]) -> Result<(), SinkError> {
        self.tx
            .send(StreamItem::Block(invocations.to_vec()))
            .map_err(|_| SinkError::Closed)
    }
}

/// A [`BlockSink`] that materializes the stream back into tables plus a
/// flat invocation vector — the reference consumer the equivalence tests
/// compare streamed paths against, and the bridge for consumers that
/// genuinely need a whole [`Workload`].
#[derive(Debug, Default)]
pub struct CollectSink {
    skeleton: Option<Workload>,
    invocations: Vec<Invocation>,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> Self {
        CollectSink::default()
    }

    /// Assembles the collected stream into a validated [`Workload`].
    ///
    /// # Panics
    ///
    /// Panics if no tables were received or the stream violates table
    /// ranges (producer bug — generation sinks emit validated streams).
    pub fn into_workload(self) -> Workload {
        let skeleton = match self.skeleton {
            Some(s) => s,
            None => panic!("stream sent no tables before its blocks"),
        };
        Workload::new(
            skeleton.name().to_string(),
            skeleton.suite(),
            skeleton.kernels().to_vec(),
            (0..skeleton.kernels().len())
                .map(|k| skeleton.contexts_of(crate::invocation::KernelId(k as u32)).to_vec())
                .collect(),
            self.invocations,
        )
    }
}

impl Workload {
    /// Replays this materialized workload as a block stream: skeleton
    /// tables first, then the invocation vector cut into `block_len`
    /// chunks. Lets every streaming consumer (the pipelined executor,
    /// the columnar store writer) also run off an in-memory workload —
    /// the bridge the streamed-vs-reference equivalence gates use.
    ///
    /// # Errors
    ///
    /// Propagates the sink's [`SinkError`].
    ///
    /// # Panics
    ///
    /// Panics if `block_len` is zero.
    pub fn stream_blocks(
        &self,
        sink: &mut dyn BlockSink,
        block_len: usize,
    ) -> Result<StreamSummary, SinkError> {
        assert!(block_len > 0, "block length must be positive");
        let skeleton = Workload::new(
            self.name().to_string(),
            self.suite(),
            self.kernels().to_vec(),
            (0..self.kernels().len())
                .map(|k| self.contexts_of(crate::invocation::KernelId(k as u32)).to_vec())
                .collect(),
            Vec::new(),
        );
        sink.tables(&skeleton)?;
        for chunk in self.invocations().chunks(block_len) {
            sink.block(chunk)?;
        }
        Ok(StreamSummary {
            fingerprint: self.fingerprint(),
            invocations: self.num_invocations() as u64,
        })
    }
}

impl BlockSink for CollectSink {
    fn tables(&mut self, skeleton: &Workload) -> Result<(), SinkError> {
        self.skeleton = Some(skeleton.clone());
        Ok(())
    }

    fn block(&mut self, invocations: &[Invocation]) -> Result<(), SinkError> {
        self.invocations.extend_from_slice(invocations);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites::rodinia_sources;

    #[test]
    fn stream_blocks_round_trips_through_collect() {
        let w = rodinia_sources(11)[0].materialize();
        let mut sink = CollectSink::new();
        let summary = w.stream_blocks(&mut sink, 64).expect("collect never fails");
        assert_eq!(summary.fingerprint, w.fingerprint());
        assert_eq!(summary.invocations, w.num_invocations() as u64);
        assert_eq!(sink.into_workload(), w);
    }
}
