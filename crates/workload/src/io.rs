//! Plain-text workload serialization.
//!
//! A released sampling tool must accept workloads its users describe from
//! their own profiler exports. This module defines a line-oriented format
//! (one record per line, whitespace-separated) that round-trips
//! [`Workload`] exactly:
//!
//! ```text
//! # stem-workload v1
//! name my_app
//! suite custom
//! kernel sgemm 256 256 96 49152 8000 0.55 0.1 0.15 0.08 0.07 0.03 0.02 33554432 24 1,8,4
//! context 0 1.0 1.0 4.0 0.03
//! inv 0 0 1.0 0.5
//! ```
//!
//! `kernel` fields: name, grid, block, regs, shared, instr/thread, the 7
//! mix fractions, footprint bytes, reuse factor, comma-separated BBV.
//! `context` fields: kernel index, work, footprint, locality, jitter.
//! `inv` fields: kernel index, context index, work scale, noise z.

use crate::context::RuntimeContext;
use crate::invocation::{Invocation, KernelId};
use crate::kernel::{InstructionMix, KernelClass};
use crate::trace::{SuiteKind, Workload};
use std::fmt::Write as _;

/// Error parsing the workload format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseWorkloadError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseWorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "workload parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseWorkloadError {}

/// Serializes a workload to the v1 text format.
pub fn to_text(workload: &Workload) -> String {
    let mut out = String::from("# stem-workload v1\n");
    writeln!(out, "name {}", workload.name()).expect("write to string");
    writeln!(out, "suite {}", workload.suite()).expect("write to string");
    for k in workload.kernels() {
        let bbv = k
            .bbv_template
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(",");
        writeln!(
            out,
            "kernel {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
            k.name,
            k.grid_dim,
            k.block_dim,
            k.regs_per_thread,
            k.shared_mem_per_cta,
            k.instr_per_thread,
            k.mix.fp32,
            k.mix.fp16,
            k.mix.int_alu,
            k.mix.ldst_global,
            k.mix.ldst_shared,
            k.mix.branch,
            k.mix.special,
            k.footprint_bytes,
            k.reuse_factor,
            bbv
        )
        .expect("write to string");
    }
    for (ki, _) in workload.kernels().iter().enumerate() {
        for c in workload.contexts_of(KernelId(ki as u32)) {
            writeln!(
                out,
                "context {} {} {} {} {}",
                ki, c.work_scale, c.footprint_scale, c.locality_boost, c.jitter_cov
            )
            .expect("write to string");
        }
    }
    for inv in workload.invocations() {
        writeln!(
            out,
            "inv {} {} {} {}",
            inv.kernel.0, inv.context, inv.work_scale, inv.noise_z
        )
        .expect("write to string");
    }
    out
}

/// Parses the v1 text format back into a validated [`Workload`].
///
/// # Errors
///
/// Returns [`ParseWorkloadError`] on malformed input — both *syntactic*
/// problems (bad numbers, short records) and *semantic* violations (index
/// ranges, degenerate values) reported by [`Workload::try_new`]. An
/// external document can never panic the parser.
pub fn from_text(text: &str) -> Result<Workload, ParseWorkloadError> {
    let mut name = String::from("unnamed");
    let mut suite = SuiteKind::Custom;
    let mut kernels: Vec<KernelClass> = Vec::new();
    let mut contexts: Vec<Vec<RuntimeContext>> = Vec::new();
    let mut invocations: Vec<Invocation> = Vec::new();

    let err = |line: usize, message: &str| ParseWorkloadError {
        line,
        message: message.to_string(),
    };

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().expect("nonempty line has a first token");
        let rest: Vec<&str> = parts.collect();
        match tag {
            "name" => {
                name = rest.join(" ");
            }
            "suite" => {
                suite = match rest.first().copied() {
                    Some("rodinia") => SuiteKind::Rodinia,
                    Some("casio") => SuiteKind::Casio,
                    Some("huggingface") => SuiteKind::Huggingface,
                    Some("custom") => SuiteKind::Custom,
                    other => {
                        return Err(err(line_no, &format!("unknown suite {other:?}")));
                    }
                };
            }
            "kernel" => {
                if rest.len() != 16 {
                    return Err(err(line_no, "kernel record needs 16 fields"));
                }
                let f = |s: &str| -> Result<f64, ParseWorkloadError> {
                    s.parse().map_err(|_| err(line_no, "bad number"))
                };
                let u = |s: &str| -> Result<u64, ParseWorkloadError> {
                    s.parse().map_err(|_| err(line_no, "bad integer"))
                };
                let bbv: Result<Vec<f64>, _> = rest[15].split(',').map(f).collect();
                let mix = InstructionMix::try_new(
                    f(rest[6])?,
                    f(rest[7])?,
                    f(rest[8])?,
                    f(rest[9])?,
                    f(rest[10])?,
                    f(rest[11])?,
                    f(rest[12])?,
                )
                .map_err(|e| err(line_no, &e.to_string()))?;
                kernels.push(KernelClass {
                    name: rest[0].to_string(),
                    grid_dim: u(rest[1])? as u32,
                    block_dim: u(rest[2])? as u32,
                    regs_per_thread: u(rest[3])? as u32,
                    shared_mem_per_cta: u(rest[4])? as u32,
                    instr_per_thread: u(rest[5])?,
                    mix,
                    footprint_bytes: u(rest[13])?,
                    reuse_factor: f(rest[14])?,
                    bbv_template: bbv?,
                });
                contexts.push(Vec::new());
            }
            "context" => {
                if rest.len() != 5 {
                    return Err(err(line_no, "context record needs 5 fields"));
                }
                let ki: usize = rest[0].parse().map_err(|_| err(line_no, "bad kernel index"))?;
                if ki >= contexts.len() {
                    return Err(err(line_no, "context before its kernel"));
                }
                let f = |s: &str| -> Result<f64, ParseWorkloadError> {
                    s.parse().map_err(|_| err(line_no, "bad number"))
                };
                contexts[ki].push(
                    RuntimeContext::neutral()
                        .with_work(f(rest[1])?)
                        .with_footprint(f(rest[2])?)
                        .with_locality(f(rest[3])?)
                        .with_jitter(f(rest[4])?),
                );
            }
            "inv" => {
                if rest.len() != 4 {
                    return Err(err(line_no, "inv record needs 4 fields"));
                }
                let kernel: u32 = rest[0].parse().map_err(|_| err(line_no, "bad kernel index"))?;
                let context: u16 = rest[1].parse().map_err(|_| err(line_no, "bad context index"))?;
                let work: f32 = rest[2].parse().map_err(|_| err(line_no, "bad work scale"))?;
                let noise: f32 = rest[3].parse().map_err(|_| err(line_no, "bad noise"))?;
                invocations.push(Invocation::with_work(KernelId(kernel), context, work, noise));
            }
            other => {
                return Err(err(line_no, &format!("unknown record tag {other}")));
            }
        }
    }
    if kernels.is_empty() {
        return Err(err(text.lines().count().max(1), "no kernels defined"));
    }
    // Semantic violations (index ranges, degenerate values) become parse
    // errors too: this is an ingestion path, so bad input must never panic.
    Workload::try_new(name, suite, kernels, contexts, invocations)
        .map_err(|e| err(text.lines().count().max(1), &e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites::rodinia_suite;

    #[test]
    fn roundtrip_suite_workload() {
        let original = &rodinia_suite(81)[4]; // gaussian: work scales + jitter
        let text = to_text(original);
        let back = from_text(&text).expect("valid serialization");
        assert_eq!(back.name(), original.name());
        assert_eq!(back.suite(), original.suite());
        assert_eq!(back.kernels(), original.kernels());
        assert_eq!(back.num_invocations(), original.num_invocations());
        // f32 fields round-trip exactly through Display.
        for (a, b) in back.invocations().iter().zip(original.invocations()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let original = &rodinia_suite(81)[0];
        let mut text = to_text(original);
        text.push_str("\n# trailing comment\n\n");
        assert!(from_text(&text).is_ok());
    }

    #[test]
    fn unknown_tag_rejected() {
        let e = from_text("wibble 1 2 3\n").expect_err("unknown tag");
        assert!(e.message.contains("unknown record tag"));
        assert_eq!(e.line, 1);
    }

    #[test]
    fn short_kernel_record_rejected() {
        let e = from_text("kernel a 1 2\n").expect_err("short record");
        assert!(e.message.contains("16 fields"));
    }

    #[test]
    fn context_before_kernel_rejected() {
        let e = from_text("context 0 1 1 1 0.1\n").expect_err("orphan context");
        assert!(e.message.contains("before its kernel"));
    }

    #[test]
    fn empty_document_rejected() {
        assert!(from_text("# nothing\n").is_err());
    }

    #[test]
    fn display_of_error() {
        let e = from_text("inv x\n").expect_err("bad inv");
        let s = e.to_string();
        assert!(s.contains("line 1"));
    }
}
