//! Incremental workload construction.
//!
//! The suite generators and downstream users build workloads through this
//! builder: register kernel classes with their runtime contexts, then
//! append invocations either one at a time or through a
//! [`ContextSchedule`].

use crate::context::{ContextSchedule, RuntimeContext};
use crate::invocation::{Invocation, KernelId};
use crate::kernel::KernelClass;
use crate::stream::{BlockSink, SinkError, StreamSummary};
use crate::trace::{FingerprintFold, SuiteKind, Workload};
use stem_stats::rng::{RngExt, SeedableRng, StdRng};

/// Builder for [`Workload`].
///
/// # Example
///
/// ```
/// use gpu_workload::{WorkloadBuilder, RuntimeContext, ContextSchedule, SuiteKind};
/// use gpu_workload::kernel::KernelClassBuilder;
///
/// let mut b = WorkloadBuilder::new("demo", SuiteKind::Custom, 42);
/// let gemm = b.add_kernel(
///     KernelClassBuilder::new("gemm").build(),
///     vec![RuntimeContext::neutral(), RuntimeContext::neutral().with_work(2.0)],
/// );
/// b.schedule(gemm, &ContextSchedule::Weighted(vec![3.0, 1.0]), 100);
/// let w = b.build();
/// assert_eq!(w.num_invocations(), 100);
/// ```
#[derive(Debug)]
pub struct WorkloadBuilder<'s> {
    name: String,
    suite: SuiteKind,
    kernels: Vec<KernelClass>,
    contexts: Vec<Vec<RuntimeContext>>,
    invocations: Vec<Invocation>,
    rng: StdRng,
    sink: Option<SinkState<'s>>,
}

/// Streaming-mode state: where blocks go and the running fingerprint.
#[derive(Debug)]
struct SinkState<'s> {
    sink: &'s mut dyn BlockSink,
    block_len: usize,
    /// Tables frozen (header folded, skeleton delivered)?
    frozen: bool,
    emitted: u64,
    fold: FingerprintFold,
    /// First sink failure; emission stops, `finish_stream` reports it.
    failed: Option<SinkError>,
}

impl std::fmt::Debug for dyn BlockSink + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("dyn BlockSink")
    }
}

impl<'s> WorkloadBuilder<'s> {
    /// Starts an empty workload. All randomness (context draws, jitter
    /// draws) is derived from `seed`, so builds are reproducible.
    pub fn new(name: impl Into<String>, suite: SuiteKind, seed: u64) -> Self {
        WorkloadBuilder {
            name: name.into(),
            suite,
            kernels: Vec::new(),
            contexts: Vec::new(),
            invocations: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            sink: None,
        }
    }

    /// Starts a *streaming* workload: invocations are cut into blocks of
    /// `block_len` and handed to `sink` instead of accumulating, so peak
    /// memory is one block regardless of stream length. The RNG stream
    /// is identical to the materialized builder's, so the streamed
    /// content (and its fingerprint) matches [`WorkloadBuilder::build`]
    /// of the same generator bit-for-bit. Finish with
    /// [`WorkloadBuilder::finish_stream`], not [`WorkloadBuilder::build`].
    ///
    /// # Panics
    ///
    /// Panics if `block_len` is zero.
    pub fn streaming(
        name: impl Into<String>,
        suite: SuiteKind,
        seed: u64,
        sink: &'s mut dyn BlockSink,
        block_len: usize,
    ) -> Self {
        assert!(block_len > 0, "streaming block length must be positive");
        let mut b = WorkloadBuilder::new(name, suite, seed);
        b.invocations.reserve(block_len);
        b.sink = Some(SinkState {
            sink,
            block_len,
            frozen: false,
            emitted: 0,
            fold: FingerprintFold::new(),
            failed: None,
        });
        b
    }

    /// Registers a kernel class with its runtime contexts, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if the kernel or any context is invalid, `contexts` is
    /// empty, or (in streaming mode) an invocation was already emitted —
    /// a streaming producer must register every kernel before its first
    /// invocation, because the tables are frozen and shipped downstream
    /// at that point.
    pub fn add_kernel(&mut self, kernel: KernelClass, contexts: Vec<RuntimeContext>) -> KernelId {
        if let Some(sink) = &self.sink {
            assert!(
                !sink.frozen,
                "streaming builder: kernel {} registered after the first invocation \
                 (tables are frozen and shipped at that point)",
                kernel.name
            );
        }
        kernel.validate();
        assert!(
            !contexts.is_empty(),
            "kernel {} needs at least one context",
            kernel.name
        );
        for c in &contexts {
            c.validate();
        }
        let id = KernelId(self.kernels.len() as u32);
        self.kernels.push(kernel);
        self.contexts.push(contexts);
        id
    }

    /// Appends a single invocation with an explicit context and extra work
    /// multiplier; jitter is drawn from the builder's RNG.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `context` is out of range or `work_scale` is
    /// not positive.
    pub fn invoke(&mut self, kernel: KernelId, context: u16, work_scale: f32) {
        assert!(
            kernel.index() < self.kernels.len(),
            "unknown kernel {kernel}"
        );
        assert!(
            (context as usize) < self.contexts[kernel.index()].len(),
            "kernel {kernel} has no context {context}"
        );
        let z = standard_normal(&mut self.rng) as f32;
        let inv = Invocation::with_work(kernel, context, work_scale, z);
        if self.sink.is_some() {
            self.stream_invoke(inv);
        } else {
            self.invocations.push(inv);
        }
    }

    /// Streaming-mode append: freeze tables on first call, fold the
    /// fingerprint, flush a full block. After a sink failure the RNG
    /// keeps advancing (draws happen before this point) but nothing more
    /// is emitted; the failure surfaces from `finish_stream`.
    fn stream_invoke(&mut self, inv: Invocation) {
        let Some(state) = self.sink.as_mut() else {
            return;
        };
        if state.failed.is_some() {
            return;
        }
        if !state.frozen {
            state.frozen = true;
            state
                .fold
                .eat_header(&self.name, self.suite, &self.kernels, &self.contexts);
            let skeleton = Workload::new(
                self.name.clone(),
                self.suite,
                self.kernels.clone(),
                self.contexts.clone(),
                Vec::new(),
            );
            if let Err(e) = state.sink.tables(&skeleton) {
                state.failed = Some(e);
                return;
            }
        }
        state.fold.eat_invocation(&inv);
        state.emitted += 1;
        self.invocations.push(inv);
        if self.invocations.len() == state.block_len {
            if let Err(e) = state.sink.block(&self.invocations) {
                state.failed = Some(e);
            }
            self.invocations.clear();
        }
    }

    /// Appends `count` invocations following a [`ContextSchedule`], all at
    /// unit extra work.
    ///
    /// # Panics
    ///
    /// Panics if the kernel is unknown or the schedule is invalid for the
    /// kernel's context count.
    pub fn schedule(&mut self, kernel: KernelId, schedule: &ContextSchedule, count: usize) {
        assert!(
            kernel.index() < self.kernels.len(),
            "unknown kernel {kernel}"
        );
        let num_contexts = self.contexts[kernel.index()].len();
        schedule.validate(num_contexts);
        match schedule {
            ContextSchedule::Weighted(weights) => {
                let total: f64 = weights.iter().sum();
                for _ in 0..count {
                    let mut target = self.rng.random::<f64>() * total;
                    let mut chosen = weights.len() - 1;
                    for (i, &w) in weights.iter().enumerate() {
                        target -= w;
                        if target <= 0.0 {
                            chosen = i;
                            break;
                        }
                    }
                    self.invoke(kernel, chosen as u16, 1.0);
                }
            }
            ContextSchedule::Cyclic => {
                for i in 0..count {
                    self.invoke(kernel, (i % num_contexts) as u16, 1.0);
                }
            }
            ContextSchedule::Phased(phases) => {
                let mut emitted = 0usize;
                'outer: loop {
                    for &(ctx, phase_count) in phases {
                        for _ in 0..phase_count {
                            if emitted == count {
                                break 'outer;
                            }
                            self.invoke(kernel, ctx as u16, 1.0);
                            emitted += 1;
                        }
                    }
                    if emitted == count {
                        break;
                    }
                }
            }
        }
    }

    /// Number of invocations appended so far.
    pub fn len(&self) -> usize {
        self.invocations.len()
    }

    /// Whether no invocations have been appended yet.
    pub fn is_empty(&self) -> bool {
        self.invocations.is_empty()
    }

    /// Finalizes into a validated [`Workload`].
    ///
    /// # Panics
    ///
    /// Panics if no kernels were registered, or if the builder was
    /// started in streaming mode (use
    /// [`WorkloadBuilder::finish_stream`] there — earlier blocks are
    /// already downstream, so nothing could be materialized here).
    pub fn build(self) -> Workload {
        assert!(
            self.sink.is_none(),
            "streaming builder must be finished with finish_stream, not build"
        );
        Workload::new(
            self.name,
            self.suite,
            self.kernels,
            self.contexts,
            self.invocations,
        )
    }

    /// Finalizes a streaming build: flushes the trailing partial block
    /// and reports the stream's content fingerprint and length. If the
    /// stream never emitted an invocation, the tables are still
    /// delivered here so every stream carries its skeleton.
    ///
    /// # Errors
    ///
    /// The first [`SinkError`] the sink returned, if any.
    ///
    /// # Panics
    ///
    /// Panics if the builder was not started in streaming mode, or if
    /// no kernels were registered.
    pub fn finish_stream(mut self) -> Result<StreamSummary, SinkError> {
        let Some(mut state) = self.sink.take() else {
            panic!("finish_stream called on a non-streaming builder");
        };
        if let Some(e) = state.failed {
            return Err(e);
        }
        if !state.frozen {
            state
                .fold
                .eat_header(&self.name, self.suite, &self.kernels, &self.contexts);
            let skeleton = Workload::new(
                self.name.clone(),
                self.suite,
                self.kernels.clone(),
                self.contexts.clone(),
                Vec::new(),
            );
            state.sink.tables(&skeleton)?;
        }
        if !self.invocations.is_empty() {
            state.sink.block(&self.invocations)?;
        }
        Ok(StreamSummary {
            fingerprint: state.fold.finish(),
            invocations: state.emitted,
        })
    }
}

/// A deferred workload generator: name, suite and seed plus the *emit
/// body* that registers kernels and appends invocations against a
/// builder. The same body drives both the materialized and the
/// streaming path, so the two share one RNG stream and produce
/// bit-identical content (and therefore one fingerprint) by
/// construction.
pub struct WorkloadSource {
    name: String,
    suite: SuiteKind,
    seed: u64,
    emit: Box<dyn Fn(&mut WorkloadBuilder<'_>) + Send + Sync>,
}

impl std::fmt::Debug for WorkloadSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadSource")
            .field("name", &self.name)
            .field("suite", &self.suite)
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

impl WorkloadSource {
    /// Wraps an emit body. The body must register every kernel before
    /// its first invocation (all suite generators already do) so it can
    /// run against a streaming builder.
    pub fn new(
        name: impl Into<String>,
        suite: SuiteKind,
        seed: u64,
        emit: impl Fn(&mut WorkloadBuilder<'_>) + Send + Sync + 'static,
    ) -> Self {
        WorkloadSource {
            name: name.into(),
            suite,
            seed,
            emit: Box::new(emit),
        }
    }

    /// Workload name this source generates.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Suite the workload belongs to.
    pub fn suite(&self) -> SuiteKind {
        self.suite
    }

    /// Seed driving every random draw of the emit body.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Runs the emit body against an in-memory builder: the classic,
    /// whole-workload path.
    ///
    /// # Panics
    ///
    /// Panics if the emit body violates builder invariants.
    pub fn materialize(&self) -> Workload {
        let mut b = WorkloadBuilder::new(self.name.clone(), self.suite, self.seed);
        (self.emit)(&mut b);
        b.build()
    }

    /// Runs the emit body against a streaming builder: blocks of
    /// `block_len` invocations go to `sink` as they fill, so peak
    /// memory stays one block no matter how long the stream is.
    ///
    /// # Errors
    ///
    /// The first [`SinkError`] the sink reported.
    ///
    /// # Panics
    ///
    /// Panics if the emit body violates builder invariants (including
    /// registering a kernel after its first invocation).
    pub fn stream(
        &self,
        sink: &mut dyn BlockSink,
        block_len: usize,
    ) -> Result<StreamSummary, SinkError> {
        let mut b =
            WorkloadBuilder::streaming(self.name.clone(), self.suite, self.seed, sink, block_len);
        (self.emit)(&mut b);
        b.finish_stream()
    }
}

/// Box–Muller standard normal draw.
pub(crate) fn standard_normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.random();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelClassBuilder;

    fn builder_with_kernel(contexts: usize) -> (WorkloadBuilder<'static>, KernelId) {
        let mut b = WorkloadBuilder::new("t", SuiteKind::Custom, 1);
        let ctxs = (0..contexts)
            .map(|i| RuntimeContext::neutral().with_work(1.0 + i as f64))
            .collect();
        let id = b.add_kernel(KernelClassBuilder::new("k").build(), ctxs);
        (b, id)
    }

    #[test]
    fn cyclic_schedule_round_robins() {
        let (mut b, id) = builder_with_kernel(3);
        b.schedule(id, &ContextSchedule::Cyclic, 7);
        let w = b.build();
        let ctxs: Vec<u16> = w.invocations().iter().map(|i| i.context).collect();
        assert_eq!(ctxs, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn phased_schedule_repeats_until_count() {
        let (mut b, id) = builder_with_kernel(2);
        b.schedule(id, &ContextSchedule::Phased(vec![(0, 2), (1, 1)]), 7);
        let w = b.build();
        let ctxs: Vec<u16> = w.invocations().iter().map(|i| i.context).collect();
        assert_eq!(ctxs, vec![0, 0, 1, 0, 0, 1, 0]);
    }

    #[test]
    fn weighted_schedule_respects_weights() {
        let (mut b, id) = builder_with_kernel(2);
        b.schedule(id, &ContextSchedule::Weighted(vec![9.0, 1.0]), 5000);
        let w = b.build();
        let ones = w
            .invocations()
            .iter()
            .filter(|i| i.context == 1)
            .count();
        let frac = ones as f64 / 5000.0;
        assert!((frac - 0.1).abs() < 0.03, "observed fraction {frac}");
    }

    #[test]
    fn deterministic_under_seed() {
        let build = || {
            let (mut b, id) = builder_with_kernel(2);
            b.schedule(id, &ContextSchedule::Weighted(vec![1.0, 1.0]), 50);
            b.build()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn noise_z_is_standard_normal_ish() {
        let (mut b, id) = builder_with_kernel(1);
        b.schedule(id, &ContextSchedule::Cyclic, 20_000);
        let w = b.build();
        let s: stem_stats_like::Moments = w
            .invocations()
            .iter()
            .map(|i| i.noise_z as f64)
            .collect();
        assert!(s.mean.abs() < 0.03, "mean {}", s.mean);
        assert!((s.var - 1.0).abs() < 0.05, "var {}", s.var);
    }

    /// Minimal local moments helper to avoid a dev-dependency cycle.
    mod stem_stats_like {
        pub struct Moments {
            pub mean: f64,
            pub var: f64,
        }
        impl FromIterator<f64> for Moments {
            fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
                let v: Vec<f64> = iter.into_iter().collect();
                let n = v.len() as f64;
                let mean = v.iter().sum::<f64>() / n;
                let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
                Moments { mean, var }
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown kernel")]
    fn invoke_unknown_kernel() {
        let (mut b, _) = builder_with_kernel(1);
        b.invoke(KernelId(9), 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "has no context")]
    fn invoke_unknown_context() {
        let (mut b, id) = builder_with_kernel(1);
        b.invoke(id, 3, 1.0);
    }

    #[test]
    fn len_tracks_invocations() {
        let (mut b, id) = builder_with_kernel(1);
        assert!(b.is_empty());
        b.invoke(id, 0, 1.0);
        assert_eq!(b.len(), 1);
    }

    fn demo_source() -> WorkloadSource {
        WorkloadSource::new("s", SuiteKind::Custom, 11, |b| {
            let ctxs = vec![
                RuntimeContext::neutral(),
                RuntimeContext::neutral().with_work(2.0),
            ];
            let id = b.add_kernel(KernelClassBuilder::new("k").build(), ctxs);
            b.schedule(id, &ContextSchedule::Weighted(vec![3.0, 1.0]), 1000);
        })
    }

    #[test]
    fn streaming_matches_materialized() {
        let source = demo_source();
        let reference = source.materialize();
        let mut sink = crate::stream::CollectSink::new();
        let summary = source.stream(&mut sink, 64).expect("stream");
        let streamed = sink.into_workload();
        assert_eq!(streamed, reference);
        assert_eq!(summary.fingerprint, reference.fingerprint());
        assert_eq!(summary.invocations, 1000);
    }

    /// Every block but the last carries exactly `block_len` invocations,
    /// and the trailing partial block is flushed by `finish_stream`.
    #[test]
    fn streaming_cuts_exact_blocks() {
        struct Counter(Vec<usize>);
        impl crate::stream::BlockSink for Counter {
            fn tables(&mut self, _: &Workload) -> Result<(), crate::stream::SinkError> {
                Ok(())
            }
            fn block(&mut self, invs: &[Invocation]) -> Result<(), crate::stream::SinkError> {
                self.0.push(invs.len());
                Ok(())
            }
        }
        let mut sink = Counter(Vec::new());
        demo_source().stream(&mut sink, 64).expect("stream");
        assert_eq!(sink.0.len(), 16);
        assert!(sink.0[..15].iter().all(|&n| n == 64));
        assert_eq!(sink.0[15], 1000 - 15 * 64);
    }

    #[test]
    fn empty_stream_still_delivers_tables() {
        let source = WorkloadSource::new("empty", SuiteKind::Custom, 3, |b| {
            b.add_kernel(
                KernelClassBuilder::new("k").build(),
                vec![RuntimeContext::neutral()],
            );
        });
        let mut sink = crate::stream::CollectSink::new();
        let summary = source.stream(&mut sink, 64).expect("stream");
        let w = sink.into_workload();
        assert_eq!(summary.invocations, 0);
        assert_eq!(summary.fingerprint, w.fingerprint());
        assert_eq!(w.kernels().len(), 1);
    }

    #[test]
    #[should_panic(expected = "registered after the first invocation")]
    fn streaming_rejects_late_kernel_registration() {
        let mut sink = crate::stream::CollectSink::new();
        let mut b = WorkloadBuilder::streaming("late", SuiteKind::Custom, 1, &mut sink, 8);
        let id = b.add_kernel(
            KernelClassBuilder::new("k").build(),
            vec![RuntimeContext::neutral()],
        );
        b.invoke(id, 0, 1.0);
        b.add_kernel(
            KernelClassBuilder::new("k2").build(),
            vec![RuntimeContext::neutral()],
        );
    }
}
