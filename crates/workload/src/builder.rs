//! Incremental workload construction.
//!
//! The suite generators and downstream users build workloads through this
//! builder: register kernel classes with their runtime contexts, then
//! append invocations either one at a time or through a
//! [`ContextSchedule`].

use crate::context::{ContextSchedule, RuntimeContext};
use crate::invocation::{Invocation, KernelId};
use crate::kernel::KernelClass;
use crate::trace::{SuiteKind, Workload};
use stem_stats::rng::{RngExt, SeedableRng, StdRng};

/// Builder for [`Workload`].
///
/// # Example
///
/// ```
/// use gpu_workload::{WorkloadBuilder, RuntimeContext, ContextSchedule, SuiteKind};
/// use gpu_workload::kernel::KernelClassBuilder;
///
/// let mut b = WorkloadBuilder::new("demo", SuiteKind::Custom, 42);
/// let gemm = b.add_kernel(
///     KernelClassBuilder::new("gemm").build(),
///     vec![RuntimeContext::neutral(), RuntimeContext::neutral().with_work(2.0)],
/// );
/// b.schedule(gemm, &ContextSchedule::Weighted(vec![3.0, 1.0]), 100);
/// let w = b.build();
/// assert_eq!(w.num_invocations(), 100);
/// ```
#[derive(Debug)]
pub struct WorkloadBuilder {
    name: String,
    suite: SuiteKind,
    kernels: Vec<KernelClass>,
    contexts: Vec<Vec<RuntimeContext>>,
    invocations: Vec<Invocation>,
    rng: StdRng,
}

impl WorkloadBuilder {
    /// Starts an empty workload. All randomness (context draws, jitter
    /// draws) is derived from `seed`, so builds are reproducible.
    pub fn new(name: impl Into<String>, suite: SuiteKind, seed: u64) -> Self {
        WorkloadBuilder {
            name: name.into(),
            suite,
            kernels: Vec::new(),
            contexts: Vec::new(),
            invocations: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Registers a kernel class with its runtime contexts, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if the kernel or any context is invalid, or `contexts` is
    /// empty.
    pub fn add_kernel(&mut self, kernel: KernelClass, contexts: Vec<RuntimeContext>) -> KernelId {
        kernel.validate();
        assert!(
            !contexts.is_empty(),
            "kernel {} needs at least one context",
            kernel.name
        );
        for c in &contexts {
            c.validate();
        }
        let id = KernelId(self.kernels.len() as u32);
        self.kernels.push(kernel);
        self.contexts.push(contexts);
        id
    }

    /// Appends a single invocation with an explicit context and extra work
    /// multiplier; jitter is drawn from the builder's RNG.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `context` is out of range or `work_scale` is
    /// not positive.
    pub fn invoke(&mut self, kernel: KernelId, context: u16, work_scale: f32) {
        assert!(
            kernel.index() < self.kernels.len(),
            "unknown kernel {kernel}"
        );
        assert!(
            (context as usize) < self.contexts[kernel.index()].len(),
            "kernel {kernel} has no context {context}"
        );
        let z = standard_normal(&mut self.rng) as f32;
        self.invocations
            .push(Invocation::with_work(kernel, context, work_scale, z));
    }

    /// Appends `count` invocations following a [`ContextSchedule`], all at
    /// unit extra work.
    ///
    /// # Panics
    ///
    /// Panics if the kernel is unknown or the schedule is invalid for the
    /// kernel's context count.
    pub fn schedule(&mut self, kernel: KernelId, schedule: &ContextSchedule, count: usize) {
        assert!(
            kernel.index() < self.kernels.len(),
            "unknown kernel {kernel}"
        );
        let num_contexts = self.contexts[kernel.index()].len();
        schedule.validate(num_contexts);
        match schedule {
            ContextSchedule::Weighted(weights) => {
                let total: f64 = weights.iter().sum();
                for _ in 0..count {
                    let mut target = self.rng.random::<f64>() * total;
                    let mut chosen = weights.len() - 1;
                    for (i, &w) in weights.iter().enumerate() {
                        target -= w;
                        if target <= 0.0 {
                            chosen = i;
                            break;
                        }
                    }
                    self.invoke(kernel, chosen as u16, 1.0);
                }
            }
            ContextSchedule::Cyclic => {
                for i in 0..count {
                    self.invoke(kernel, (i % num_contexts) as u16, 1.0);
                }
            }
            ContextSchedule::Phased(phases) => {
                let mut emitted = 0usize;
                'outer: loop {
                    for &(ctx, phase_count) in phases {
                        for _ in 0..phase_count {
                            if emitted == count {
                                break 'outer;
                            }
                            self.invoke(kernel, ctx as u16, 1.0);
                            emitted += 1;
                        }
                    }
                    if emitted == count {
                        break;
                    }
                }
            }
        }
    }

    /// Number of invocations appended so far.
    pub fn len(&self) -> usize {
        self.invocations.len()
    }

    /// Whether no invocations have been appended yet.
    pub fn is_empty(&self) -> bool {
        self.invocations.is_empty()
    }

    /// Finalizes into a validated [`Workload`].
    ///
    /// # Panics
    ///
    /// Panics if no kernels were registered.
    pub fn build(self) -> Workload {
        Workload::new(
            self.name,
            self.suite,
            self.kernels,
            self.contexts,
            self.invocations,
        )
    }
}

/// Box–Muller standard normal draw.
pub(crate) fn standard_normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.random();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelClassBuilder;

    fn builder_with_kernel(contexts: usize) -> (WorkloadBuilder, KernelId) {
        let mut b = WorkloadBuilder::new("t", SuiteKind::Custom, 1);
        let ctxs = (0..contexts)
            .map(|i| RuntimeContext::neutral().with_work(1.0 + i as f64))
            .collect();
        let id = b.add_kernel(KernelClassBuilder::new("k").build(), ctxs);
        (b, id)
    }

    #[test]
    fn cyclic_schedule_round_robins() {
        let (mut b, id) = builder_with_kernel(3);
        b.schedule(id, &ContextSchedule::Cyclic, 7);
        let w = b.build();
        let ctxs: Vec<u16> = w.invocations().iter().map(|i| i.context).collect();
        assert_eq!(ctxs, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn phased_schedule_repeats_until_count() {
        let (mut b, id) = builder_with_kernel(2);
        b.schedule(id, &ContextSchedule::Phased(vec![(0, 2), (1, 1)]), 7);
        let w = b.build();
        let ctxs: Vec<u16> = w.invocations().iter().map(|i| i.context).collect();
        assert_eq!(ctxs, vec![0, 0, 1, 0, 0, 1, 0]);
    }

    #[test]
    fn weighted_schedule_respects_weights() {
        let (mut b, id) = builder_with_kernel(2);
        b.schedule(id, &ContextSchedule::Weighted(vec![9.0, 1.0]), 5000);
        let w = b.build();
        let ones = w
            .invocations()
            .iter()
            .filter(|i| i.context == 1)
            .count();
        let frac = ones as f64 / 5000.0;
        assert!((frac - 0.1).abs() < 0.03, "observed fraction {frac}");
    }

    #[test]
    fn deterministic_under_seed() {
        let build = || {
            let (mut b, id) = builder_with_kernel(2);
            b.schedule(id, &ContextSchedule::Weighted(vec![1.0, 1.0]), 50);
            b.build()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn noise_z_is_standard_normal_ish() {
        let (mut b, id) = builder_with_kernel(1);
        b.schedule(id, &ContextSchedule::Cyclic, 20_000);
        let w = b.build();
        let s: stem_stats_like::Moments = w
            .invocations()
            .iter()
            .map(|i| i.noise_z as f64)
            .collect();
        assert!(s.mean.abs() < 0.03, "mean {}", s.mean);
        assert!((s.var - 1.0).abs() < 0.05, "var {}", s.var);
    }

    /// Minimal local moments helper to avoid a dev-dependency cycle.
    mod stem_stats_like {
        pub struct Moments {
            pub mean: f64,
            pub var: f64,
        }
        impl FromIterator<f64> for Moments {
            fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
                let v: Vec<f64> = iter.into_iter().collect();
                let n = v.len() as f64;
                let mean = v.iter().sum::<f64>() / n;
                let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
                Moments { mean, var }
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown kernel")]
    fn invoke_unknown_kernel() {
        let (mut b, _) = builder_with_kernel(1);
        b.invoke(KernelId(9), 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "has no context")]
    fn invoke_unknown_context() {
        let (mut b, id) = builder_with_kernel(1);
        b.invoke(id, 3, 1.0);
    }

    #[test]
    fn len_tracks_invocations() {
        let (mut b, id) = builder_with_kernel(1);
        assert!(b.is_empty());
        b.invoke(id, 0, 1.0);
        assert_eq!(b.len(), 1);
    }
}
