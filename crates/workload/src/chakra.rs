//! Chakra-style execution traces: multi-GPU workloads as operator DAGs.
//!
//! The paper's Sec. 6.2 names multi-GPU support as future work and
//! suggests Chakra ETs (execution traces) — a standard DAG representation
//! of multi-device ML workloads with compute and communication operators
//! and explicit dependencies — as the substrate, with "node and edge
//! sampling on such DAG-style ETs" as the starting point. This module
//! implements that substrate: an [`ExecutionTrace`] of [`EtNode`]s (compute
//! kernels pinned to a GPU, collectives spanning all GPUs, point-to-point
//! transfers), a validated-DAG invariant, and a synthetic data-parallel
//! training-trace generator.
//!
//! Simulation lives in `gpu-sim::multi_gpu`; node sampling in
//! `stem-core::et`.

use crate::context::RuntimeContext;
use crate::invocation::KernelId;
use crate::kernel::KernelClass;
use stem_stats::rng::{RngExt, SeedableRng, StdRng};

/// The operator performed by one ET node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EtOp {
    /// A kernel launch on one GPU.
    Compute {
        /// Kernel class (index into the trace's kernel table).
        kernel: KernelId,
        /// Runtime context index for that kernel.
        context: u16,
        /// Extra work multiplier.
        work_scale: f32,
    },
    /// A ring all-reduce across every GPU (gradient synchronization).
    AllReduce {
        /// Payload bytes per GPU.
        bytes: u64,
    },
    /// A point-to-point transfer between two GPUs (pipeline parallelism).
    P2p {
        /// Payload bytes.
        bytes: u64,
        /// Source GPU.
        src: u8,
        /// Destination GPU.
        dst: u8,
    },
}

impl EtOp {
    /// Whether this is a communication operator.
    pub fn is_communication(&self) -> bool {
        !matches!(self, EtOp::Compute { .. })
    }
}

/// One node of the execution trace.
#[derive(Debug, Clone, PartialEq)]
pub struct EtNode {
    /// The operator.
    pub op: EtOp,
    /// GPU the node runs on (compute and P2p-src side; collectives span
    /// all GPUs and ignore this beyond scheduling bookkeeping).
    pub gpu: u8,
    /// Indices of nodes that must finish first. Must all be smaller than
    /// this node's own index (topological numbering), which makes cycles
    /// impossible by construction.
    pub deps: Vec<u32>,
    /// Standard-normal jitter draw for this node's runtime.
    pub noise_z: f32,
}

/// A multi-GPU workload as a DAG of operators.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionTrace {
    name: String,
    num_gpus: u8,
    kernels: Vec<KernelClass>,
    contexts: Vec<Vec<RuntimeContext>>,
    nodes: Vec<EtNode>,
}

impl ExecutionTrace {
    /// Assembles and validates a trace.
    ///
    /// # Panics
    ///
    /// Panics if there are no GPUs or kernels, any dependency points
    /// forward (or at itself), any GPU index is out of range, or any
    /// compute node references a missing kernel/context.
    pub fn new(
        name: impl Into<String>,
        num_gpus: u8,
        kernels: Vec<KernelClass>,
        contexts: Vec<Vec<RuntimeContext>>,
        nodes: Vec<EtNode>,
    ) -> Self {
        let name = name.into();
        assert!(num_gpus > 0, "trace {name} has no GPUs");
        assert!(!kernels.is_empty(), "trace {name} has no kernels");
        assert_eq!(
            kernels.len(),
            contexts.len(),
            "trace {name}: one context table per kernel"
        );
        for k in &kernels {
            k.validate();
        }
        for ctxs in &contexts {
            assert!(!ctxs.is_empty(), "trace {name}: kernel without contexts");
            for c in ctxs {
                c.validate();
            }
        }
        for (i, node) in nodes.iter().enumerate() {
            assert!(
                (node.gpu as usize) < num_gpus as usize,
                "trace {name}: node {i} on GPU {} of {num_gpus}",
                node.gpu
            );
            for &d in &node.deps {
                assert!(
                    (d as usize) < i,
                    "trace {name}: node {i} depends on {d} (not topological)"
                );
            }
            match node.op {
                EtOp::Compute {
                    kernel, context, ..
                } => {
                    assert!(
                        kernel.index() < kernels.len(),
                        "trace {name}: node {i} kernel out of range"
                    );
                    assert!(
                        (context as usize) < contexts[kernel.index()].len(),
                        "trace {name}: node {i} context out of range"
                    );
                }
                EtOp::AllReduce { bytes } => {
                    assert!(bytes > 0, "trace {name}: node {i} empty all-reduce");
                }
                EtOp::P2p { bytes, src, dst } => {
                    assert!(bytes > 0, "trace {name}: node {i} empty p2p");
                    assert!(
                        (src as usize) < num_gpus as usize && (dst as usize) < num_gpus as usize,
                        "trace {name}: node {i} p2p endpoints out of range"
                    );
                    assert_ne!(src, dst, "trace {name}: node {i} p2p to itself");
                }
            }
        }
        ExecutionTrace {
            name,
            num_gpus,
            kernels,
            contexts,
            nodes,
        }
    }

    /// Trace name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of GPUs.
    pub fn num_gpus(&self) -> u8 {
        self.num_gpus
    }

    /// Kernel table.
    pub fn kernels(&self) -> &[KernelClass] {
        &self.kernels
    }

    /// Context table of kernel `k`.
    pub fn contexts_of(&self, k: KernelId) -> &[RuntimeContext] {
        &self.contexts[k.index()]
    }

    /// The DAG nodes in topological order.
    pub fn nodes(&self) -> &[EtNode] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Count of communication nodes.
    pub fn num_communication_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.op.is_communication()).count()
    }
}

/// Generates a synthetic data-parallel training trace: `steps` iterations
/// of per-GPU forward and backward passes over `layers` layers, a ring
/// all-reduce per layer gradient (dependent on that layer's backward on
/// *every* GPU), and an optimizer step gated on all reductions — the
/// classic DDP dependence structure Chakra ETs capture.
pub fn data_parallel_training(
    name: &str,
    num_gpus: u8,
    layers: usize,
    steps: usize,
    seed: u64,
) -> ExecutionTrace {
    assert!(num_gpus >= 1, "need at least one GPU");
    assert!(layers >= 1 && steps >= 1, "need work to trace");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut z = move || {
        // Box-Muller.
        let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random();
        ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    };

    let kernels = vec![
        super::suites::trace_kernels::layer_fwd(),
        super::suites::trace_kernels::layer_bwd(),
        super::suites::trace_kernels::optimizer_step(),
    ];
    let contexts = vec![
        vec![RuntimeContext::neutral().with_jitter(0.05)],
        vec![RuntimeContext::neutral().with_jitter(0.07).with_locality(0.8)],
        vec![RuntimeContext::neutral().with_jitter(0.03)],
    ];
    let (fwd, bwd, opt) = (KernelId(0), KernelId(1), KernelId(2));

    let grad_bytes = 64u64 << 20;
    let mut nodes: Vec<EtNode> = Vec::new();
    // Last node per GPU (serialization of that GPU's stream).
    let mut gpu_tail: Vec<Option<u32>> = vec![None; num_gpus as usize];
    for _step in 0..steps {
        // Forward: layers in sequence per GPU.
        let mut fwd_ids = vec![vec![0u32; layers]; num_gpus as usize];
        #[allow(clippy::needless_range_loop)] // layer indexes fwd_ids per GPU
        for layer in 0..layers {
            for g in 0..num_gpus {
                let mut deps = Vec::new();
                if let Some(t) = gpu_tail[g as usize] {
                    deps.push(t);
                }
                let id = nodes.len() as u32;
                nodes.push(EtNode {
                    op: EtOp::Compute {
                        kernel: fwd,
                        context: 0,
                        work_scale: 1.0,
                    },
                    gpu: g,
                    deps,
                    noise_z: z(),
                });
                gpu_tail[g as usize] = Some(id);
                fwd_ids[g as usize][layer] = id;
            }
        }
        // Backward: reverse layer order; each layer's all-reduce waits for
        // that layer's backward on every GPU.
        let mut allreduce_ids = Vec::with_capacity(layers);
        for layer in (0..layers).rev() {
            let mut bwd_ids = Vec::with_capacity(num_gpus as usize);
            for g in 0..num_gpus {
                let mut deps = vec![fwd_ids[g as usize][layer]];
                if let Some(t) = gpu_tail[g as usize] {
                    deps.push(t);
                }
                let id = nodes.len() as u32;
                nodes.push(EtNode {
                    op: EtOp::Compute {
                        kernel: bwd,
                        context: 0,
                        work_scale: 1.6,
                    },
                    gpu: g,
                    deps,
                    noise_z: z(),
                });
                gpu_tail[g as usize] = Some(id);
                bwd_ids.push(id);
            }
            if num_gpus > 1 {
                let id = nodes.len() as u32;
                nodes.push(EtNode {
                    op: EtOp::AllReduce { bytes: grad_bytes },
                    gpu: 0,
                    deps: bwd_ids,
                    noise_z: z(),
                });
                for t in gpu_tail.iter_mut() {
                    *t = Some(id); // collectives occupy every GPU
                }
                allreduce_ids.push(id);
            }
        }
        // Optimizer step per GPU, gated on all reductions of this step.
        for g in 0..num_gpus {
            let mut deps = allreduce_ids.clone();
            if let Some(t) = gpu_tail[g as usize] {
                deps.push(t);
            }
            deps.sort_unstable();
            deps.dedup();
            let id = nodes.len() as u32;
            nodes.push(EtNode {
                op: EtOp::Compute {
                    kernel: opt,
                    context: 0,
                    work_scale: 1.0,
                },
                gpu: g,
                deps,
                noise_z: z(),
            });
            gpu_tail[g as usize] = Some(id);
        }
    }
    ExecutionTrace::new(name, num_gpus, kernels, contexts, nodes)
}

/// Generates a pipeline-parallel inference trace: the model's layers are
/// partitioned into `num_gpus` stages; each microbatch flows through the
/// stages with a point-to-point activation transfer between consecutive
/// GPUs (the other standard multi-GPU pattern, exercising [`EtOp::P2p`]).
pub fn pipeline_parallel_inference(
    name: &str,
    num_gpus: u8,
    layers_per_stage: usize,
    microbatches: usize,
    seed: u64,
) -> ExecutionTrace {
    assert!(num_gpus >= 1, "need at least one GPU");
    assert!(
        layers_per_stage >= 1 && microbatches >= 1,
        "need work to trace"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut z = move || {
        let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random();
        ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    };

    let kernels = vec![super::suites::trace_kernels::layer_fwd()];
    let contexts = vec![vec![RuntimeContext::neutral().with_jitter(0.05)]];
    let fwd = KernelId(0);
    let activation_bytes = 16u64 << 20;

    let mut nodes: Vec<EtNode> = Vec::new();
    let mut gpu_tail: Vec<Option<u32>> = vec![None; num_gpus as usize];
    // prev_stage_out[g] = the node whose output stage g+1 consumes next.
    for _mb in 0..microbatches {
        let mut carry: Option<u32> = None;
        for stage in 0..num_gpus {
            // Inter-stage activation transfer. `carry` is always `Some` at
            // stage > 0 when layers_per_stage >= 1 (the previous stage's
            // layer loop set it); with zero layers there is nothing to ship.
            if let Some(prev) = carry.filter(|_| stage > 0) {
                let mut deps = vec![prev];
                if let Some(t) = gpu_tail[stage as usize] {
                    deps.push(t);
                }
                deps.sort_unstable();
                deps.dedup();
                let id = nodes.len() as u32;
                nodes.push(EtNode {
                    op: EtOp::P2p {
                        bytes: activation_bytes,
                        src: stage - 1,
                        dst: stage,
                    },
                    gpu: stage,
                    deps,
                    noise_z: z(),
                });
                gpu_tail[(stage - 1) as usize] = Some(id);
                gpu_tail[stage as usize] = Some(id);
                carry = Some(id);
            }
            // The stage's layers, serialized on its GPU.
            for _layer in 0..layers_per_stage {
                let mut deps = Vec::new();
                if let Some(c) = carry {
                    deps.push(c);
                }
                if let Some(t) = gpu_tail[stage as usize] {
                    deps.push(t);
                }
                deps.sort_unstable();
                deps.dedup();
                let id = nodes.len() as u32;
                nodes.push(EtNode {
                    op: EtOp::Compute {
                        kernel: fwd,
                        context: 0,
                        work_scale: 1.0,
                    },
                    gpu: stage,
                    deps,
                    noise_z: z(),
                });
                gpu_tail[stage as usize] = Some(id);
                carry = Some(id);
            }
        }
    }
    ExecutionTrace::new(name, num_gpus, kernels, contexts, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_produces_valid_dag() {
        let t = data_parallel_training("ddp", 4, 8, 3, 1);
        assert_eq!(t.num_gpus(), 4);
        // steps * (layers fwd * gpus + layers bwd * gpus + layers allreduce
        // + gpus optimizer)
        assert_eq!(t.len(), 3 * (8 * 4 + 8 * 4 + 8 + 4));
        assert_eq!(t.num_communication_nodes(), 3 * 8);
    }

    #[test]
    fn single_gpu_has_no_collectives() {
        let t = data_parallel_training("solo", 1, 4, 2, 1);
        assert_eq!(t.num_communication_nodes(), 0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            data_parallel_training("a", 2, 4, 2, 9),
            data_parallel_training("a", 2, 4, 2, 9)
        );
    }

    #[test]
    fn allreduce_depends_on_every_gpus_backward() {
        let t = data_parallel_training("ddp", 2, 2, 1, 1);
        let ar = t
            .nodes()
            .iter()
            .find(|n| matches!(n.op, EtOp::AllReduce { .. }))
            .expect("has an all-reduce");
        assert_eq!(ar.deps.len(), 2);
    }

    #[test]
    fn pipeline_generator_produces_valid_dag_with_p2p() {
        let t = pipeline_parallel_inference("pp", 4, 6, 8, 2);
        // Per microbatch: 4 stages x 6 layers + 3 transfers.
        assert_eq!(t.len(), 8 * (4 * 6 + 3));
        assert_eq!(t.num_communication_nodes(), 8 * 3);
        // Every communication node is a P2p between consecutive stages.
        for n in t.nodes() {
            if let EtOp::P2p { src, dst, .. } = n.op {
                assert_eq!(dst, src + 1);
            }
        }
    }

    #[test]
    fn single_stage_pipeline_has_no_transfers() {
        let t = pipeline_parallel_inference("pp1", 1, 4, 5, 2);
        assert_eq!(t.num_communication_nodes(), 0);
    }

    #[test]
    #[should_panic(expected = "not topological")]
    fn forward_dependency_rejected() {
        let t = data_parallel_training("ddp", 1, 1, 1, 1);
        let mut nodes = t.nodes().to_vec();
        nodes[0].deps = vec![1];
        ExecutionTrace::new(
            "bad",
            1,
            t.kernels().to_vec(),
            vec![
                t.contexts_of(KernelId(0)).to_vec(),
                t.contexts_of(KernelId(1)).to_vec(),
                t.contexts_of(KernelId(2)).to_vec(),
            ],
            nodes,
        );
    }

    #[test]
    #[should_panic(expected = "p2p to itself")]
    fn self_p2p_rejected() {
        let t = data_parallel_training("ddp", 2, 1, 1, 1);
        let mut nodes = t.nodes().to_vec();
        nodes.push(EtNode {
            op: EtOp::P2p {
                bytes: 1024,
                src: 1,
                dst: 1,
            },
            gpu: 1,
            deps: vec![],
            noise_z: 0.0,
        });
        ExecutionTrace::new(
            "bad",
            2,
            t.kernels().to_vec(),
            vec![
                t.contexts_of(KernelId(0)).to_vec(),
                t.contexts_of(KernelId(1)).to_vec(),
                t.contexts_of(KernelId(2)).to_vec(),
            ],
            nodes,
        );
    }
}
