//! GPU workload substrate for the STEM+ROOT reproduction.
//!
//! A *workload* is a sequence of kernel invocations, exactly as a GPU
//! command stream appears to a kernel-level sampler: each invocation names a
//! [`kernel::KernelClass`] (static code signature — launch geometry,
//! instruction mix, basic-block vector, memory footprint) and carries the
//! *runtime context* that makes identical kernels behave differently
//! (Sec. 2.1 of the paper): which data it touches, how much locality it
//! enjoys, how much work this particular call performs, and its draw of
//! runtime jitter.
//!
//! The paper's three benchmark suites are reproduced as synthetic
//! generators in [`suites`]:
//!
//! * [`suites::rodinia_suite`] — 13 small, irregular GPGPU workloads including the
//!   pathological patterns the paper calls out (gaussian's shrinking
//!   kernels, heartwall's 1500x first-call asymmetry, pathfinder's 100x
//!   outliers).
//! * [`suites::casio_suite`] — 11 ML workloads with tens of thousands of kernel
//!   calls exhibiting Figure 1's multi-peak and wide histograms.
//! * [`suites::huggingface_suite`] — 6 large LLM/ML serving workloads with
//!   millions of repeated kernel calls (scaled by a factor the caller
//!   chooses; `scale = 1.0` approximates the paper's 11.6M-call average).
//!
//! Execution *times* are not stored here: they are produced by the
//! `gpu-sim` crate's timing model from `(kernel, context, config)` so that
//! the same invocation can be "run" on different (micro)architectures — the
//! mechanism behind the paper's DSE and H100→H200 experiments.

// Workspace lint headers, enforced by `stem-tidy` (rule `lint-headers`).
#![deny(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod chakra;
pub mod colstore;
pub mod context;
pub mod error;
pub mod invocation;
pub mod io;
pub mod kernel;
pub mod metrics;
pub mod scenarios;
pub mod stream;
pub mod suites;
pub mod trace;

pub use builder::{WorkloadBuilder, WorkloadSource};
pub use chakra::{EtNode, EtOp, ExecutionTrace};
pub use colstore::{
    load_store, open_store, stream_store, ColStoreError, StoreManifest, StoreWriter,
    DEFAULT_BLOCK_LEN, MANIFEST_NAME,
};
pub use context::{ContextSchedule, RuntimeContext};
pub use error::{WorkloadError, WorkloadErrorKind};
pub use invocation::{Invocation, KernelId};
pub use kernel::{InstructionMix, KernelClass};
pub use metrics::{MetricCategory, MetricKind, MetricVector, METRIC_COUNT};
pub use stream::{BlockSink, ChannelSink, CollectSink, SinkError, StreamItem, StreamSummary};
pub use trace::{FingerprintFold, SuiteKind, Workload};
