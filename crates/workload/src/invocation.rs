//! Compact per-invocation records.
//!
//! Large-scale workloads reach tens of millions of kernel calls (the
//! paper's HuggingFace suite averages 11.6M), so each invocation is a small
//! POD: 16 bytes. The per-invocation randomness (`noise_z`) is pre-drawn at
//! generation time so that "running" the same invocation on two different
//! GPU configurations yields *correlated* times — the same physical
//! execution observed on different hardware — which is what makes the DSE
//! and cross-GPU experiments meaningful.


/// Index of a kernel class within its workload's kernel table.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct KernelId(pub u32);

impl KernelId {
    /// The index as `usize` for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for KernelId {
    fn from(v: u32) -> Self {
        KernelId(v)
    }
}

impl std::fmt::Display for KernelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// One kernel launch in the workload's command stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Invocation {
    /// Which kernel class was launched.
    pub kernel: KernelId,
    /// Which runtime context (histogram peak) this launch runs under; an
    /// index into the workload's per-kernel context table.
    pub context: u16,
    /// Extra per-invocation work multiplier on top of the context's
    /// `work_scale` (models e.g. Gaussian elimination's shrinking
    /// submatrices or BFS's varying frontier sizes).
    pub work_scale: f32,
    /// Standard-normal draw identifying this launch's runtime jitter. The
    /// simulator maps it to a multiplicative factor whose magnitude depends
    /// on the kernel's memory-boundedness under the simulated config.
    pub noise_z: f32,
}

impl Invocation {
    /// Creates an invocation with unit extra work.
    pub fn new(kernel: KernelId, context: u16, noise_z: f32) -> Self {
        Invocation {
            kernel,
            context,
            work_scale: 1.0,
            noise_z,
        }
    }

    /// Creates an invocation with an explicit extra work multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `work_scale` is not positive and finite.
    pub fn with_work(kernel: KernelId, context: u16, work_scale: f32, noise_z: f32) -> Self {
        assert!(
            work_scale.is_finite() && work_scale > 0.0,
            "work_scale must be positive and finite, got {work_scale}"
        );
        Invocation {
            kernel,
            context,
            work_scale,
            noise_z,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invocation_is_compact() {
        assert!(std::mem::size_of::<Invocation>() <= 16);
    }

    #[test]
    fn display_kernel_id() {
        assert_eq!(KernelId(7).to_string(), "k7");
        assert_eq!(KernelId::from(3u32).index(), 3);
    }

    #[test]
    fn new_defaults_to_unit_work() {
        let inv = Invocation::new(KernelId(1), 2, 0.5);
        assert_eq!(inv.work_scale, 1.0);
        assert_eq!(inv.context, 2);
    }

    #[test]
    #[should_panic(expected = "work_scale must be positive")]
    fn zero_work_rejected() {
        Invocation::with_work(KernelId(0), 0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "work_scale must be positive")]
    fn nan_work_rejected() {
        Invocation::with_work(KernelId(0), 0, f32::NAN, 0.0);
    }
}
