//! Tier-1 interval-calibration gate.
//!
//! An error bound you cannot trust is worse than no bound, so this suite
//! holds every sampler's reported (or allocation-derived) 95% interval to
//! its nominal meaning across the whole scenario roster — the three clean
//! suite workloads *and* the three adversarial generators built to break
//! samplers (phase drift, bursty interference, long-tail skew):
//!
//! * every sampler × scenario cell must cover ground truth on at least
//!   85% of 40 seeded repetitions;
//! * RSS's empirical repeated-subsampling interval and STEM's analytic
//!   CLT/KKT interval — two independent error mechanisms — must overlap
//!   on EVERY repetition of every clean scenario;
//! * STEM planning from a chaos-damaged phase-drift trace must still
//!   cover the clean ground truth with its widened interval.
//!
//! The matrix is deterministic (seeded rep schedule, index-merged
//! parallelism), so the committed `coverage_summary.json` artifact
//! regenerates bit-identically via `repro coverage`; `ci.sh` gates on
//! that diff separately.

use stem_bench::experiments::coverage::{
    coverage, CoverageOptions, CoverageReport, CHAOS_SCENARIO, COVERAGE_METHODS,
};

/// The gate's floor: 34/40 = 85%.
const FLOOR_PERCENT: u32 = 85;

fn calibration() -> CoverageReport {
    let options = CoverageOptions::calibration();
    assert!(options.reps >= 40, "the gate needs at least 40 repetitions");
    coverage(&options)
}

#[test]
fn every_cell_and_crosscheck_meets_the_gate() {
    let report = calibration();

    // 6 methods × 6 scenarios, plus the chaos-damaged STEM cell.
    assert_eq!(report.cells.len(), COVERAGE_METHODS.len() * 6 + 1);
    let mut failures = Vec::new();
    for c in &report.cells {
        if c.covered * 100 < c.reps * FLOOR_PERCENT {
            failures.push(format!(
                "{} × {}: {}/{} ({:.2})",
                c.sampler,
                c.scenario,
                c.covered,
                c.reps,
                c.rate()
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "cells below {FLOOR_PERCENT}% coverage:\n{}",
        failures.join("\n")
    );

    // The chaos-damaged STEM cell is present and held to the same floor
    // (covered by the loop above; presence is what this asserts).
    let chaos = report
        .cell("STEM", CHAOS_SCENARIO)
        .expect("chaos-damaged STEM cell in the matrix");
    assert_eq!(chaos.reps, report.reps);

    // Cross-check: the two error mechanisms must agree on every clean
    // repetition — a single non-overlap means one of the intervals lied.
    assert_eq!(report.crosscheck.len(), 3, "one cross-check per clean suite");
    for c in &report.crosscheck {
        assert_eq!(
            c.overlaps, c.reps,
            "RSS∩STEM intervals disjoint on {} ({}/{} overlapped)",
            c.scenario, c.overlaps, c.reps
        );
    }
}
