//! Cross-crate integration tests: the paper's headline claims, exercised
//! through the public facade API.

use stem::prelude::*;

fn rtx() -> Simulator {
    Simulator::new(GpuConfig::rtx2080())
}

#[test]
fn stem_meets_bound_on_every_rodinia_workload() {
    let sim = rtx();
    let sampler = StemRootSampler::new(StemConfig::default());
    for w in &rodinia_suite(101) {
        let full = sim.run_full(w);
        // Average over a few reps: the bound is probabilistic (95%).
        let mut errs = Vec::new();
        for r in 0..3 {
            let plan = sampler.plan(w, r);
            errs.push(sim.run_sampled(w, plan.samples()).error(full.total_cycles));
        }
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(
            mean < 0.06,
            "{}: mean error {mean} exceeds the 5% bound",
            w.name()
        );
    }
}

#[test]
fn stem_beats_every_baseline_on_casio() {
    let sim = rtx();
    let suite = casio_suite(103);
    let w = suite
        .iter()
        .find(|w| w.name() == "resnet50_train")
        .expect("resnet50_train in CASIO");
    let full = sim.run_full(w);

    let eval = |sampler: &dyn KernelSampler, reps: u64| -> f64 {
        let mut sum = 0.0;
        for r in 0..reps {
            let plan = sampler.plan(w, r);
            sum += sim.run_sampled(w, plan.samples()).error(full.total_cycles);
        }
        sum / reps as f64
    };

    let stem = eval(&StemRootSampler::new(StemConfig::default()), 3);
    let random = eval(&RandomSampler::for_suite(SuiteKind::Casio), 3);
    let pka = eval(&PkaSampler::new(), 1);
    let sieve = eval(&SieveSampler::new().without_kde(), 1);
    let photon = eval(&PhotonSampler::new(), 1);

    assert!(stem < 0.02, "STEM error {stem}");
    for (name, err) in [
        ("random", random),
        ("pka", pka),
        ("sieve", sieve),
        ("photon", photon),
    ] {
        assert!(
            err > 2.0 * stem,
            "{name} error {err} should be well above STEM's {stem}"
        );
    }
}

#[test]
fn error_reduction_factor_is_large_on_casio() {
    // Paper headline: 27.6-81.9x error reduction vs prior methods on CASIO.
    // Checked here on a subset with modest reps (magnitude, not exact).
    let sim = rtx();
    let suite = casio_suite(105);
    let picks = ["bert_infer", "dlrm_infer", "unet_infer"];
    let stem_sampler = StemRootSampler::new(StemConfig::default());
    let pka = PkaSampler::new();
    let mut stem_errs = Vec::new();
    let mut pka_errs = Vec::new();
    for name in picks {
        let w = suite.iter().find(|w| w.name() == name).expect("workload");
        let full = sim.run_full(w);
        stem_errs.push(
            sim.run_sampled(w, stem_sampler.plan(w, 0).samples())
                .error(full.total_cycles),
        );
        pka_errs.push(
            sim.run_sampled(w, pka.plan(w, 0).samples())
                .error(full.total_cycles),
        );
    }
    let stem_mean = stem_errs.iter().sum::<f64>() / stem_errs.len() as f64;
    let pka_mean = pka_errs.iter().sum::<f64>() / pka_errs.len() as f64;
    assert!(
        pka_mean / stem_mean.max(1e-4) > 8.0,
        "reduction factor only {}",
        pka_mean / stem_mean.max(1e-4)
    );
}

#[test]
fn sampling_info_transfers_across_microarchitectures() {
    // The DSE claim (Sec. 5.4): one plan, low error on every variant.
    let suite = rodinia_suite(107);
    let w = suite.iter().find(|w| w.name() == "srad").expect("srad");
    let plan = StemRootSampler::new(StemConfig::default()).plan(w, 0);
    let base = GpuConfig::macsim_baseline();
    for t in DseTransform::TABLE4 {
        let sim = Simulator::new(base.with_transform(t));
        let full = sim.run_full(w);
        let run = sim.run_sampled(w, plan.samples());
        assert!(
            run.error(full.total_cycles) < 0.08,
            "{}: error {}",
            t.label(),
            run.error(full.total_cycles)
        );
    }
}

#[test]
fn microarchitectural_metrics_are_preserved() {
    // Fig. 14's claim through the facade: sampled metric estimates track
    // the full workload across all 13 metrics.
    use stem::workload::MetricKind;
    let sim = rtx();
    let suite = casio_suite(109);
    let w = suite.iter().find(|w| w.name() == "bert_train").expect("bert_train");
    let plan = StemRootSampler::new(StemConfig::default()).plan(w, 0);
    let full = sim.metrics_full(w);
    let sampled = sim.metrics_sampled(w, plan.samples());
    for kind in MetricKind::ALL {
        let f = full.get(kind);
        let s = sampled.get(kind);
        let rel = (f - s).abs() / f.abs().max(1e-12);
        assert!(rel < 0.08, "{kind}: relative difference {rel}");
    }
}

#[test]
fn theoretical_bound_is_conservative() {
    // The observed error is (almost always) below the plan's own
    // prediction, which is below epsilon — the "trustworthy" part.
    let sim = rtx();
    let suite = casio_suite(111);
    let w = suite.iter().find(|w| w.name() == "muzero").expect("muzero");
    let full = sim.run_full(w);
    let sampler = StemRootSampler::new(StemConfig::default());
    let mut below = 0;
    let reps = 10;
    for r in 0..reps {
        let plan = sampler.plan(w, r);
        assert!(plan.predicted_error() <= 0.05 + 1e-9);
        let run = sim.run_sampled(w, plan.samples());
        if run.error(full.total_cycles) <= 0.05 {
            below += 1;
        }
    }
    // 95% confidence bound: allow one excursion in ten reps.
    assert!(below >= reps - 1, "bound held only {below}/{reps} times");
}

#[test]
fn huggingface_scale_speedup_grows_with_workload() {
    // The paper's 31,719x HF speedup is a function of scale: STEM's sample
    // count stays roughly fixed while the workload grows.
    let sim = Simulator::new(GpuConfig::h100());
    let sampler =
        StemRootSampler::new(StemConfig::default().with_profile_config(GpuConfig::h100()));
    let mut speedups = Vec::new();
    for scale in [0.005, 0.02] {
        let suite = huggingface_suite(113, HuggingfaceScale::custom(scale));
        let w = suite.iter().find(|w| w.name() == "bert").expect("bert");
        let full = sim.run_full(w);
        let run = sim.run_sampled(w, sampler.plan(w, 0).samples());
        assert!(run.error(full.total_cycles) < 0.05);
        speedups.push(run.speedup(full.total_cycles));
    }
    assert!(
        speedups[1] > 2.0 * speedups[0],
        "speedup should grow with scale: {speedups:?}"
    );
}

#[test]
fn full_pipeline_through_facade() {
    let suite = rodinia_suite(115);
    let w = suite.iter().find(|w| w.name() == "hotspot").expect("hotspot");
    let pipeline = Pipeline::new(rtx()).with_reps(3).expect("positive reps").with_seed(7);
    let sampler = StemRootSampler::new(StemConfig::default());
    let summary = pipeline.run(&sampler, w);
    assert_eq!(summary.method, "STEM");
    assert_eq!(summary.workload, "hotspot");
    assert!(summary.mean_error_pct < 6.0);
    assert!(summary.harmonic_speedup > 1.0);
    assert_eq!(summary.results.len(), 3);
}
