//! Tier-1 gate for the out-of-core columnar invocation store and the
//! pipelined streaming executor (DESIGN.md §15).
//!
//! Three invariants:
//!
//! 1. **Round-trip.** Materialize → store-write → stream-read is the
//!    identity: the loaded workload equals the original bit-for-bit,
//!    fingerprints included — for the benchmark suites *and* the
//!    adversarial scenarios (satellite property: the streamed
//!    one-pass fingerprint fold equals `Workload::fingerprint` for
//!    every generator in the tree).
//! 2. **Streamed ≡ reference.** The pipelined generate→simulate→fold
//!    executor and the store-backed reader produce ground-truth totals
//!    bit-identical to the retained in-memory path
//!    (`run_full_total` / `reference::run_full`) at thread counts 1
//!    and 4, across all three suites.
//! 3. **Checksum-before-trust.** A store damaged in any way — torn
//!    block, flipped byte, truncated manifest, lying fingerprint —
//!    yields a typed [`ColStoreError`] and quarantines the damaged
//!    file. It never streams wrong invocations, so a streamed total can
//!    never silently be garbage cycles.

use std::path::PathBuf;

use stem::prelude::*;
use stem::sim::simulator::reference;

/// FNV-1a 64 — the store's checksum function, reimplemented here so the
/// lying-fingerprint mutation below can forge a checksum-valid manifest
/// and prove the *fingerprint* cross-check (not just the checksum)
/// rejects it.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0100_0000_01b3);
    }
    hash
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stem-colstore-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_hf() -> HuggingfaceScale {
    HuggingfaceScale::custom(0.01)
}

/// Every deferred generator in the tree: the three suites plus the
/// adversarial scenarios.
fn all_sources(seed: u64) -> Vec<WorkloadSource> {
    let mut sources = rodinia_sources(seed);
    sources.extend(casio_sources(seed));
    sources.extend(huggingface_sources(seed, small_hf()));
    sources.extend(adversarial_sources(seed));
    sources
}

/// Writes `source` into a fresh store directory and returns the path.
fn write_store(storage: &dyn Storage, tag: &str, source: &WorkloadSource, block_len: usize) -> PathBuf {
    let dir = scratch(tag).join(source.name());
    let mut writer = StoreWriter::create(storage, &dir, block_len).expect("create store");
    let summary = source.stream(&mut writer, block_len).expect("stream into store");
    writer.finish(&summary).expect("commit manifest");
    dir
}

#[test]
fn round_trip_identity_for_every_generator() {
    let storage = RealFs;
    for source in all_sources(23) {
        let reference = source.materialize();
        // Small block length so every workload spans several blocks.
        let dir = write_store(&storage, "roundtrip", &source, 4096);
        let loaded = load_store(&storage, &dir).expect("stream back");
        assert_eq!(loaded, reference, "{} round-trip", source.name());
        assert_eq!(loaded.fingerprint(), reference.fingerprint());
        let _ = std::fs::remove_dir_all(dir.parent().expect("parent"));
    }
}

/// Satellite property: the one-pass streamed fingerprint fold equals the
/// materialized [`Workload::fingerprint`] for all three suites and the
/// adversarial scenarios, through a pure in-memory sink (no store
/// involved — this pins the fold itself, not the codec).
#[test]
fn streamed_fingerprint_equals_materialized_everywhere() {
    for seed in [1_u64, 77] {
        for source in all_sources(seed) {
            let w = source.materialize();
            let mut sink = CollectSink::new();
            let summary = source.stream(&mut sink, 1000).expect("collect");
            assert_eq!(
                summary.fingerprint,
                w.fingerprint(),
                "{} seed {seed}: streamed fingerprint must match materialized",
                source.name()
            );
            assert_eq!(summary.invocations, w.num_invocations() as u64);
            assert_eq!(sink.into_workload(), w);
        }
    }
}

#[test]
fn streamed_totals_match_in_memory_reference_across_suites_and_threads() {
    let storage = RealFs;
    let sim = Simulator::new(GpuConfig::rtx2080());
    let suites: [(&str, Vec<WorkloadSource>); 3] = [
        ("rodinia", rodinia_sources(7)),
        ("casio", casio_sources(7)),
        ("huggingface", huggingface_sources(7, small_hf())),
    ];
    for (suite, sources) in suites {
        // Two workloads per suite keep the gate fast while still covering
        // multi-kernel and multi-context table shapes.
        for source in sources.iter().take(2) {
            let w = source.materialize();
            let expected = sim.run_full_total(&w, Parallelism::serial());
            // The retained per-invocation reference path must agree with
            // the total-only fold before we pin the streamed paths to it.
            let full = reference::run_full(&sim, &w);
            assert_eq!(full.total_cycles.to_bits(), expected.to_bits());
            let dir = write_store(&storage, "equiv", source, 2048);
            for threads in [1_usize, 4] {
                let par = Parallelism::with_threads(threads);
                let generated = source_total(&sim, par, source, 2048, DEFAULT_CHANNEL_BLOCKS)
                    .expect("generate stream");
                let stored = store_total(&sim, par, &storage, &dir, DEFAULT_CHANNEL_BLOCKS)
                    .expect("store stream");
                let replayed = workload_total(&sim, par, &w, 2048, DEFAULT_CHANNEL_BLOCKS)
                    .expect("replay stream");
                for (path, got) in
                    [("generate", &generated), ("store", &stored), ("replay", &replayed)]
                {
                    assert_eq!(
                        got.total_cycles.to_bits(),
                        expected.to_bits(),
                        "{suite}/{}: {path} path diverged at {threads} threads",
                        source.name()
                    );
                    assert_eq!(got.fingerprint, w.fingerprint());
                    assert_eq!(got.invocations, w.num_invocations() as u64);
                }
            }
            let _ = std::fs::remove_dir_all(dir.parent().expect("parent"));
        }
    }
}

/// A damaged store never yields wrong cycles: every corruption class
/// produces a typed error from both the loader and the streamed-total
/// consumer, and quarantines the damaged file.
#[test]
fn corrupt_stores_are_typed_and_quarantined_never_garbage_cycles() {
    let storage = RealFs;
    let sim = Simulator::new(GpuConfig::rtx2080());
    let sources = rodinia_sources(31);
    let source = &sources[0];

    let quarantined = |dir: &PathBuf| -> usize {
        std::fs::read_dir(dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| e.file_name().to_string_lossy().contains(".quarantined"))
                    .count()
            })
            .unwrap_or(0)
    };

    // Corruption classes: (tag, mutation) applied to a fresh store.
    type Mutate = fn(&PathBuf);
    let classes: [(&str, Mutate); 5] = [
        ("torn-block", |dir| {
            // Truncate the first block mid-row.
            let block = dir.join("block-00000.col");
            let bytes = std::fs::read(&block).expect("read block");
            std::fs::write(&block, &bytes[..bytes.len() / 2]).expect("tear block");
        }),
        ("flipped-byte", |dir| {
            let block = dir.join("block-00000.col");
            let mut bytes = std::fs::read(&block).expect("read block");
            bytes[10] ^= 0xff;
            std::fs::write(&block, &bytes).expect("flip byte");
        }),
        ("truncated-manifest", |dir| {
            let manifest = dir.join("manifest.txt");
            let text = std::fs::read_to_string(&manifest).expect("read manifest");
            let keep = text.lines().count() / 2;
            let truncated: String =
                text.lines().take(keep).map(|l| format!("{l}\n")).collect();
            std::fs::write(&manifest, truncated).expect("truncate manifest");
        }),
        ("bad-header", |dir| {
            let manifest = dir.join("manifest.txt");
            let text = std::fs::read_to_string(&manifest).expect("read manifest");
            std::fs::write(&manifest, format!("NOT-A-STORE\n{text}")).expect("spoof header");
        }),
        ("lying-fingerprint", |dir| {
            // Flip one fingerprint bit but re-forge the manifest checksum,
            // so only the end-of-stream fingerprint cross-check can catch it.
            let manifest = dir.join("manifest.txt");
            let text = std::fs::read_to_string(&manifest).expect("read manifest");
            let mut body = String::new();
            let mut flipped = false;
            for line in text.lines() {
                if line.starts_with("checksum ") {
                    continue;
                }
                if let Some(hex) = line.strip_prefix("fingerprint ") {
                    let lie = u64::from_str_radix(hex.trim(), 16).expect("hex fingerprint") ^ 1;
                    body.push_str(&format!("fingerprint {lie:016x}\n"));
                    flipped = true;
                } else {
                    body.push_str(line);
                    body.push('\n');
                }
            }
            assert!(flipped, "manifest must carry a fingerprint line");
            body.push_str(&format!("checksum {:016x}\n", fnv64(body.as_bytes())));
            std::fs::write(&manifest, body).expect("spoof fingerprint");
        }),
    ];

    for (tag, mutate) in classes {
        let dir = write_store(&storage, tag, source, 64);
        mutate(&dir);
        let loaded = load_store(&storage, &dir);
        assert!(loaded.is_err(), "{tag}: loader accepted a damaged store");
        let total = store_total(&sim, Parallelism::serial(), &storage, &dir, 2);
        match total {
            Err(StreamRunError::Produce(_)) => {}
            other => panic!("{tag}: wanted a typed producer error, got {other:?}"),
        }
        assert!(
            quarantined(&dir) > 0,
            "{tag}: damaged file must be quarantined, not silently retried"
        );
        let _ = std::fs::remove_dir_all(dir.parent().expect("parent"));
    }
}

/// Write-side storage chaos: committing a store through a faulty
/// filesystem either succeeds with a fully verifiable store or fails
/// with a typed error — the manifest-last commit point means a crashed
/// write never leaves a store that opens.
#[test]
fn store_commit_under_storage_faults_is_typed_or_absent() {
    let sim = Simulator::new(GpuConfig::rtx2080());
    let sources = rodinia_sources(13);
    let source = &sources[1];
    let reference = {
        let w = source.materialize();
        sim.run_full_total(&w, Parallelism::serial())
    };
    let mut completed = 0_usize;
    for (i, plan) in StorageFaultPlan::all_classes(99).into_iter().enumerate() {
        let fs = FaultFs::with_plan(plan);
        let dir = scratch(&format!("chaos-{i}")).join(source.name());
        let attempt = (|| -> Result<(), ColStoreError> {
            let mut writer = StoreWriter::create(&fs, &dir, 256)?;
            let summary = source.stream(&mut writer, 256).map_err(|e| match e {
                SinkError::Store(boxed) => *boxed,
                SinkError::Closed => unreachable!("store writer never hangs up"),
            })?;
            writer.finish(&summary)
        })();
        match attempt {
            Ok(()) => {
                // Commit claimed success: the store must verify and
                // reproduce the reference total exactly.
                let total = store_total(&sim, Parallelism::serial(), &RealFs, &dir, 2)
                    .expect("committed store must stream");
                assert_eq!(total.total_cycles.to_bits(), reference.to_bits());
                completed += 1;
            }
            Err(ColStoreError::Io(_)) => {
                // Typed failure: whatever landed on disk must never open
                // as a valid store unless the manifest commit finished.
                if let Ok(loaded) = load_store(&RealFs, &dir) {
                    let w = source.materialize();
                    assert_eq!(loaded, w, "partially failed commit produced a wrong store");
                }
            }
            Err(other) => panic!("fault class {i}: unexpected error {other}"),
        }
        let _ = std::fs::remove_dir_all(dir.parent().expect("parent"));
    }
    // The sweep must exercise both outcomes at least once across classes.
    assert!(completed < 5, "every fault class silently succeeded");
}
