//! Storage chaos suite: the acceptance gate for the durability contract
//! (DESIGN.md §14).
//!
//! Every durable write in the workspace — campaign snapshots, the serve
//! journal, committed bench results — goes through the [`Storage`]
//! abstraction, so all of them can be run against the chaos-family
//! [`FaultFs`]: torn writes, short writes, ENOSPC, rename failure,
//! fsync failure, and a crash at any chosen syscall boundary. The
//! invariants:
//!
//! 1. **Crash-point explorer (campaign).** Enumerate every mutating
//!    storage operation of a full campaign (the [`FaultFs`] census),
//!    then replay the campaign crashing at *each* boundary, in both
//!    crash modes, at thread counts 1 and 4. A restart on the real
//!    filesystem always recovers summaries **bit-identical** to the
//!    uninterrupted run, never trusts a torn file, and leaves no `.tmp`
//!    orphan behind.
//! 2. **Crash-point explorer (serve).** The same sweep over a daemon
//!    session: jobs admitted before the crash are never dropped — a
//!    restart re-admits and completes them with payloads identical to a
//!    clean run — and jobs rejected during the outage recompute the
//!    same bits when resubmitted.
//! 3. **Fault sweeps.** Under every probabilistic fault class the
//!    campaign either completes bit-identically or fails with a typed
//!    [`SnapshotError::Io`] naming the operation and path, and a clean
//!    retry recovers identical bits; the daemon absorbs every class
//!    without dying or corrupting a job.
//! 4. **Quarantine uniquification.** Repeated corruption of the same
//!    snapshot quarantines to distinct names (`.quarantined`,
//!    `.quarantined.1`, ...) — evidence is never overwritten.
//! 5. **Orphan sweep.** Stale `*.tmp` files are removed and reported on
//!    campaign resume and on daemon startup.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use stem::prelude::*;
use stem::serve::render_result_payload;
use stem::sim::SimCache;

/// Reps per workload; 3 workloads x 1 rep = 3 campaign units, giving
/// 12 syscall boundaries (write + fsync + rename + dir-sync per unit)
/// for the explorer to sweep.
const REPS: u32 = 1;

/// Generous settle budget: CI runs on few, slow cores.
const IDLE: Duration = Duration::from_secs(600);

/// A fresh scratch directory for one test's durable files.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stem-storage-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// One small workload per suite (the same picks as the serve suite), so
/// the sweep multiplies against cheap campaigns.
fn suite_workloads() -> Vec<Workload> {
    vec![
        rodinia_suite(33)[7].clone(),
        casio_suite(33)[7].clone(),
        huggingface_suite(33, HuggingfaceScale::custom(0.02))[5].clone(),
    ]
}

/// A campaign pipeline sharing one memo cache across the whole sweep:
/// cache hits are pure, so sharing never changes bits — it only keeps
/// a hundred replayed campaigns cheap.
fn pipeline(threads: usize, cache: &Arc<SimCache>) -> Pipeline {
    Pipeline::new(Simulator::new(GpuConfig::rtx2080()))
        .with_reps(REPS)
        .expect("positive reps")
        .with_parallelism(Parallelism::with_threads(threads))
        .with_shared_cache(Arc::clone(cache))
}

#[test]
fn campaign_crash_point_explorer_recovers_bit_identical() {
    let dir = scratch("campaign-explorer");
    let workloads = suite_workloads();
    let sampler = StemRootSampler::new(StemConfig::default());
    let cache = Arc::new(SimCache::new());
    let baseline = pipeline(1, &cache)
        .run_campaign(&sampler, &workloads, &dir.join("reference.snap"))
        .expect("reference campaign");
    let total_units = workloads.len() as u64 * u64::from(REPS);

    for threads in [1usize, 4] {
        // Census pass: a pass-through FaultFs counts every mutating
        // storage operation of a clean campaign — the syscall
        // boundaries the explorer will crash at.
        let census_fs = Arc::new(FaultFs::new(0));
        let census = pipeline(threads, &cache)
            .with_storage(Arc::clone(&census_fs) as Arc<dyn Storage>)
            .run_campaign(&sampler, &workloads, &dir.join(format!("census-t{threads}.snap")))
            .expect("pass-through FaultFs campaign");
        assert_eq!(census.summaries, baseline.summaries, "pass-through wrapper changed bits");
        let boundaries = census_fs.ops();
        assert!(
            boundaries >= total_units * 4,
            "threads {threads}: census must cover a write+fsync+rename+dir-sync \
             per persisted unit, saw {boundaries}"
        );
        for op in [StorageOp::Write, StorageOp::SyncFile, StorageOp::Rename, StorageOp::SyncDir] {
            assert!(
                census_fs.census().iter().any(|r| r.op == op),
                "threads {threads}: boundary class {op} missing from the census"
            );
        }

        for at in 0..boundaries {
            for mode in [CrashMode::Before, CrashMode::Torn] {
                let snap = dir.join(format!("t{threads}-b{at}-{mode:?}.snap"));
                let fs = Arc::new(FaultFs::new(1).with_crash_at(at, mode));
                match pipeline(threads, &cache)
                    .with_storage(Arc::clone(&fs) as Arc<dyn Storage>)
                    .run_campaign(&sampler, &workloads, &snap)
                {
                    // A crash landing on the best-effort directory sync
                    // of the final commit is absorbed: the data already
                    // landed, so the campaign may still complete.
                    Ok(r) => assert_eq!(
                        r.summaries, baseline.summaries,
                        "threads {threads}, boundary {at} ({mode:?}): survived crash changed bits"
                    ),
                    Err(StemError::Snapshot(_)) => {}
                    Err(other) => panic!(
                        "threads {threads}, boundary {at} ({mode:?}): wrong error class: {other}"
                    ),
                }
                // Restart: a new process on the real filesystem.
                let resumed = pipeline(threads, &cache)
                    .resume_from(&sampler, &workloads, &snap)
                    .expect("recovery after crash");
                assert_eq!(
                    resumed.summaries, baseline.summaries,
                    "threads {threads}, boundary {at} ({mode:?}): recovered bits differ"
                );
                assert!(
                    resumed.quarantined.is_none(),
                    "threads {threads}, boundary {at} ({mode:?}): atomic commit must never \
                     leave a torn snapshot behind"
                );
                assert_eq!(
                    resumed.resumed_units + resumed.executed_units,
                    total_units,
                    "threads {threads}, boundary {at} ({mode:?}): units lost or double-counted"
                );
                assert!(
                    !stem::storage::sibling(&snap, ".tmp").exists(),
                    "threads {threads}, boundary {at} ({mode:?}): tmp orphan survived recovery"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn campaign_fault_sweep_recovers_every_class() {
    let dir = scratch("campaign-sweep");
    let workloads = suite_workloads();
    let sampler = StemRootSampler::new(StemConfig::default());
    let cache = Arc::new(SimCache::new());
    let baseline = pipeline(1, &cache)
        .run_campaign(&sampler, &workloads, &dir.join("reference.snap"))
        .expect("reference campaign");

    for plan in StorageFaultPlan::all_classes(0x5EED) {
        let label = plan.faults()[0].label();
        let snap = dir.join(format!("{label}.snap"));
        let fs = Arc::new(FaultFs::with_plan(plan));
        match pipeline(1, &cache)
            .with_storage(Arc::clone(&fs) as Arc<dyn Storage>)
            .run_campaign(&sampler, &workloads, &snap)
        {
            Ok(r) => assert_eq!(r.summaries, baseline.summaries, "{label}: survived-faults bits"),
            Err(StemError::Snapshot(SnapshotError::Io(e))) => {
                // Typed failure: the error names the operation and path.
                let rendered = e.to_string();
                assert!(
                    rendered.contains(e.op.as_str()),
                    "{label}: operation missing from `{rendered}`"
                );
                assert!(
                    rendered.contains(&e.path.display().to_string()),
                    "{label}: path missing from `{rendered}`"
                );
                // A clean retry (the disk recovered) recomputes or
                // resumes to identical bits.
                let retried = pipeline(1, &cache)
                    .resume_from(&sampler, &workloads, &snap)
                    .expect("clean retry");
                assert_eq!(retried.summaries, baseline.summaries, "{label}: retry bits differ");
                assert!(retried.quarantined.is_none(), "{label}: fault corrupted the snapshot");
            }
            Err(other) => panic!("{label}: wrong error class: {other}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn enospc_and_rename_failures_are_typed_with_operation_and_path() {
    let dir = scratch("typed-errors");
    let workloads = suite_workloads();
    let sampler = StemRootSampler::new(StemConfig::default());
    let cache = Arc::new(SimCache::new());
    let baseline = pipeline(1, &cache)
        .run_campaign(&sampler, &workloads, &dir.join("reference.snap"))
        .expect("reference campaign");

    // A guaranteed full disk: the first snapshot write fails with the
    // ENOSPC kind, and the rendered error names the write and the file.
    let snap = dir.join("enospc.snap");
    let fs = Arc::new(FaultFs::with_plan(StorageFaultPlan::single(
        2,
        StorageFault::Enospc { fraction: 1.0 },
    )));
    let err = pipeline(1, &cache)
        .with_storage(Arc::clone(&fs) as Arc<dyn Storage>)
        .run_campaign(&sampler, &workloads, &snap)
        .expect_err("full disk must fail the campaign");
    match err {
        StemError::Snapshot(SnapshotError::Io(e)) => {
            assert_eq!(e.op, StorageOp::Write);
            assert_eq!(e.kind, std::io::ErrorKind::StorageFull);
            let rendered = e.to_string();
            assert!(rendered.contains("write"), "op lost: {rendered}");
            assert!(rendered.contains("No space left"), "errno text lost: {rendered}");
            assert!(rendered.contains("enospc.snap"), "path lost: {rendered}");
        }
        other => panic!("wrong error class: {other}"),
    }

    // A guaranteed rename failure: the commit never happens, the error
    // names the rename, and the stranded tmp is swept (and reported) on
    // the next resume.
    let snap = dir.join("rename.snap");
    let fs = Arc::new(FaultFs::with_plan(StorageFaultPlan::single(
        3,
        StorageFault::RenameFail { fraction: 1.0 },
    )));
    let err = pipeline(1, &cache)
        .with_storage(Arc::clone(&fs) as Arc<dyn Storage>)
        .run_campaign(&sampler, &workloads, &snap)
        .expect_err("failing renames must fail the campaign");
    match err {
        StemError::Snapshot(SnapshotError::Io(e)) => {
            assert_eq!(e.op, StorageOp::Rename);
            assert!(e.to_string().contains("rename"), "op lost: {e}");
        }
        other => panic!("wrong error class: {other}"),
    }
    let tmp = stem::storage::sibling(&snap, ".tmp");
    assert!(tmp.exists(), "failed rename must leave its tmp for the sweep");
    let recovered = pipeline(1, &cache)
        .resume_from(&sampler, &workloads, &snap)
        .expect("recovery after rename failure");
    assert_eq!(recovered.swept_tmp, vec![tmp.clone()], "sweep must report the orphan");
    assert!(!tmp.exists(), "sweep must remove the orphan");
    assert_eq!(recovered.summaries, baseline.summaries);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repeated_corruption_quarantines_to_unique_names() {
    let dir = scratch("quarantine-unique");
    let workloads = suite_workloads();
    let sampler = StemRootSampler::new(StemConfig::default());
    let cache = Arc::new(SimCache::new());
    let snap = dir.join("campaign.snap");
    let baseline = pipeline(1, &cache)
        .run_campaign(&sampler, &workloads, &snap)
        .expect("baseline campaign");

    // Corrupt the snapshot twice in a row: each resume must quarantine
    // to a fresh name — overwriting round 1's evidence with round 2's
    // would destroy exactly the file a postmortem needs.
    let mut quarantined = Vec::new();
    for (round, suffix) in [(1u32, ".quarantined"), (2, ".quarantined.1")] {
        std::fs::write(&snap, format!("not a snapshot (round {round})\n"))
            .expect("plant corruption");
        let report = pipeline(1, &cache)
            .resume_from(&sampler, &workloads, &snap)
            .expect("resume survives corruption");
        let q = report.quarantined.unwrap_or_else(|| panic!("round {round}: undetected"));
        assert!(
            q.path.to_string_lossy().ends_with(suffix),
            "round {round}: quarantined to {} instead of *{suffix}",
            q.path.display()
        );
        assert_eq!(report.summaries, baseline.summaries, "round {round}: recompute bits");
        quarantined.push(q.path);
    }
    for path in &quarantined {
        assert!(path.exists(), "quarantine evidence lost at {}", path.display());
    }
    let contents: Vec<String> = quarantined
        .iter()
        .map(|p| std::fs::read_to_string(p).expect("read quarantine"))
        .collect();
    assert_ne!(contents[0], contents[1], "distinct corruptions must both survive");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn orphan_tmp_files_are_swept_on_resume() {
    let dir = scratch("tmp-sweep");
    let workloads = suite_workloads();
    let sampler = StemRootSampler::new(StemConfig::default());
    let cache = Arc::new(SimCache::new());
    let snap = dir.join("campaign.snap");
    let baseline = pipeline(1, &cache)
        .run_campaign(&sampler, &workloads, &snap)
        .expect("baseline campaign");

    // A crash between tmp-write and rename strands a sibling tmp; the
    // next resume removes it without ever reading it.
    let tmp = stem::storage::sibling(&snap, ".tmp");
    std::fs::write(&tmp, "half a snapshot").expect("plant orphan");
    let report = pipeline(1, &cache)
        .resume_from(&sampler, &workloads, &snap)
        .expect("resume with orphan present");
    assert_eq!(report.swept_tmp, vec![tmp.clone()]);
    assert!(!tmp.exists(), "orphan must be removed");
    assert!(report.quarantined.is_none(), "the real snapshot was valid");
    assert_eq!(report.resumed_units, workloads.len() as u64 * u64::from(REPS));
    assert_eq!(report.summaries, baseline.summaries);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// stem-serve under storage faults
// ---------------------------------------------------------------------

/// Two one-unit jobs for distinct tenants (the same suite picks as the
/// serve acceptance suite).
fn serve_specs() -> Vec<JobSpec> {
    let spec = |tenant: &str, suite, workload_index, seed| JobSpec {
        tenant: tenant.to_string(),
        suite,
        suite_seed: 33,
        workload_index,
        reps: REPS,
        seed,
        deadline_ms: None,
        sampler: "STEM".to_string(),
        store: None,
    };
    vec![spec("t0", SuiteId::Rodinia, 7, 11), spec("t1", SuiteId::Casio, 7, 12)]
}

/// Ground truth: the spec run as a plain serial pipeline campaign,
/// rendered through the daemon's payload formatter.
fn serial_payload(spec: &JobSpec, dir: &Path, tag: &str) -> String {
    let sampler = standard_registry().build(&spec.sampler).expect("registered sampler");
    let workload = spec.workload().expect("spec workload");
    let report = Pipeline::new(Simulator::new(GpuConfig::rtx2080()))
        .with_reps(spec.reps)
        .expect("positive reps")
        .with_seed(spec.seed)
        .with_parallelism(Parallelism::with_threads(1))
        .run_campaign(
            sampler.as_ref(),
            std::slice::from_ref(&workload),
            &dir.join(format!("{tag}.snap")),
        )
        .expect("serial reference campaign");
    render_result_payload(report.summaries.first().expect("one summary"))
}

/// A one-worker daemon config with fast deterministic backoff.
fn serve_config(dir: &Path, job_retries: u32) -> ServeConfig {
    let mut config = ServeConfig::new(dir).with_workers(1, 1);
    config.job_retry_limit = job_retries;
    config.backoff_base_ms = 1;
    config.backoff_cap_ms = 2;
    config
}

#[test]
fn serve_crash_point_explorer_never_drops_admitted_jobs() {
    let specs = serve_specs();
    let ref_dir = scratch("serve-reference");
    let reference: Vec<String> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| serial_payload(s, &ref_dir, &format!("ref-{i}")))
        .collect();

    // Census pass: one clean daemon session under a pass-through
    // FaultFs — startup, two admissions, two jobs — enumerating the
    // syscall boundaries of the serve durability path.
    let census_dir = scratch("serve-census");
    let census_fs = Arc::new(FaultFs::new(0));
    let server = Server::start(
        serve_config(&census_dir, 1).with_storage(Arc::clone(&census_fs) as Arc<dyn Storage>),
    )
    .expect("daemon starts under pass-through FaultFs");
    for spec in &specs {
        server.try_submit(spec.clone()).expect("clean admission");
    }
    assert!(server.wait_idle(IDLE), "clean session must settle");
    for (spec, want) in specs.iter().zip(&reference) {
        let payload = server
            .result_payload(&spec.tenant, job_id_of(&server, spec))
            .expect("tenant access")
            .expect("payload ready");
        assert_eq!(&payload, want, "pass-through FaultFs changed serve bits");
    }
    server.shutdown();
    let boundaries = census_fs.ops();
    assert!(boundaries >= 8, "census must see journal and snapshot commits, saw {boundaries}");

    for at in 0..boundaries {
        let dir = scratch(&format!("serve-crash-{at}"));
        let fs = Arc::new(FaultFs::new(0).with_crash_at(at, CrashMode::Torn));
        // Session 1: the daemon lives on a disk that dies at boundary
        // `at`. An admission either lands durably (OK) or is rejected —
        // never silently half-admitted.
        let mut admitted: Vec<(JobSpec, u64)> = Vec::new();
        let mut rejected: Vec<JobSpec> = Vec::new();
        match Server::start(
            serve_config(&dir, 1).with_storage(Arc::clone(&fs) as Arc<dyn Storage>),
        ) {
            Ok(server) => {
                for spec in &specs {
                    // The crash is permanent in this session, so a few
                    // attempts suffice to classify the admission.
                    let id = (0..3).find_map(|_| server.try_submit(spec.clone()).ok());
                    match id {
                        Some(id) => admitted.push((spec.clone(), id)),
                        None => rejected.push(spec.clone()),
                    }
                }
                // Jobs settle (Done or Failed-on-dead-disk); either way
                // the journal already holds every admitted spec.
                assert!(server.wait_idle(IDLE), "crashed-disk session must still settle");
                server.shutdown();
            }
            // The crash fired during startup: the daemon never came up,
            // nothing was admitted.
            Err(_) => rejected.extend(specs.iter().cloned()),
        }

        // Session 2: a new process on the real filesystem. Every
        // admitted job must be re-admitted from the journal and finish
        // with reference bits; rejected jobs recompute them on
        // resubmission.
        let server = Server::start(serve_config(&dir, 1)).expect("restart after crash");
        assert!(
            server.recovery().quarantined.is_none(),
            "boundary {at}: atomic journal commits must never leave a torn journal"
        );
        for (_, id) in &admitted {
            assert!(
                server.recovery().re_admitted.contains(id),
                "boundary {at}: admitted job {id} dropped by the crash"
            );
        }
        let resubmitted: Vec<(JobSpec, u64)> = rejected
            .iter()
            .map(|s| (s.clone(), server.try_submit(s.clone()).expect("resubmission admitted")))
            .collect();
        assert!(server.wait_idle(IDLE), "recovered jobs must finish");
        for (spec, id) in admitted.iter().chain(&resubmitted) {
            let status = server.status(&spec.tenant, *id).expect("tenant access");
            assert_eq!(
                status.phase,
                JobPhase::Done,
                "boundary {at}: job {id} ({}) not done: {:?}",
                spec.tenant,
                status.message
            );
            let payload = server
                .result_payload(&spec.tenant, *id)
                .expect("tenant access")
                .expect("payload ready");
            let want = &reference[specs.iter().position(|s| s.tenant == spec.tenant).expect("spec")];
            assert_eq!(&payload, want, "boundary {at}: recovered bits differ for {}", spec.tenant);
        }
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&census_dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

/// The census session admits each tenant's job exactly once; recover the
/// id through the tenant-checked status path.
fn job_id_of(server: &Server, spec: &JobSpec) -> u64 {
    (0..16)
        .find(|&id| server.status(&spec.tenant, id).is_ok())
        .expect("admitted job id")
}

#[test]
fn serve_absorbs_every_storage_fault_class() {
    let specs = serve_specs();
    let ref_dir = scratch("serve-sweep-reference");
    let reference: Vec<String> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| serial_payload(s, &ref_dir, &format!("ref-{i}")))
        .collect();

    let classes = [
        StorageFault::TornWrite { fraction: 0.6 },
        StorageFault::ShortWrite { fraction: 0.6 },
        StorageFault::Enospc { fraction: 0.6 },
        StorageFault::RenameFail { fraction: 0.6 },
        StorageFault::FsyncFail { fraction: 0.6 },
    ];
    let mut total_injected = 0;
    for fault in classes {
        let label = fault.label();
        let dir = scratch(&format!("serve-sweep-{label}"));
        let fs = Arc::new(FaultFs::with_plan(StorageFaultPlan::single(0xD15C, fault)));
        // Generous retry budget: at 60% per-op failure the capped
        // backoff must still grind every job through to Done.
        let server = Server::start(
            serve_config(&dir, 100).with_storage(Arc::clone(&fs) as Arc<dyn Storage>),
        )
        .expect("daemon starts under probabilistic faults");
        let ids: Vec<u64> = specs
            .iter()
            .map(|spec| {
                (0..200)
                    .find_map(|_| server.try_submit(spec.clone()).ok())
                    .unwrap_or_else(|| panic!("{label}: admission never succeeded"))
            })
            .collect();
        assert!(server.wait_idle(IDLE), "{label}: daemon must settle");
        for ((spec, id), want) in specs.iter().zip(&ids).zip(&reference) {
            let status = server.status(&spec.tenant, *id).expect("tenant access");
            assert_eq!(
                status.phase,
                JobPhase::Done,
                "{label}: job {id} lost to storage faults: {:?}",
                status.message
            );
            let payload = server
                .result_payload(&spec.tenant, *id)
                .expect("tenant access")
                .expect("payload ready");
            assert_eq!(&payload, want, "{label}: storage faults changed serve bits");
        }
        // The daemon is still alive and admitting after the beating.
        let probe = (0..200)
            .find_map(|_| server.try_submit(specs[0].clone()).ok())
            .unwrap_or_else(|| panic!("{label}: daemon stopped admitting"));
        assert!(server.wait_idle(IDLE), "{label}: probe job must settle");
        total_injected += fs.injected();
        let _ = probe;
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(total_injected > 0, "the sweep never actually injected a fault");
    let _ = std::fs::remove_dir_all(&ref_dir);
}

#[test]
fn serve_startup_sweeps_orphan_tmp_files() {
    let dir = scratch("serve-tmp-sweep");
    std::fs::write(dir.join("a.tmp"), "half a journal").expect("plant orphan");
    std::fs::write(dir.join("b.tmp"), "half a snapshot").expect("plant orphan");
    std::fs::write(dir.join("keep.txt"), "not a tmp").expect("plant bystander");
    let server = Server::start(serve_config(&dir, 1)).expect("daemon starts");
    let swept = &server.recovery().swept_tmp;
    assert_eq!(swept, &vec![dir.join("a.tmp"), dir.join("b.tmp")]);
    assert!(!dir.join("a.tmp").exists() && !dir.join("b.tmp").exists());
    assert!(dir.join("keep.txt").exists(), "sweep must only touch *.tmp");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
