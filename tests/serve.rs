//! Service suite: the acceptance gate for the `stem-serve` daemon.
//!
//! The scenarios mirror how a campaign service actually degrades: the
//! daemon dies mid-job and restarts on the same journal directory, two
//! tenants compete for the worker pool, the queue fills past its bounds,
//! the journal is damaged on disk between runs, and clients speak
//! garbage over the wire. The invariants:
//!
//! 1. A daemon killed after N completed units and restarted produces
//!    `RESULT` payloads **byte-identical** to an uninterrupted run, for
//!    one workload from each suite, at thread budgets 1 and 4.
//! 2. Concurrent multi-tenant service results equal a serial
//!    [`Pipeline`] campaign, bit for bit — over the wire too.
//! 3. Past the queue bounds, `SUBMIT` is rejected with the typed
//!    [`StemError::Overloaded`] (scope names the bound that refused it)
//!    while already-admitted jobs still complete.
//! 4. A corrupt journal is quarantined — never trusted — and resubmitted
//!    jobs recompute the same bits.
//! 5. The shared memo cache never exceeds its entry cap across a warm
//!    multi-campaign run, and eviction is output-invisible.
//! 6. Wire-level chaos (truncated frames, garbage lines, disconnects,
//!    slow writers) never takes the daemon down.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

use stem::prelude::*;
use stem::profile::{WireExchange, WireFaultPlan};
use stem::serve::render_result_payload;

/// Generous settle budget: CI runs on few, slow cores.
const IDLE: Duration = Duration::from_secs(600);

/// A fresh scratch directory for one test's journal + snapshots.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stem-serve-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// One small workload per suite (by invocation count), so the whole
/// suite stays fast while covering all three suite materializers.
fn suite_specs() -> Vec<JobSpec> {
    let spec = |tenant: &str, suite, workload_index, seed| JobSpec {
        tenant: tenant.to_string(),
        suite,
        suite_seed: 33,
        workload_index,
        reps: 2,
        seed,
        deadline_ms: None,
        sampler: "STEM".to_string(),
        store: None,
    };
    vec![
        spec("alice", SuiteId::Rodinia, 7, 11),   // kmeans
        spec("bob", SuiteId::Casio, 7, 12),       // ssdrn34_infer
        spec("carol", SuiteId::Huggingface, 5, 13), // resnet50
    ]
}

/// Ground truth: the same job run as a plain serial [`Pipeline`]
/// campaign, with the spec's sampler built through the same registry the
/// daemon dispatches from, rendered through the payload formatter.
fn serial_payload(spec: &JobSpec, dir: &Path, tag: &str) -> String {
    let sampler = standard_registry().build(&spec.sampler).expect("registered sampler");
    let workload = spec.workload().expect("spec workload");
    let report = Pipeline::new(Simulator::new(GpuConfig::rtx2080()))
        .with_reps(spec.reps)
        .expect("positive reps")
        .with_seed(spec.seed)
        .with_parallelism(Parallelism::with_threads(1))
        .run_campaign(
            sampler.as_ref(),
            std::slice::from_ref(&workload),
            &dir.join(format!("{tag}.snap")),
        )
        .expect("serial reference campaign");
    render_result_payload(report.summaries.first().expect("one summary"))
}

/// A line-framed protocol client: one connection, many requests.
struct Wire {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Wire {
    fn connect(addr: SocketAddr) -> Wire {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        Wire { stream, buf: Vec::new() }
    }

    /// Sends one request line and reads the complete reply: a single
    /// line, or the full multi-line payload (through `END`) after an
    /// `OK result` header.
    fn roundtrip(&mut self, line: &str) -> String {
        self.stream.write_all(line.as_bytes()).expect("send request");
        let header = self.read_line();
        if header == "OK result\n" {
            let mut payload = String::new();
            loop {
                let line = self.read_line();
                let done = line == "END\n";
                payload.push_str(&line);
                if done {
                    return format!("{header}{payload}");
                }
            }
        }
        header
    }

    fn read_line(&mut self) -> String {
        let mut chunk = [0u8; 256];
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                return String::from_utf8(line).expect("utf-8 reply");
            }
            let n = self.stream.read(&mut chunk).expect("read reply");
            assert!(n > 0, "daemon closed the connection mid-reply");
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Polls `STATUS` until the job reports `done`.
    fn wait_done(&mut self, tenant: &str, job: u64) -> String {
        let deadline = std::time::Instant::now() + IDLE;
        loop {
            let status = self.roundtrip(&format!("STATUS {tenant} {job}\n"));
            if status.starts_with("OK status done") {
                return status;
            }
            assert!(
                status.starts_with("OK status "),
                "job {job} left the normal lifecycle: {status:?}"
            );
            assert!(std::time::Instant::now() < deadline, "job {job} never finished");
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

#[test]
fn killed_daemon_restart_serves_bit_identical_results() {
    let specs = suite_specs();
    let refs = scratch("kill-refs");
    let references: Vec<String> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| serial_payload(s, &refs, &format!("ref-{i}")))
        .collect();

    for threads in [1usize, 4] {
        let dir = scratch(&format!("kill-t{threads}"));
        // Phase 1: a daemon whose campaigns die after one admitted unit
        // (the chaos hook's simulated process kill).
        let faulty = Server::start(
            ServeConfig::new(&dir)
                .with_workers(2, threads)
                .with_exec_faults(ExecFaultPlan::new(0xC1A0).with_kill_after_units(1)),
        )
        .expect("faulty daemon starts");
        let ids: Vec<u64> = specs
            .iter()
            .map(|s| faulty.try_submit(s.clone()).expect("admitted"))
            .collect();
        assert!(faulty.wait_idle(IDLE), "interrupted jobs must settle");
        for (spec, &id) in specs.iter().zip(&ids) {
            let status = faulty.status(&spec.tenant, id).expect("own job");
            assert_eq!(
                status.phase,
                JobPhase::Interrupted,
                "threads {threads}, job {id}: kill must interrupt, got {:?}",
                status.phase
            );
        }
        faulty.shutdown();
        drop(faulty);

        // Phase 2: a clean daemon on the same journal directory picks the
        // jobs back up from their snapshots.
        let restarted = Server::start(ServeConfig::new(&dir).with_workers(2, threads))
            .expect("restarted daemon starts");
        assert_eq!(
            restarted.recovery().re_admitted,
            ids,
            "threads {threads}: every journaled job must be re-admitted in order"
        );
        assert!(restarted.recovery().quarantined.is_none());
        assert!(restarted.wait_idle(IDLE), "re-admitted jobs must finish");
        for ((spec, &id), reference) in specs.iter().zip(&ids).zip(&references) {
            let status = restarted.status(&spec.tenant, id).expect("own job");
            assert_eq!(status.phase, JobPhase::Done);
            assert!(
                status.resumed_units >= 1,
                "threads {threads}, job {id}: restart must resume, not recompute"
            );
            let payload = restarted
                .result_payload(&spec.tenant, id)
                .expect("own job")
                .expect("done job has a payload");
            assert_eq!(
                &payload, reference,
                "threads {threads}, job {id}: restarted payload bits differ"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&refs);
}

#[test]
fn concurrent_tenants_over_the_wire_match_serial_pipeline() {
    let dir = scratch("tenants");
    let alice = JobSpec {
        tenant: "alice".to_string(),
        suite: SuiteId::Rodinia,
        suite_seed: 33,
        workload_index: 7, // kmeans
        reps: 2,
        seed: 21,
        deadline_ms: None,
        sampler: "STEM".to_string(),
        store: None,
    };
    let mut bob = alice.clone();
    bob.tenant = "bob".to_string();
    bob.workload_index = 5; // heartwall
    bob.seed = 22;
    // A zero soft deadline flags every unit as a straggler without
    // changing any bit of the result.
    bob.deadline_ms = Some(0);
    let alice_ref = serial_payload(&alice, &dir, "alice-ref");
    let bob_ref = serial_payload(&bob, &dir, "bob-ref");

    let server =
        Server::start(ServeConfig::new(&dir).with_workers(2, 2)).expect("daemon starts");
    let mut wire = Wire::connect(server.addr());
    assert_eq!(wire.roundtrip("PING\n"), "OK pong\n");
    assert_eq!(
        wire.roundtrip("SUBMIT alice rodinia 33 7 2 21\n"),
        "OK job 0\n"
    );
    assert_eq!(
        wire.roundtrip("SUBMIT bob rodinia 33 5 2 22 0\n"),
        "OK job 1\n"
    );

    // Tenant isolation: wrong tenant or unknown id never leaks anything.
    assert_eq!(wire.roundtrip("RESULT bob 0\n"), "ERR denied\n");
    assert_eq!(wire.roundtrip("STATUS alice 99\n"), "ERR unknown-job\n");

    let alice_status = wire.wait_done("alice", 0);
    let bob_status = wire.wait_done("bob", 1);
    assert_eq!(alice_status, "OK status done straggler=0 resumed=0 executed=2\n");
    assert_eq!(
        bob_status, "OK status done straggler=1 resumed=0 executed=2\n",
        "a zero deadline must flag stragglers"
    );

    let alice_reply = wire.roundtrip("RESULT alice 0\n");
    let bob_reply = wire.roundtrip("RESULT bob 1\n");
    assert_eq!(alice_reply, format!("OK result\n{alice_ref}"));
    assert_eq!(
        bob_reply,
        format!("OK result\n{bob_ref}"),
        "straggler flagging leaked into result bits"
    );
    drop(wire);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_rejections_are_typed_and_admitted_jobs_complete() {
    // Tenant quota and load shedding: queue of 3 shedding past 2, one
    // queued job per tenant.
    let dir = scratch("overload-shed");
    let server = Server::start(
        ServeConfig::new(&dir)
            .with_queue(3, 2)
            .with_per_tenant_cap(1)
            .with_workers(1, 1),
    )
    .expect("daemon starts");
    server.pause_workers();
    let spec = |tenant: &str, seed| JobSpec {
        tenant: tenant.to_string(),
        suite: SuiteId::Rodinia,
        suite_seed: 33,
        workload_index: 7,
        reps: 1,
        seed,
        deadline_ms: None,
        sampler: "STEM".to_string(),
        store: None,
    };
    let t1 = server.try_submit(spec("t1", 1)).expect("first job admitted");
    match server.try_submit(spec("t1", 2)) {
        Err(StemError::Overloaded { scope, depth, .. }) => {
            assert_eq!(scope, "t1", "tenant quota must name the tenant");
            assert_eq!(depth, 1);
        }
        other => panic!("tenant quota must refuse: {other:?}"),
    }
    let t2 = server.try_submit(spec("t2", 3)).expect("second tenant admitted");
    match server.try_submit(spec("t3", 4)) {
        Err(StemError::Overloaded { scope, retry_after_ms, .. }) => {
            assert_eq!(scope, "load-shed", "past high water the daemon sheds");
            assert!(retry_after_ms > 0, "shed must carry a retry hint");
        }
        other => panic!("high-water mark must shed: {other:?}"),
    }
    // The refusals must not starve admitted work.
    server.resume_workers();
    assert!(server.wait_idle(IDLE), "admitted jobs drain after shedding");
    for (tenant, id, seed) in [("t1", t1, 1), ("t2", t2, 3)] {
        assert_eq!(server.status(tenant, id).expect("own job").phase, JobPhase::Done);
        let payload = server
            .result_payload(tenant, id)
            .expect("own job")
            .expect("payload present");
        assert_eq!(payload, serial_payload(&spec(tenant, seed), &dir, &format!("ref-{tenant}")));
    }
    server.shutdown();
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);

    // Hard queue bound, observed over the wire.
    let dir = scratch("overload-queue");
    let server = Server::start(
        ServeConfig::new(&dir).with_queue(2, 2).with_per_tenant_cap(5).with_workers(1, 1),
    )
    .expect("daemon starts");
    server.pause_workers();
    server.try_submit(spec("t1", 5)).expect("admitted");
    server.try_submit(spec("t2", 6)).expect("admitted");
    let mut wire = Wire::connect(server.addr());
    assert_eq!(
        wire.roundtrip("SUBMIT t3 rodinia 33 7 1 7\n"),
        "ERR overloaded scope=queue depth=2 retry-after-ms=200\n",
        "a full queue must render the structured overload line"
    );
    server.resume_workers();
    assert!(server.wait_idle(IDLE));
    assert_eq!(
        wire.roundtrip("STATUS t1 0\n"),
        "OK status done straggler=0 resumed=0 executed=1\n"
    );
    drop(wire);
    server.shutdown();
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_journal_is_quarantined_and_jobs_recompute_the_same_bits() {
    let dir = scratch("journal-corruption");
    let spec = JobSpec {
        tenant: "alice".to_string(),
        suite: SuiteId::Rodinia,
        suite_seed: 33,
        workload_index: 7,
        reps: 2,
        seed: 31,
        deadline_ms: None,
        sampler: "STEM".to_string(),
        store: None,
    };
    let first = Server::start(ServeConfig::new(&dir).with_workers(1, 1)).expect("daemon starts");
    let id = first.try_submit(spec.clone()).expect("admitted");
    assert!(first.wait_idle(IDLE));
    let pristine_payload = first
        .result_payload(&spec.tenant, id)
        .expect("own job")
        .expect("payload present");
    first.shutdown();
    drop(first);

    // Damage the journal on disk and remove the snapshots, so the only
    // way back to a result is a full, correct recompute.
    let journal = dir.join("serve.journal");
    let mut bytes = std::fs::read(&journal).expect("journal written");
    let mid = bytes.len() / 2;
    bytes[mid] = bytes[mid].wrapping_add(1);
    std::fs::write(&journal, &bytes).expect("plant corrupt journal");
    for entry in std::fs::read_dir(&dir).expect("scratch dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "snap") {
            std::fs::remove_file(&path).expect("drop snapshot");
        }
    }

    let second = Server::start(ServeConfig::new(&dir).with_workers(1, 1)).expect("daemon restarts");
    let quarantined = second
        .recovery()
        .quarantined
        .as_ref()
        .expect("corrupt journal must be quarantined, never trusted");
    assert!(
        quarantined.path.exists(),
        "quarantined journal missing at {}",
        quarantined.path.display()
    );
    assert!(
        second.recovery().re_admitted.is_empty(),
        "nothing from a corrupt journal may be re-admitted"
    );
    let id = second.try_submit(spec.clone()).expect("resubmission admitted");
    assert!(second.wait_idle(IDLE));
    let status = second.status(&spec.tenant, id).expect("own job");
    assert_eq!(status.phase, JobPhase::Done);
    assert_eq!(status.resumed_units, 0, "snapshots were removed; nothing to resume");
    let recomputed = second
        .result_payload(&spec.tenant, id)
        .expect("own job")
        .expect("payload present");
    assert_eq!(recomputed, pristine_payload, "recompute after quarantine changed bits");
    second.shutdown();
    drop(second);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn memo_cache_stays_bounded_across_a_warm_multi_campaign_run() {
    let dir = scratch("cache-bound");
    let mut config = ServeConfig::new(&dir).with_workers(1, 2);
    // A cap of one entry per shard is far below the workload's group
    // count, so the bound is only honored if eviction actually works.
    config.cache_capacity_per_shard = Some(1);
    let server = Server::start(config).expect("daemon starts");
    let cap = server.cache().num_shards();
    let spec = |seed| JobSpec {
        tenant: "alice".to_string(),
        suite: SuiteId::Rodinia,
        suite_seed: 33,
        workload_index: 4, // gaussian: ~1000 invocation groups
        reps: 1,
        seed,
        deadline_ms: None,
        sampler: "STEM".to_string(),
        store: None,
    };
    let mut payloads = Vec::new();
    for seed in [41u64, 41, 42] {
        let id = server.try_submit(spec(seed)).expect("admitted");
        assert!(server.wait_idle(IDLE), "campaign {id} must finish");
        assert!(
            server.cache().len() <= cap,
            "campaign {id}: cache holds {} entries, cap is {cap}",
            server.cache().len()
        );
        payloads.push(
            server
                .result_payload("alice", id)
                .expect("own job")
                .expect("payload present"),
        );
    }
    assert!(
        server.cache().evictions() > 0,
        "the cap must actually have been enforced by evicting"
    );
    assert_eq!(
        payloads[0], payloads[1],
        "identical specs through a hot, evicting cache must produce identical bits"
    );
    assert_ne!(payloads[0], payloads[2], "different seeds must differ");
    server.shutdown();
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn per_job_samplers_dispatch_through_the_registry() {
    let dir = scratch("samplers");
    let spec = JobSpec {
        tenant: "alice".to_string(),
        suite: SuiteId::Rodinia,
        suite_seed: 33,
        workload_index: 7, // kmeans
        reps: 2,
        seed: 61,
        deadline_ms: None,
        sampler: "RSS".to_string(),
        store: None,
    };
    let rss_ref = serial_payload(&spec, &dir, "rss-ref");
    let server = Server::start(ServeConfig::new(&dir).with_workers(1, 1)).expect("daemon starts");

    // An unknown sampler is refused at admission with the registry's
    // typed error — never journaled, never failing later at dispatch.
    let mut bad = spec.clone();
    bad.sampler = "Oracle".to_string();
    match server.try_submit(bad) {
        Err(StemError::InvalidConfig(msg)) => {
            assert!(msg.contains("unknown sampler"), "error must name the problem: {msg}");
            assert!(msg.contains("RSS"), "error must list the registry: {msg}");
        }
        other => panic!("unknown sampler must be refused: {other:?}"),
    }

    // An RSS job over the wire: 8-field SUBMIT with `-` in the deadline
    // slot. The payload must be bit-identical to the serial pipeline run
    // of the same spec (method label included).
    let mut wire = Wire::connect(server.addr());
    assert_eq!(wire.roundtrip("SUBMIT alice rodinia 33 7 2 61 - RSS\n"), "OK job 0\n");
    wire.wait_done("alice", 0);
    assert_eq!(wire.roundtrip("RESULT alice 0\n"), format!("OK result\n{rss_ref}"));

    // A TwoPhase job through in-process admission matches its own serial
    // reference too — the registry covers every sampler, not just RSS.
    let mut tp = spec.clone();
    tp.sampler = "TwoPhase".to_string();
    let tp_ref = serial_payload(&tp, &dir, "tp-ref");
    let id = server.try_submit(tp.clone()).expect("TwoPhase admitted");
    assert!(server.wait_idle(IDLE), "TwoPhase job must finish");
    let payload = server
        .result_payload(&tp.tenant, id)
        .expect("own job")
        .expect("payload present");
    assert_eq!(payload, tp_ref, "TwoPhase daemon payload bits differ from serial");
    assert_ne!(payload, rss_ref, "different samplers must not share payloads");
    drop(wire);
    server.shutdown();
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wire_chaos_never_takes_the_daemon_down() {
    let dir = scratch("wire-chaos");
    let server = Server::start(ServeConfig::new(&dir).with_workers(1, 1)).expect("daemon starts");
    let addr = server.addr();

    for plan in WireFaultPlan::all_classes(0x5EED) {
        let label = plan.faults()[0].label();
        for index in 0..3u64 {
            let WireExchange { payload, chunk_delay, disconnect_after_write } =
                plan.exchange(index, "PING\n");
            let mut stream = TcpStream::connect(addr).expect("connect for chaos");
            stream
                .set_read_timeout(Some(Duration::from_millis(500)))
                .expect("read timeout");
            match chunk_delay {
                // A slow writer dribbles the frame one byte at a time.
                Some(delay) => {
                    for byte in &payload {
                        if stream.write_all(std::slice::from_ref(byte)).is_err() {
                            break;
                        }
                        std::thread::sleep(delay);
                    }
                }
                None => {
                    let _ = stream.write_all(&payload);
                }
            }
            if disconnect_after_write {
                drop(stream); // hang up before the daemon can answer
            } else {
                // Whatever comes back (a reply, an error line, or a
                // timeout) must leave the daemon standing.
                let mut sink = [0u8; 256];
                let _ = stream.read(&mut sink);
            }
            let mut probe = Wire::connect(addr);
            assert_eq!(
                probe.roundtrip("PING\n"),
                "OK pong\n",
                "daemon died under {label} fault, exchange {index}"
            );
        }
    }

    // After the whole chaos sweep the daemon still serves real work.
    let mut wire = Wire::connect(addr);
    assert_eq!(wire.roundtrip("SUBMIT alice rodinia 33 7 1 51\n"), "OK job 0\n");
    wire.wait_done("alice", 0);
    let spec = JobSpec {
        tenant: "alice".to_string(),
        suite: SuiteId::Rodinia,
        suite_seed: 33,
        workload_index: 7,
        reps: 1,
        seed: 51,
        deadline_ms: None,
        sampler: "STEM".to_string(),
        store: None,
    };
    let reference = serial_payload(&spec, &dir, "post-chaos-ref");
    assert_eq!(wire.roundtrip("RESULT alice 0\n"), format!("OK result\n{reference}"));
    assert_eq!(wire.roundtrip("SHUTDOWN\n"), "OK shutting-down\n");
    server.shutdown();
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_backed_jobs_serve_byte_identical_payloads() {
    let dir = scratch("store-jobs");
    // The reference: the same workload submitted the ordinary way (drawn
    // from the suite) and run through a serial pipeline.
    let spec = JobSpec {
        tenant: "alice".to_string(),
        suite: SuiteId::Rodinia,
        suite_seed: 33,
        workload_index: 7, // kmeans
        reps: 2,
        seed: 61,
        deadline_ms: None,
        sampler: "STEM".to_string(),
        store: None,
    };
    let reference = serial_payload(&spec, &dir, "store-ref");

    // Pre-materialize the same workload into a columnar store on disk.
    let sources = rodinia_sources(33);
    let source = &sources[7];
    let store_dir = dir.join("stores").join(source.name());
    let mut writer = StoreWriter::create(&RealFs, &store_dir, 1024).expect("create store");
    let summary = source.stream(&mut writer, 1024).expect("stream into store");
    writer.finish(&summary).expect("commit store");
    let fp = summary.fingerprint;

    let server =
        Server::start(ServeConfig::new(&dir).with_workers(1, 1)).expect("daemon starts");
    let mut wire = Wire::connect(server.addr());

    // A lying fingerprint is a typed rejection at admission — the job is
    // never journaled, never run.
    let lied = wire.roundtrip(&format!(
        "SUBMIT alice rodinia 33 7 2 61 - STEM {} {:016x}\n",
        store_dir.display(),
        fp ^ 1
    ));
    assert!(
        lied.starts_with("ERR rejected") && lied.contains("does not match expected"),
        "fingerprint mismatch must be typed: {lied:?}"
    );
    // So is a path with no store behind it.
    let gone = wire.roundtrip(&format!(
        "SUBMIT alice rodinia 33 7 2 61 - STEM {}/no-such-store {fp:016x}\n",
        dir.display()
    ));
    assert!(gone.starts_with("ERR rejected"), "missing store must be typed: {gone:?}");

    // The honest submission streams the store and serves a payload
    // byte-identical to the suite-drawn reference.
    assert_eq!(
        wire.roundtrip(&format!(
            "SUBMIT alice rodinia 33 7 2 61 - STEM {} {fp:016x}\n",
            store_dir.display()
        )),
        "OK job 0\n"
    );
    wire.wait_done("alice", 0);
    let reply = wire.roundtrip("RESULT alice 0\n");
    assert_eq!(
        reply,
        format!("OK result\n{reference}"),
        "store-backed payload bits differ from the suite-drawn reference"
    );
    drop(wire);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
