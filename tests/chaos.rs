//! Chaos suite: the acceptance gate for the fault-hardened pipeline.
//!
//! For every fault class in the taxonomy ([`FaultPlan::all_classes`]) and
//! one workload from each of the three synthetic suites, the pipeline
//! must (1) complete without panicking, (2) emit a non-empty
//! [`DataQualityReport`] naming what was repaired or quarantined, and
//! (3) keep its degraded confidence interval covering the clean-trace
//! ground truth — the error bound stays honest because STEM inflates
//! per-cluster variance by the degraded fraction and buys the bound back
//! with more samples.
//!
//! Everything is seeded: the suites, the profiler, the fault plans and the
//! sampler all draw from the in-tree deterministic generator, so a failure
//! replays exactly.

use stem::prelude::*;
use stem::profile::validate::trace_to_csv;
use stem::profile::ExecTimeProfiler;

/// The paper's bound (5%) plus the 1%-slack convention the accuracy tests
/// use for probabilistic intervals.
const CLEAN_SLACK_PCT: f64 = 6.0;

fn pipeline(reps: u32) -> Pipeline {
    Pipeline::new(Simulator::new(GpuConfig::rtx2080()))
        .with_reps(reps)
        .expect("positive reps")
}

/// A clean profiler trace for `w`: per-invocation times from the built-in
/// hardware model, laid out as the back-to-back NSYS record stream.
fn clean_records(w: &Workload) -> Vec<TraceRecord> {
    let times = ExecTimeProfiler::new(GpuConfig::rtx2080(), 0xC0FFEE).profile(w);
    TraceRecord::sequence(&times)
}

/// One representative workload per suite, sized so the whole sweep stays
/// fast: 9 fault classes x 3 suites x 2 reps.
fn suite_workloads() -> Vec<Workload> {
    let rodinia = rodinia_suite(21);
    let casio = casio_suite(21);
    let hf = huggingface_suite(21, HuggingfaceScale::custom(0.02));
    let pick = |suite: &[Workload]| {
        suite
            .iter()
            .max_by_key(|w| w.num_invocations())
            .expect("nonempty suite")
            .clone()
    };
    vec![pick(&rodinia), pick(&casio), pick(&hf)]
}

#[test]
fn every_fault_class_completes_with_honest_degraded_bounds() {
    let sampler = StemRootSampler::new(StemConfig::default());
    let pipe = pipeline(2);
    for w in &suite_workloads() {
        let records = clean_records(w);
        let csv = trace_to_csv(&records);
        for plan in FaultPlan::all_classes(0xDECAF) {
            let fault = plan.faults()[0];
            let label = fault.label();
            // Ragged rows are row-level damage: they only exist in the
            // serialized form, so they enter through the CSV path. Every
            // other class corrupts the in-memory records.
            let outcome = if label == "ragged-rows" {
                pipe.run_from_csv(&sampler, w, &plan.corrupt_csv(&csv))
            } else {
                pipe.run_from_profile(&sampler, w, &plan.apply(&records))
            };
            let (summary, report) =
                outcome.unwrap_or_else(|e| panic!("{}/{label}: pipeline failed: {e}", w.name()));

            // (2) The report must name the damage.
            assert!(
                !report.is_clean() && report.issue_count() > 0,
                "{}/{label}: corruption went undetected: {report}",
                w.name()
            );

            // (3) The degraded CI still covers the ground-truth mean:
            // the clean-trace slack widened by the degraded fraction.
            let bound_pct = CLEAN_SLACK_PCT + 100.0 * report.degraded_fraction();
            assert!(
                summary.mean_error_pct < bound_pct,
                "{}/{label}: error {:.2}% escapes the degraded bound {:.2}% ({report})",
                w.name(),
                summary.mean_error_pct,
                bound_pct
            );
        }
    }
}

#[test]
fn clean_traces_report_clean_and_meet_the_paper_bound() {
    let sampler = StemRootSampler::new(StemConfig::default());
    let pipe = pipeline(2);
    for w in &suite_workloads() {
        let (summary, report) = pipe
            .run_from_profile(&sampler, w, &clean_records(w))
            .unwrap_or_else(|e| panic!("{}: clean trace rejected: {e}", w.name()));
        assert!(report.is_clean(), "{}: spurious report {report}", w.name());
        assert!(
            summary.mean_error_pct < CLEAN_SLACK_PCT,
            "{}: clean error {:.2}%",
            w.name(),
            summary.mean_error_pct
        );
    }
}

#[test]
fn fail_fast_policy_refuses_every_fault_class() {
    let sampler = StemRootSampler::new(StemConfig::default());
    let pipe = pipeline(1).with_recovery(RecoveryPolicy::FailFast);
    let suite = suite_workloads();
    let w = &suite[0];
    let records = clean_records(w);
    let csv = trace_to_csv(&records);
    for plan in FaultPlan::all_classes(0xDECAF) {
        let label = plan.faults()[0].label();
        let outcome = if label == "ragged-rows" {
            pipe.run_from_csv(&sampler, w, &plan.corrupt_csv(&csv))
        } else {
            pipe.run_from_profile(&sampler, w, &plan.apply(&records))
        };
        match outcome {
            Err(StemError::DegradedTrace(report)) => {
                assert!(!report.is_clean(), "{label}: empty refusal report")
            }
            Err(e) => panic!("{label}: wrong error class: {e}"),
            Ok(_) => panic!("{label}: fail-fast accepted a damaged trace"),
        }
    }
}

/// Adversarial scenarios under trace damage: a phase-drift workload —
/// built so early and late invocations of one kernel live in different
/// regimes — profiled, corrupted with the composed fault mix, and pushed
/// through repair. The degraded CI must still cover the clean-trace
/// ground truth, and the report must name the damage. This is the same
/// cell the calibration matrix scores (`adv/phase_drift+faults` in
/// `coverage_summary.json`), held here as a direct tier-1 gate.
#[test]
fn damaged_adversarial_traces_keep_honest_degraded_bounds() {
    let sampler = StemRootSampler::new(StemConfig::default());
    let pipe = pipeline(2);
    for w in [
        phase_drift(21).materialize(),
        bursty_interference(21).materialize(),
        longtail_skew(21).materialize(),
    ] {
        let records = clean_records(&w);
        let plan = FaultPlan::new(0xADE5)
            .with(Fault::Drop { fraction: 0.05 })
            .with(Fault::Duplicate { fraction: 0.05 })
            .with(Fault::NanTime { fraction: 0.02 })
            .with(Fault::Reorder { fraction: 0.1 });
        let (summary, report) = pipe
            .run_from_profile(&sampler, &w, &plan.apply(&records))
            .unwrap_or_else(|e| panic!("{}: damaged trace unrecoverable: {e}", w.name()));
        assert!(
            !report.is_clean() && report.issue_count() > 0,
            "{}: corruption went undetected: {report}",
            w.name()
        );
        let bound_pct = CLEAN_SLACK_PCT + 100.0 * report.degraded_fraction();
        assert!(
            summary.mean_error_pct < bound_pct,
            "{}: error {:.2}% escapes the degraded bound {:.2}% ({report})",
            w.name(),
            summary.mean_error_pct,
            bound_pct
        );
    }
}

#[test]
fn chaos_runs_replay_deterministically() {
    let sampler = StemRootSampler::new(StemConfig::default());
    let pipe = pipeline(1);
    let suite = suite_workloads();
    let w = &suite[0];
    let records = clean_records(w);
    let plan = FaultPlan::single(7, Fault::Drop { fraction: 0.2 });
    let (a, ra) = pipe
        .run_from_profile(&sampler, w, &plan.apply(&records))
        .expect("first run");
    let (b, rb) = pipe
        .run_from_profile(&sampler, w, &plan.apply(&records))
        .expect("second run");
    assert_eq!(ra, rb);
    assert_eq!(a, b);
}

#[test]
fn composed_faults_accumulate_in_one_report() {
    let sampler = StemRootSampler::new(StemConfig::default());
    let pipe = pipeline(1);
    let suite = suite_workloads();
    let w = &suite[1];
    let records = clean_records(w);
    let plan = FaultPlan::new(0xBAD)
        .with(Fault::Drop { fraction: 0.05 })
        .with(Fault::Duplicate { fraction: 0.05 })
        .with(Fault::NanTime { fraction: 0.02 })
        .with(Fault::Reorder { fraction: 0.1 });
    let (summary, report) = pipe
        .run_from_profile(&sampler, w, &plan.apply(&records))
        .expect("composed corruption is recoverable");
    assert!(report.duplicates_removed > 0, "{report}");
    assert!(report.missing_detected > 0, "{report}");
    assert!(report.out_of_order_fixed > 0, "{report}");
    assert!(summary.mean_error_pct < CLEAN_SLACK_PCT + 100.0 * report.degraded_fraction());
}
