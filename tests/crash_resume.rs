//! Crash/resume suite: the acceptance gate for supervised execution and
//! campaign checkpointing.
//!
//! The scenarios mirror how a long campaign actually dies: worker panics
//! mid-unit (retried under the supervisor), a process kill after N
//! completed units (simulated by an [`ExecFaultPlan`] so the test harness
//! survives), and snapshot files damaged on disk between runs. The
//! invariants:
//!
//! 1. A campaign interrupted at any point and resumed produces summaries
//!    **bit-identical** to the uninterrupted campaign, at thread counts
//!    1 and 4, on one workload from each of the three synthetic suites.
//! 2. Injected worker panics within the retry budget are invisible in
//!    the output (retries recompute the same index-derived bits).
//! 3. A snapshot that is truncated, bit-flipped, or version-stale is
//!    quarantined — never trusted — and the campaign recomputes a fresh,
//!    correct result.
//! 4. Panics that outlive the retry budget surface as the typed
//!    [`StemError::TaskFailure`], naming the lowest failing unit.

use std::path::PathBuf;

use stem::prelude::*;

/// Reps per workload; 3 workloads x 2 reps = 6 campaign units.
const REPS: u32 = 2;

fn pipeline(threads: usize) -> Pipeline {
    Pipeline::new(Simulator::new(GpuConfig::rtx2080()))
        .with_reps(REPS)
        .expect("positive reps")
        .with_parallelism(Parallelism::with_threads(threads))
}

/// One representative workload per suite, sized to keep the whole suite
/// fast while still exercising the shared memo cache across units.
fn suite_workloads() -> Vec<Workload> {
    let rodinia = rodinia_suite(33);
    let casio = casio_suite(33);
    let hf = huggingface_suite(33, HuggingfaceScale::custom(0.02));
    let pick = |suite: &[Workload]| {
        suite
            .iter()
            .max_by_key(|w| w.num_invocations())
            .expect("nonempty suite")
            .clone()
    };
    vec![pick(&rodinia), pick(&casio), pick(&hf)]
}

/// A fresh scratch directory for one test's snapshot files.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stem-crash-resume-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The uninterrupted, unfaulted reference campaign at a given thread
/// count. Ground truth for every bit-identical assertion below.
fn reference(threads: usize, workloads: &[Workload], dir: &std::path::Path) -> CampaignReport {
    let sampler = StemRootSampler::new(StemConfig::default());
    pipeline(threads)
        .run_campaign(&sampler, workloads, &dir.join("reference.snap"))
        .expect("reference campaign")
}

#[test]
fn killed_campaign_resumes_bit_identical_across_thread_counts() {
    let dir = scratch("kill-resume");
    let workloads = suite_workloads();
    let sampler = StemRootSampler::new(StemConfig::default());
    let baseline = reference(1, &workloads, &dir);
    assert_eq!(baseline.summaries.len(), workloads.len());

    for threads in [1usize, 4] {
        for kill_after in [0u64, 1, 3] {
            let snap = dir.join(format!("campaign-t{threads}-k{kill_after}.snap"));
            // Phase 1: worker panics + a simulated process kill after
            // `kill_after` completed units.
            let faulty = pipeline(threads).with_exec_faults(
                ExecFaultPlan::new(0xC1A0)
                    .with_worker_panics(0.4, 1)
                    .with_kill_after_units(kill_after),
            );
            let err = match faulty.run_campaign(&sampler, &workloads, &snap) {
                Err(e) => e,
                Ok(r) => panic!(
                    "threads {threads}, kill after {kill_after}: campaign must report the \
                     simulated kill, got executed={} resumed={}",
                    r.executed_units, r.resumed_units
                ),
            };
            match err {
                StemError::Interrupted { completed_units } => {
                    assert_eq!(
                        completed_units, kill_after,
                        "threads {threads}: admitted units must complete and persist"
                    );
                }
                other => panic!("threads {threads}: wrong error class: {other}"),
            }

            // Phase 2: a new process resumes from the snapshot — same
            // panic plan (still recovering), no kill this time.
            let resumed = pipeline(threads)
                .with_exec_faults(ExecFaultPlan::new(0xC1A0).with_worker_panics(0.4, 1))
                .resume_from(&sampler, &workloads, &snap)
                .expect("resume completes");
            assert_eq!(
                resumed.summaries, baseline.summaries,
                "threads {threads}, kill after {kill_after}: resumed bits differ"
            );
            assert!(resumed.quarantined.is_none());
            assert_eq!(
                resumed.resumed_units + resumed.executed_units,
                workloads.len() as u64 * REPS as u64,
                "every unit is either resumed or recomputed, never both"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The checkpointing machinery must be sampler-agnostic: a campaign
/// planned by a new baseline (RSS) over an adversarial scenario
/// (long-tail skew) dies after one unit and resumes bit-identically at
/// threads 1 and 4. The snapshot fingerprint includes the sampler name,
/// so a snapshot written under one sampler must never feed another.
#[test]
fn new_sampler_on_adversarial_scenario_resumes_bit_identical() {
    let dir = scratch("adversarial-resume");
    let workloads = vec![
        longtail_skew(33).materialize(),
        bursty_interference(33).materialize(),
    ];
    let sampler = RssSampler::new();
    let baseline = pipeline(1)
        .run_campaign(&sampler, &workloads, &dir.join("reference.snap"))
        .expect("reference campaign");
    assert_eq!(baseline.summaries.len(), workloads.len());

    for threads in [1usize, 4] {
        let snap = dir.join(format!("adv-t{threads}.snap"));
        let err = pipeline(threads)
            .with_exec_faults(ExecFaultPlan::new(0xAD5A).with_kill_after_units(1))
            .run_campaign(&sampler, &workloads, &snap)
            .expect_err("simulated kill must surface");
        match err {
            StemError::Interrupted { completed_units } => assert_eq!(completed_units, 1),
            other => panic!("threads {threads}: wrong error class: {other}"),
        }
        let resumed = pipeline(threads)
            .resume_from(&sampler, &workloads, &snap)
            .expect("resume completes");
        assert_eq!(
            resumed.summaries, baseline.summaries,
            "threads {threads}: resumed bits differ under RSS on adversarial workloads"
        );
        assert!(resumed.quarantined.is_none());

        // The same snapshot under a different sampler is a different
        // campaign: the fingerprint must quarantine it, not resume it.
        let foreign = pipeline(threads)
            .resume_from(&TwoPhaseSampler::new(), &workloads, &snap)
            .expect("foreign-sampler resume recomputes");
        let quarantined = foreign.quarantined.expect("sampler mismatch must quarantine");
        assert_eq!(quarantined.reason, SnapshotError::FingerprintMismatch);
        assert_eq!(foreign.resumed_units, 0);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovered_worker_panics_are_output_invisible() {
    let dir = scratch("panic-recovery");
    let workloads = suite_workloads();
    let sampler = StemRootSampler::new(StemConfig::default());
    let baseline = reference(4, &workloads, &dir);

    // Half the units panic on their first attempt; the default budget of
    // one retry recovers each of them.
    let report = pipeline(4)
        .with_exec_faults(ExecFaultPlan::new(7).with_worker_panics(0.5, 1))
        .run_campaign(&sampler, &workloads, &dir.join("faulty.snap"))
        .expect("recovered campaign completes");
    assert_eq!(report.summaries, baseline.summaries, "recovery leaked into results");
    assert!(
        report.exec_log.retries > 0 && !report.exec_log.recovered.is_empty(),
        "the fault plan must actually have fired: {:?}",
        report.exec_log
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_snapshots_are_quarantined_never_trusted() {
    let dir = scratch("corruption");
    let workloads = suite_workloads();
    let sampler = StemRootSampler::new(StemConfig::default());
    let snap = dir.join("campaign.snap");
    let baseline = pipeline(1)
        .run_campaign(&sampler, &workloads, &snap)
        .expect("baseline campaign");
    let pristine = std::fs::read_to_string(&snap).expect("snapshot written");

    for fault in [
        SnapshotFault::TruncateTail,
        SnapshotFault::FlipByte,
        SnapshotFault::StaleVersion,
    ] {
        let corrupted = ExecFaultPlan::new(0xBADF)
            .with_snapshot_fault(fault)
            .corrupt_snapshot(&pristine);
        assert_ne!(corrupted, pristine, "{fault:?}: corruption was a no-op");
        std::fs::write(&snap, &corrupted).expect("plant corrupted snapshot");

        let report = pipeline(4)
            .resume_from(&sampler, &workloads, &snap)
            .expect("resume survives corruption");
        let quarantined = report
            .quarantined
            .as_ref()
            .unwrap_or_else(|| panic!("{fault:?}: corruption went undetected"));
        assert!(
            quarantined.path.exists(),
            "{fault:?}: quarantined file missing at {}",
            quarantined.path.display()
        );
        assert_eq!(
            report.resumed_units, 0,
            "{fault:?}: a rejected snapshot must contribute nothing"
        );
        assert_eq!(
            report.summaries, baseline.summaries,
            "{fault:?}: fresh recompute after quarantine produced different bits"
        );
        std::fs::remove_file(&quarantined.path).expect("clear quarantine for next fault");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn foreign_campaign_snapshot_is_quarantined() {
    let dir = scratch("foreign");
    let workloads = suite_workloads();
    let sampler = StemRootSampler::new(StemConfig::default());
    let snap = dir.join("campaign.snap");
    pipeline(1)
        .run_campaign(&sampler, &workloads, &snap)
        .expect("first campaign");

    // Same snapshot path, different base seed: a different campaign. The
    // stored fingerprint must refuse to let its units leak across.
    let other = pipeline(1).with_seed(99);
    let report = other
        .resume_from(&sampler, &workloads, &snap)
        .expect("foreign resume recomputes");
    let quarantined = report.quarantined.expect("fingerprint mismatch must quarantine");
    assert_eq!(
        quarantined.reason,
        SnapshotError::FingerprintMismatch,
        "wrong rejection reason"
    );
    assert_eq!(report.resumed_units, 0);
    let fresh = other
        .run_campaign(&sampler, &workloads, &dir.join("fresh.snap"))
        .expect("fresh campaign under the other seed");
    assert_eq!(report.summaries, fresh.summaries);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_without_snapshot_is_a_fresh_run() {
    let dir = scratch("fresh-resume");
    let workloads = suite_workloads();
    let sampler = StemRootSampler::new(StemConfig::default());
    let baseline = reference(1, &workloads, &dir);
    let report = pipeline(4)
        .resume_from(&sampler, &workloads, &dir.join("never-written.snap"))
        .expect("missing snapshot starts fresh");
    assert!(report.quarantined.is_none(), "nothing to quarantine");
    assert_eq!(report.resumed_units, 0);
    assert_eq!(report.summaries, baseline.summaries);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_after_completion_recomputes_nothing() {
    let dir = scratch("noop-resume");
    let workloads = suite_workloads();
    let sampler = StemRootSampler::new(StemConfig::default());
    let snap = dir.join("campaign.snap");
    let first = pipeline(4)
        .run_campaign(&sampler, &workloads, &snap)
        .expect("campaign");
    let again = pipeline(1)
        .resume_from(&sampler, &workloads, &snap)
        .expect("no-op resume");
    assert_eq!(again.executed_units, 0, "completed campaign re-ran units");
    assert_eq!(again.resumed_units, workloads.len() as u64 * REPS as u64);
    assert_eq!(again.summaries, first.summaries);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exhausted_retry_budget_is_a_typed_task_failure() {
    let dir = scratch("exhausted");
    let workloads = suite_workloads();
    let sampler = StemRootSampler::new(StemConfig::default());
    // Every attempt of every unit panics; the default budget (one retry)
    // cannot save it.
    let err = pipeline(4)
        .with_exec_faults(ExecFaultPlan::new(3).with_worker_panics(1.0, u32::MAX))
        .run_campaign(&sampler, &workloads, &dir.join("doomed.snap"))
        .expect_err("exhausted budget must fail");
    match err {
        StemError::TaskFailure(failure) => {
            assert_eq!(failure.index, 0, "lowest failing unit must be reported");
            assert_eq!(failure.attempts, 2, "budget 1 = two attempts");
            assert!(
                failure.message.contains("injected worker panic"),
                "payload lost: {}",
                failure.message
            );
        }
        other => panic!("wrong error class: {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn campaign_matches_the_plain_pipeline_bitwise() {
    // The checkpointing machinery must be pure bookkeeping: a campaign's
    // per-workload summaries equal what `Pipeline::run` computes directly.
    let dir = scratch("campaign-vs-run");
    let workloads = suite_workloads();
    let sampler = StemRootSampler::new(StemConfig::default());
    let pipe = pipeline(4);
    let report = pipe
        .run_campaign(&sampler, &workloads, &dir.join("campaign.snap"))
        .expect("campaign");
    for (w, summary) in workloads.iter().zip(&report.summaries) {
        let direct = pipe.run(&sampler, w);
        assert_eq!(*summary, direct, "{}: campaign bits differ from run()", w.name());
    }
    let _ = std::fs::remove_dir_all(&dir);
}
