//! Integration tests for the implemented extensions, exercised through the
//! facade crate the way a downstream user would.

use stem::core::et::evaluate_trace_sampling;
use stem::core::intra::evaluate_intra_kernel;
use stem::prelude::*;
use stem::profile::{ExecTimeProfile, TraceGenModel};
use stem::sim::multi_gpu::ClusterConfig;
use stem::sim::EnergyModel;
use stem::workload::chakra::{data_parallel_training, pipeline_parallel_inference};
use stem::workload::io::{from_text, to_text};

#[test]
fn multi_gpu_node_sampling_end_to_end() {
    for trace in [
        data_parallel_training("ddp", 4, 16, 24, 21),
        pipeline_parallel_inference("pp", 4, 8, 96, 22),
    ] {
        let report = evaluate_trace_sampling(
            &trace,
            &ClusterConfig::h100_nvlink(),
            &StemConfig::default(),
            3,
        );
        assert!(
            report.total_error() < 0.05,
            "{}: total error {}",
            trace.name(),
            report.total_error()
        );
        assert!(
            report.makespan_error() < 0.06,
            "{}: makespan error {}",
            trace.name(),
            report.makespan_error()
        );
        assert!(report.node_speedup() > 10.0);
    }
}

#[test]
fn intra_kernel_sampling_through_facade() {
    let suite = rodinia_suite(23);
    let w = suite.iter().find(|w| w.name() == "hotspot").expect("hotspot");
    let sim = Simulator::new(GpuConfig::rtx2080());
    let report = evaluate_intra_kernel(w, &sim, &StemConfig::default(), 1);
    assert!(report.error() < 0.05);
    assert!(report.wave_speedup() > 2.0);
}

#[test]
fn external_workload_and_profile_roundtrip_plan() {
    let original = &rodinia_suite(25)[3];
    let text = to_text(original);
    let workload = from_text(&text).expect("round trip");

    let sim = Simulator::new(GpuConfig::rtx2080());
    let times: Vec<f64> = workload
        .invocations()
        .iter()
        .map(|inv| sim.cycles(&workload, inv))
        .collect();
    let profile = ExecTimeProfile::new(workload.name(), times).expect("valid profile");
    let csv = profile.to_csv_string().expect("serializable profile");
    let parsed = ExecTimeProfile::from_csv_string(&csv).expect("profile round trip");

    let sampler = StemRootSampler::new(StemConfig::default());
    let plan = sampler
        .plan_from_times(&workload, parsed.times(), 0)
        .expect("well-formed profile");
    let full = sim.run_full(&workload);
    let run = sim.run_sampled(&workload, plan.samples());
    assert!(run.error(full.total_cycles) < 0.05);
}

#[test]
fn energy_estimation_through_facade() {
    let suite = casio_suite(27);
    let w = suite.iter().find(|w| w.name() == "muzero").expect("muzero");
    let sim = Simulator::new(GpuConfig::rtx2080());
    let model = EnergyModel::default();
    let plan = StemRootSampler::new(StemConfig::default()).plan(w, 0);
    let full = model.full_energy(w, &sim);
    let est = model.sampled_energy(w, plan.samples(), &sim);
    assert!(
        (est - full).abs() / full < 0.05,
        "energy error {}",
        (est - full).abs() / full
    );
}

#[test]
fn selective_tracegen_through_facade() {
    let suite = casio_suite(29);
    let w = suite.iter().find(|w| w.name() == "unet_infer").expect("unet");
    let plan = StemRootSampler::new(StemConfig::default()).plan(w, 0);
    let sampled: Vec<usize> = plan.samples().iter().map(|s| s.index).collect();
    let report = TraceGenModel::default().selective(w, &sampled);
    assert!(report.bytes_reduction() > 50.0);
    assert!(report.time_reduction() > 50.0);
}

#[test]
fn small_sample_correction_through_facade() {
    let suite = rodinia_suite(31);
    let w = suite.iter().find(|w| w.name() == "pf_float").expect("pf_float");
    let loose = StemConfig::default().with_epsilon(0.20);
    let plain = StemRootSampler::new(loose.clone()).plan(w, 0).num_samples();
    let corrected = StemRootSampler::new(loose.with_small_sample_correction())
        .plan(w, 0)
        .num_samples();
    assert!(corrected >= plain);
}
