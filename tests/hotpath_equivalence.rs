//! Hot-path equivalence suite: the acceptance gate for the grouped
//! deterministic-core/jitter split and the bounds-pruned k-means.
//!
//! The overhaul rewrote every per-invocation hot loop — ground-truth
//! simulation, sampled simulation, hardware profiling, memoized sampled
//! runs — as "deterministic core once per invocation group, cheap jitter
//! per invocation", and rewrote the k-means assignment step with
//! Hamerly-style bounds on flat storage. All of it is behind one
//! contract: **bit-identical results**, old path vs new path, at every
//! thread count. The pre-overhaul implementations are kept as
//! `#[doc(hidden)] pub mod reference` executable specifications
//! (`gpu_sim::simulator::reference`, `gpu_sim::hardware::reference`,
//! `stem_cluster::kmeans::reference`), and this suite pins the fast paths
//! to them on one workload from each of the three synthetic suites, at
//! threads ∈ {1, 4}.

use std::path::PathBuf;

use stem::cluster::kmeans::reference as kmeans_reference;
use stem::cluster::{KMeans, KMeansConfig};
use stem::core::eval::StreamingAggregate;
use stem::prelude::*;
use stem::sim::hardware::{reference as hw_reference, HardwareRunner};
use stem::sim::simulator::reference as sim_reference;
use stem::sim::SimCache;

const THREADS: [usize; 2] = [1, 4];
const REPS: u32 = 3;
const BASE_SEED: u64 = 0x5EED;

/// One representative workload per suite (largest of each), sized so the
/// sweep stays fast.
fn suite_workloads() -> Vec<Workload> {
    let rodinia = rodinia_suite(33);
    let casio = casio_suite(33);
    let hf = huggingface_suite(33, HuggingfaceScale::custom(0.02));
    let pick = |suite: &[Workload]| {
        suite
            .iter()
            .max_by_key(|w| w.num_invocations())
            .expect("nonempty suite")
            .clone()
    };
    vec![pick(&rodinia), pick(&casio), pick(&hf)]
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stem-hotpath-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn ground_truth_matches_per_invocation_reference() {
    let sim = Simulator::new(GpuConfig::rtx2080());
    for w in &suite_workloads() {
        let slow = sim_reference::run_full(&sim, w);
        let fast = sim.run_full(w);
        assert_eq!(fast, slow, "{}: grouped full run diverged", w.name());
        assert_eq!(
            sim.run_full_total(w, Parallelism::serial()),
            slow.total_cycles,
            "{}: run_full_total diverged",
            w.name()
        );
        for threads in THREADS {
            let par = Parallelism::with_threads(threads);
            assert_eq!(
                sim.run_full_par(w, par),
                sim_reference::run_full_par(&sim, w, par),
                "{}: grouped parallel full run diverged at threads = {threads}",
                w.name()
            );
            assert_eq!(
                sim.run_full_total(w, par),
                slow.total_cycles,
                "{}: parallel run_full_total diverged at threads = {threads}",
                w.name()
            );
        }
    }
}

#[test]
fn sampled_runs_match_per_invocation_reference() {
    let sim = Simulator::new(GpuConfig::rtx2080());
    let sampler = StemRootSampler::new(StemConfig::paper());
    for w in &suite_workloads() {
        let plan = sampler.plan(w, BASE_SEED);
        let slow = sim_reference::run_sampled(&sim, w, plan.samples());
        assert_eq!(
            sim.run_sampled(w, plan.samples()),
            slow,
            "{}: grouped sampled run diverged",
            w.name()
        );
        // Subset timing (used by DSE) rides the same lazy group table.
        let indices: Vec<usize> = plan.samples().iter().map(|s| s.index).collect();
        assert_eq!(
            sim.run_subset(w, &indices),
            sim_reference::run_subset(&sim, w, &indices),
            "{}: grouped subset run diverged",
            w.name()
        );
    }
}

#[test]
fn hardware_profile_matches_per_invocation_reference() {
    for w in &suite_workloads() {
        let hw = HardwareRunner::new(GpuConfig::rtx2080(), 0xC0FFEE);
        let slow = hw_reference::measure_all(&hw, w);
        assert_eq!(
            hw.measure_all(w),
            slow,
            "{}: grouped profile diverged",
            w.name()
        );
        for threads in THREADS {
            assert_eq!(
                hw.measure_all_par(w, Parallelism::with_threads(threads)),
                slow,
                "{}: grouped parallel profile diverged at threads = {threads}",
                w.name()
            );
        }
    }
}

#[test]
fn plans_and_clusters_are_unchanged_by_the_overhaul() {
    // Plans and ROOT clusters consume the profiled times, so this pins the
    // whole profile -> cluster -> plan chain across thread counts.
    for w in &suite_workloads() {
        let serial_sampler = StemRootSampler::new(StemConfig::paper());
        let serial_plan = serial_sampler.plan(w, BASE_SEED);
        let serial_clusters = serial_sampler.clusters(w);
        for threads in THREADS {
            let s = StemRootSampler::new(StemConfig::paper())
                .with_parallelism(Parallelism::with_threads(threads));
            assert_eq!(
                s.plan(w, BASE_SEED),
                serial_plan,
                "{}: plan diverged at threads = {threads}",
                w.name()
            );
            assert_eq!(
                s.clusters(w),
                serial_clusters,
                "{}: clusters diverged at threads = {threads}",
                w.name()
            );
        }
    }
}

#[test]
fn campaign_aggregates_match_reference_slow_path() {
    let dir = scratch("campaign");
    let workloads: Vec<Workload> = suite_workloads().into_iter().take(2).collect();
    let sim = Simulator::new(GpuConfig::rtx2080());
    let sampler = StemRootSampler::new(StemConfig::paper());

    // Expected summaries via the pre-overhaul per-invocation paths and the
    // collect-then-mean aggregation they fed.
    let mut expected = Vec::new();
    for w in &workloads {
        let full = sim_reference::run_full(&sim, w);
        let mut errors = Vec::new();
        let mut speedups = Vec::new();
        for rep in 0..REPS as u64 {
            let seed = BASE_SEED
                .wrapping_add(rep)
                .wrapping_mul(0x9e3779b97f4a7c15);
            let plan = sampler.plan(w, seed);
            let run = sim_reference::run_sampled(&sim, w, plan.samples());
            errors.push(run.error(full.total_cycles) * 100.0);
            speedups.push(run.speedup(full.total_cycles));
        }
        expected.push((
            stem::core::eval::arithmetic_mean(&errors),
            stem::core::eval::harmonic_mean(&speedups),
            errors,
            speedups,
        ));
    }

    for threads in THREADS {
        let pipeline = Pipeline::new(Simulator::new(GpuConfig::rtx2080()))
            .with_reps(REPS)
            .expect("positive reps")
            .with_seed(BASE_SEED)
            .with_parallelism(Parallelism::with_threads(threads));
        let report = pipeline
            .run_campaign(&sampler, &workloads, &dir.join(format!("t{threads}.snap")))
            .expect("campaign");
        assert_eq!(report.summaries.len(), expected.len());
        for (summary, (mean_err, harm_speedup, errors, speedups)) in
            report.summaries.iter().zip(&expected)
        {
            assert_eq!(
                summary.mean_error_pct, *mean_err,
                "campaign mean error diverged at threads = {threads}"
            );
            assert_eq!(
                summary.harmonic_speedup, *harm_speedup,
                "campaign harmonic speedup diverged at threads = {threads}"
            );
            for (r, (e, s)) in summary.results.iter().zip(errors.iter().zip(speedups)) {
                assert_eq!(r.error_pct, *e, "per-rep error diverged at threads = {threads}");
                assert_eq!(r.speedup, *s, "per-rep speedup diverged at threads = {threads}");
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn memo_cache_is_group_keyed_and_warm_runs_are_free() {
    let sim = Simulator::new(GpuConfig::rtx2080());
    let sampler = StemRootSampler::new(StemConfig::paper());
    for w in &suite_workloads() {
        let plan = sampler.plan(w, BASE_SEED);
        let uncached = sim.run_sampled(w, plan.samples());
        let touched: std::collections::BTreeSet<u32> = plan
            .samples()
            .iter()
            .map(|s| w.group_of(s.index))
            .collect();

        let cache = SimCache::new();
        let cold = sim.run_sampled_cached(w, plan.samples(), Parallelism::serial(), &cache);
        assert_eq!(cold, uncached, "{}: cached run diverged", w.name());
        assert_eq!(
            cache.misses() as usize,
            touched.len(),
            "{}: cold misses must equal touched groups, not samples",
            w.name()
        );
        assert_eq!(cache.hits(), 0, "{}: cold run must not hit", w.name());

        let misses_after_cold = cache.misses();
        let warm = sim.run_sampled_cached(w, plan.samples(), Parallelism::serial(), &cache);
        assert_eq!(warm, cold, "{}: warm run diverged", w.name());
        assert_eq!(
            cache.misses(),
            misses_after_cold,
            "{}: warm run recomputed a group core",
            w.name()
        );
        assert_eq!(
            cache.hits() as usize,
            touched.len(),
            "{}: warm run must hit once per touched group",
            w.name()
        );
    }
}

#[test]
fn pruned_kmeans_matches_naive_reference_on_64_seeded_cases() {
    // Deterministic xorshift instance generator; cases sweep duplicate
    // points, k >= n, weighted points, single point, and 1..4 dimensions.
    let mut x = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x >> 11) as f64 / (1u64 << 53) as f64
    };
    for case in 0u64..64 {
        let n = 1 + (case as usize * 13) % 120;
        let dim = 1 + case as usize % 4;
        let k = 1 + (case as usize * 5) % 16; // often k >= n for small n
        let mut pts: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| (next() * 16.0).floor() * 0.25).collect())
            .collect();
        if n >= 4 {
            // Force exact duplicates, the k-means++ degenerate case.
            pts[n - 1] = pts[0].clone();
            pts[n - 2] = pts[1].clone();
        }
        let weights: Vec<f64> = (0..n).map(|_| 0.25 + next() * 4.0).collect();
        let config = KMeansConfig::new(k, 0xABCD ^ case);
        let naive = kmeans_reference::fit_weighted_par(
            &pts,
            &weights,
            config,
            Parallelism::serial(),
        );
        for threads in THREADS {
            let fast = KMeans::fit_weighted_par(
                &pts,
                &weights,
                config,
                Parallelism::with_threads(threads),
            );
            assert_eq!(
                fast, naive,
                "case {case} (n={n} dim={dim} k={k}) diverged at threads = {threads}"
            );
        }
    }
}

#[test]
fn streaming_aggregation_matches_collected_means() {
    // The evaluation/campaign fold and the two-vector means are both
    // left-to-right sums; pin them to each other on awkward magnitudes.
    let errors: Vec<f64> = (0..17).map(|i| (i as f64 * 0.731).sin().abs() * 1e3).collect();
    let speedups: Vec<f64> = (0..17).map(|i| 1.0 + (i as f64 * 1.37).cos().abs() * 99.0).collect();
    let mut agg = StreamingAggregate::new();
    for (&e, &s) in errors.iter().zip(&speedups) {
        agg.push(e, s);
    }
    assert_eq!(agg.mean_error_pct(), stem::core::eval::arithmetic_mean(&errors));
    assert_eq!(agg.harmonic_speedup(), stem::core::eval::harmonic_mean(&speedups));
}
