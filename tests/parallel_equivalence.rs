//! Parallel-equivalence suite: the acceptance gate for `stem-par`.
//!
//! The deterministic parallel runtime promises *bit-identical* results at
//! every thread count: worker RNG streams derive from task indices (never
//! worker identity), reductions fold in input-index order, and the memo
//! cache stores pure-function results only. This suite holds the whole
//! pipeline to that promise on one workload from each of the three
//! synthetic suites, at threads ∈ {1, 2, 3, 8}:
//!
//! * ground-truth cycle totals ([`Pipeline::full_run`]),
//! * sampling plans and ROOT cluster assignments
//!   ([`StemRootSampler::with_parallelism`]),
//! * clean evaluations ([`Pipeline::run`]),
//! * and the `RepairAndDegrade` chaos path
//!   ([`Pipeline::run_from_profile`] on a faulted trace).
//!
//! A final golden check pins `threads = 1` (and `Parallelism::serial()`)
//! to the pre-parallelism behavior: the same per-rep results as a manual
//! [`evaluate_once`] loop, so the serial goldens never move.

use stem::core::eval::{evaluate_once, EvalResult};
use stem::prelude::*;
use stem::profile::ExecTimeProfiler;

const THREADS: [usize; 4] = [1, 2, 3, 8];
const REPS: u32 = 3;
const BASE_SEED: u64 = 0xA11CE;

/// One representative workload per suite (largest of each, as in the chaos
/// suite), sized so the sweep stays fast.
fn suite_workloads() -> Vec<Workload> {
    let rodinia = rodinia_suite(33);
    let casio = casio_suite(33);
    let hf = huggingface_suite(33, HuggingfaceScale::custom(0.02));
    let pick = |suite: &[Workload]| {
        suite
            .iter()
            .max_by_key(|w| w.num_invocations())
            .expect("nonempty suite")
            .clone()
    };
    vec![pick(&rodinia), pick(&casio), pick(&hf)]
}

fn pipeline_with(par: Parallelism) -> Pipeline {
    Pipeline::new(Simulator::new(GpuConfig::rtx2080()))
        .with_reps(REPS)
        .expect("positive reps")
        .with_seed(BASE_SEED)
        .with_parallelism(par)
}

/// A clean profiler trace for `w`, as in the chaos suite.
fn clean_records(w: &Workload) -> Vec<TraceRecord> {
    let times = ExecTimeProfiler::new(GpuConfig::rtx2080(), 0xC0FFEE).profile(w);
    TraceRecord::sequence(&times)
}

#[test]
fn ground_truth_cycles_are_bit_identical_across_thread_counts() {
    for w in &suite_workloads() {
        let serial = pipeline_with(Parallelism::serial()).full_run(w);
        for threads in THREADS {
            let par = pipeline_with(Parallelism::with_threads(threads)).full_run(w);
            assert_eq!(
                par,
                serial,
                "{}: full run differs at threads = {threads}",
                w.name()
            );
        }
    }
}

#[test]
fn plans_and_clusters_are_bit_identical_across_thread_counts() {
    for w in &suite_workloads() {
        let sampler = StemRootSampler::new(StemConfig::paper());
        let serial_plan = sampler.plan(w, BASE_SEED);
        let serial_clusters = sampler.clusters(w);
        for threads in THREADS {
            let s = StemRootSampler::new(StemConfig::paper())
                .with_parallelism(Parallelism::with_threads(threads));
            assert_eq!(
                s.plan(w, BASE_SEED),
                serial_plan,
                "{}: plan differs at threads = {threads}",
                w.name()
            );
            assert_eq!(
                s.clusters(w),
                serial_clusters,
                "{}: cluster assignments differ at threads = {threads}",
                w.name()
            );
        }
    }
}

#[test]
fn clean_evaluation_is_bit_identical_across_thread_counts() {
    for w in &suite_workloads() {
        let sampler = StemRootSampler::new(StemConfig::paper());
        let serial = pipeline_with(Parallelism::serial()).run(&sampler, w);
        for threads in THREADS {
            let par = pipeline_with(Parallelism::with_threads(threads)).run(&sampler, w);
            assert_eq!(
                par,
                serial,
                "{}: clean evaluation differs at threads = {threads}",
                w.name()
            );
        }
    }
}

#[test]
fn chaos_path_is_bit_identical_across_thread_counts() {
    for w in &suite_workloads() {
        let sampler = StemRootSampler::new(StemConfig::paper());
        let records = FaultPlan::single(7, Fault::Drop { fraction: 0.2 }).apply(&clean_records(w));
        let (serial_summary, serial_report) = pipeline_with(Parallelism::serial())
            .run_from_profile(&sampler, w, &records)
            .expect("repairable trace");
        assert!(!serial_report.is_clean(), "{}: fault undetected", w.name());
        for threads in THREADS {
            let (summary, report) = pipeline_with(Parallelism::with_threads(threads))
                .run_from_profile(&sampler, w, &records)
                .expect("repairable trace");
            assert_eq!(
                report,
                serial_report,
                "{}: quality report differs at threads = {threads}",
                w.name()
            );
            assert_eq!(
                summary,
                serial_summary,
                "{}: degraded evaluation differs at threads = {threads}",
                w.name()
            );
        }
    }
}

/// The new sampling baselines must hold the bit-identical promise on the
/// adversarial scenarios too: RSS and two-phase plans and evaluations on
/// the phase-drift workload — built to put every rank stratum and pilot
/// under non-stationary drift — at threads ∈ {1, 4} versus serial.
#[test]
fn new_samplers_on_adversarial_scenarios_are_bit_identical() {
    let w = phase_drift(33).materialize();
    let samplers: Vec<Box<dyn KernelSampler>> =
        vec![Box::new(RssSampler::new()), Box::new(TwoPhaseSampler::new())];
    for sampler in &samplers {
        let serial_plan = sampler.plan(&w, BASE_SEED);
        let serial = pipeline_with(Parallelism::serial()).run(sampler.as_ref(), &w);
        for threads in [1usize, 4] {
            assert_eq!(
                sampler.plan(&w, BASE_SEED),
                serial_plan,
                "{}: plan differs at threads = {threads}",
                sampler.name()
            );
            let par = pipeline_with(Parallelism::with_threads(threads)).run(sampler.as_ref(), &w);
            assert_eq!(
                par,
                serial,
                "{}: evaluation differs at threads = {threads}",
                sampler.name()
            );
        }
    }
}

/// `threads = 1` (and `Parallelism::serial()`) must reproduce the pre-`stem-par`
/// behavior exactly: per-rep results equal to a manual [`evaluate_once`] loop
/// over the documented rep-seed schedule. This pins the serial goldens.
#[test]
fn threads_one_matches_the_manual_serial_loop() {
    for w in &suite_workloads() {
        let sim = Simulator::new(GpuConfig::rtx2080());
        let full = sim.run_full(w);
        let sampler = StemRootSampler::new(StemConfig::paper());
        let manual: Vec<EvalResult> = (0..REPS as u64)
            .map(|r| {
                let rep_seed = BASE_SEED.wrapping_add(r).wrapping_mul(0x9e3779b97f4a7c15);
                evaluate_once(&sampler, w, &sim, &full, rep_seed)
            })
            .collect();
        for par in [Parallelism::serial(), Parallelism::with_threads(1)] {
            let summary = pipeline_with(par).run_against(&sampler, w, &full);
            assert_eq!(
                summary.results,
                manual,
                "{}: {par:?} diverges from the manual serial loop",
                w.name()
            );
        }
    }
}
